//! Diversified, vertex-reinforced PageRank (Equation 5, Algorithm 7).
//!
//! The ranking runs exactly `L` iterations — the paper's argument is that a
//! node's influence radius is `L` hops, so each node's score should only
//! aggregate evidence within an L-length radius. At iteration `i` the random
//! walk is *reinforced* by the time-variant visiting frequency `H[i][·]` from
//! the sampled-walk index: transitions into frequently-visited nodes are
//! up-weighted and the per-source normalizer `D_i(u) = Σ_w P0(u,w)·H[i][w]`
//! keeps each row stochastic over the reinforced mass.
//!
//! Two notes on the paper's pseudo-code, both deliberate (DESIGN.md §6):
//!
//! * Algorithm 7 line 18 multiplies `PR[v].previous`, but Equation 5 (and
//!   the vertex-reinforced-walk model it cites) propagate the *source* score
//!   `P_T(u)`. We follow Equation 5 — using the destination's own score
//!   would make the recurrence a pointwise fixed point with no propagation.
//! * Algorithm 7 line 9 initializes every `PR[v].previous` to 1. Because the
//!   ranking runs only `L` damped iterations, that leaves `≈ λ^L` of the
//!   final mass *topic-independent* — the top-ranked nodes become the same
//!   global hubs for every topic, defeating the stated goal of ranking by
//!   "closeness to the topic nodes V_t" (Section 4.2). We initialize with
//!   the topic prior `P*` instead (the standard personalized-PageRank /
//!   DivRank choice), which roots all propagated mass at `V_t`.

use pit_graph::{CsrGraph, NodeId};
use pit_walk::WalkIndex;

/// How `PR[·].previous` is initialized before the `L` iterations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PageRankInit {
    /// Topic-rooted: `PR₀ = P*` (our default — see the module docs).
    #[default]
    TopicPrior,
    /// The literal Algorithm 7 line 9: every score starts at 1. Kept for the
    /// ablation benchmarks; leaves `≈ λ^L` of the final score
    /// topic-independent.
    AllOnes,
}

/// Scores after `L` iterations of Equation 5, with the default topic-rooted
/// initialization.
///
/// * `lambda` — damping `λ` (weight of the reinforced-walk term vs. the
///   topic-prior jump `P*`).
/// * `topic_nodes` — `V_t`; the prior `P*(v)` is `1/|V_t|` on them, 0 off.
pub fn diversified_pagerank(
    g: &CsrGraph,
    walks: &WalkIndex,
    topic_nodes: &[NodeId],
    lambda: f64,
) -> Vec<f64> {
    diversified_pagerank_with_init(g, walks, topic_nodes, lambda, PageRankInit::TopicPrior)
}

/// As [`diversified_pagerank`], with an explicit initialization policy.
pub fn diversified_pagerank_with_init(
    g: &CsrGraph,
    walks: &WalkIndex,
    topic_nodes: &[NodeId],
    lambda: f64,
    init: PageRankInit,
) -> Vec<f64> {
    assert!((0.0..=1.0).contains(&lambda), "lambda must be in [0,1]");
    assert!(!topic_nodes.is_empty(), "V_t must be non-empty");
    let n = g.node_count();
    let l = walks.l();

    let mut pstar = vec![0.0f64; n];
    let prior = 1.0 / topic_nodes.len() as f64;
    for &v in topic_nodes {
        pstar[v.index()] = prior;
    }

    // Topic-rooted initialization by default (see the module docs for why
    // this replaces Algorithm 7's all-ones initialization).
    let mut prev = match init {
        PageRankInit::TopicPrior => pstar.clone(),
        PageRankInit::AllOnes => vec![1.0f64; n],
    };
    let mut cur = vec![0.0f64; n];
    let mut d = vec![0.0f64; n];

    for i in 1..=l {
        // D_i(u) = Σ_{(u,w) ∈ E} P0(u,w) · H[i][w], one pass over E.
        for u in g.nodes() {
            let mut acc = 0.0;
            for (w, p0) in g.out_edges(u).iter() {
                acc += p0 * walks.visit_freq(i, w);
            }
            d[u.index()] = acc;
        }
        // PR_{i}(v) = (1-λ)·P*(v) + λ · Σ_{u→v} P0(u,v)·H[i][v]/D_i(u) · PR_{i-1}(u).
        for v in g.nodes() {
            let hv = walks.visit_freq(i, v);
            let mut pnt = 0.0;
            if hv > 0.0 {
                for (u, p0) in g.in_edges(v).iter() {
                    let du = d[u.index()];
                    if du > 0.0 {
                        pnt += p0 * hv / du * prev[u.index()];
                    }
                }
            }
            cur[v.index()] = (1.0 - lambda) * pstar[v.index()] + lambda * pnt;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev
}

/// Select the top `count` nodes by score (Algorithm 7 lines 23–27), ties
/// broken by node id for determinism. Returns node ids sorted by id.
pub fn top_scored(scores: &[f64], count: usize) -> Vec<NodeId> {
    let mut order: Vec<u32> = (0..scores.len() as u32).collect();
    order.sort_unstable_by(|&a, &b| {
        scores[b as usize]
            .total_cmp(&scores[a as usize])
            .then(a.cmp(&b))
    });
    order.truncate(count);
    let mut out: Vec<NodeId> = order.into_iter().map(NodeId).collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pit_graph::GraphBuilder;
    use pit_walk::WalkConfig;

    fn line_with_hub() -> (CsrGraph, WalkIndex) {
        // Hub 0 exchanges edges with 1, 2, 3; periphery 4 hangs off 3.
        // The cycles keep walks (and hence H[i][·]) alive for all L
        // iterations — with pure sinks the reinforced term vanishes and
        // every score collapses to the prior.
        let mut b = GraphBuilder::new(5);
        for x in 1..=3u32 {
            b.add_edge(NodeId(x), NodeId(0), 0.8).unwrap();
            b.add_edge(NodeId(0), NodeId(x), 0.3).unwrap();
        }
        b.add_edge(NodeId(3), NodeId(4), 0.2).unwrap();
        b.add_edge(NodeId(4), NodeId(3), 0.2).unwrap();
        let g = b.build().unwrap();
        let walks = WalkIndex::build(&g, WalkConfig::new(3, 32).with_seed(5));
        (g, walks)
    }

    #[test]
    fn scores_are_finite_and_nonnegative() {
        let (g, walks) = line_with_hub();
        let scores = diversified_pagerank(&g, &walks, &[NodeId(1), NodeId(2), NodeId(3)], 0.85);
        assert_eq!(scores.len(), 5);
        for (i, &s) in scores.iter().enumerate() {
            assert!(s.is_finite() && s >= 0.0, "score[{i}] = {s}");
        }
    }

    #[test]
    fn hub_of_topic_nodes_ranks_high() {
        let (g, walks) = line_with_hub();
        let topic = [NodeId(1), NodeId(2), NodeId(3)];
        let scores = diversified_pagerank(&g, &walks, &topic, 0.85);
        // Node 0 receives reinforced mass from all three topic nodes and must
        // outrank the peripheral node 4.
        assert!(
            scores[0] > scores[4],
            "hub {} vs periphery {}",
            scores[0],
            scores[4]
        );
    }

    #[test]
    fn lambda_zero_returns_prior() {
        let (g, walks) = line_with_hub();
        let topic = [NodeId(1), NodeId(2)];
        let scores = diversified_pagerank(&g, &walks, &topic, 0.0);
        assert!((scores[1] - 0.5).abs() < 1e-12);
        assert!((scores[2] - 0.5).abs() < 1e-12);
        assert_eq!(scores[0], 0.0);
        assert_eq!(scores[4], 0.0);
    }

    #[test]
    fn prior_pulls_topic_nodes_up() {
        let (g, walks) = line_with_hub();
        let with1 = diversified_pagerank(&g, &walks, &[NodeId(1)], 0.5);
        let with2 = diversified_pagerank(&g, &walks, &[NodeId(2)], 0.5);
        // Node 1's score is higher when it is the topic node than when 2 is.
        assert!(with1[1] > with2[1]);
    }

    #[test]
    fn deterministic() {
        let (g, walks) = line_with_hub();
        let a = diversified_pagerank(&g, &walks, &[NodeId(1)], 0.85);
        let b = diversified_pagerank(&g, &walks, &[NodeId(1)], 0.85);
        assert_eq!(a, b);
    }

    #[test]
    fn top_scored_selects_and_sorts() {
        let scores = vec![0.1, 0.9, 0.3, 0.9, 0.0];
        // Ties between 1 and 3 break toward the smaller id first; top-3 is
        // {1, 3, 2}, returned sorted by id.
        assert_eq!(
            top_scored(&scores, 3),
            vec![NodeId(1), NodeId(2), NodeId(3)]
        );
        assert_eq!(top_scored(&scores, 0), Vec::<NodeId>::new());
        assert_eq!(top_scored(&scores, 99).len(), 5);
    }

    #[test]
    fn all_ones_init_is_less_topic_specific() {
        // With the literal Algorithm-7 initialization, two different topics
        // produce more similar score vectors than with topic-rooted init:
        // the shared global-centrality component dominates.
        let (g, walks) = line_with_hub();
        let cosine = |a: &[f64], b: &[f64]| {
            let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
            let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
            let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
            dot / (na * nb).max(1e-30)
        };
        let rooted_a = diversified_pagerank_with_init(
            &g,
            &walks,
            &[NodeId(1)],
            0.85,
            PageRankInit::TopicPrior,
        );
        let rooted_b = diversified_pagerank_with_init(
            &g,
            &walks,
            &[NodeId(4)],
            0.85,
            PageRankInit::TopicPrior,
        );
        let ones_a =
            diversified_pagerank_with_init(&g, &walks, &[NodeId(1)], 0.85, PageRankInit::AllOnes);
        let ones_b =
            diversified_pagerank_with_init(&g, &walks, &[NodeId(4)], 0.85, PageRankInit::AllOnes);
        assert!(
            cosine(&ones_a, &ones_b) > cosine(&rooted_a, &rooted_b),
            "all-ones init should blur topics: ones {} vs rooted {}",
            cosine(&ones_a, &ones_b),
            cosine(&rooted_a, &rooted_b)
        );
    }

    #[test]
    #[should_panic]
    fn empty_topic_rejected() {
        let (g, walks) = line_with_hub();
        let _ = diversified_pagerank(&g, &walks, &[], 0.85);
    }
}
