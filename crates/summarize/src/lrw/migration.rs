//! Local influence migration via absorbing random walks (Algorithm 8).
//!
//! Every topic node's `1/|V_t|` of local influence is distributed over the
//! representative nodes that *absorb* its sampled walks: scanning each stored
//! walk, the first representative encountered is the absorbing state, and the
//! closeness `1 / (D + 1)` (D = hop distance along the walk) is recorded in
//! the association matrix `M`. A backward pass from each representative's own
//! walks catches topic nodes whose forward walks missed nearby
//! representatives. Rows of `M` are then normalized into a closeness
//! distribution `M'`, and representative `j`'s weight is
//! `Σ_i M'(i,j) · 1/|V_t|` — so one topic node can be represented by several
//! representatives with different probabilities (fixing RCL-A's hard
//! single-assignment limitation).

use pit_graph::NodeId;
use pit_walk::WalkIndex;
use rustc_hash::FxHashMap;

/// Migrate local influence of `topic_nodes` onto `reps` (both deduplicated;
/// `reps` sorted). Returns one weight per representative, aligned to `reps`.
///
/// Weights are non-negative and sum to at most 1; the total equals
/// `(covered topic nodes) / |V_t|` where a topic node is covered when at
/// least one sampled walk connects it to a representative.
pub fn migrate_influence(walks: &WalkIndex, topic_nodes: &[NodeId], reps: &[NodeId]) -> Vec<f64> {
    let m = topic_nodes.len();
    let k = reps.len();
    if m == 0 || k == 0 {
        return vec![0.0; k];
    }

    let rep_idx: FxHashMap<NodeId, u32> = reps
        .iter()
        .enumerate()
        .map(|(j, &r)| (r, j as u32))
        .collect();
    let topic_idx: FxHashMap<NodeId, u32> = topic_nodes
        .iter()
        .enumerate()
        .map(|(i, &t)| (t, i as u32))
        .collect();

    // Sparse rows: matrix[i] maps rep index -> closeness.
    let mut matrix: Vec<FxHashMap<u32, f64>> = vec![FxHashMap::default(); m];

    let record = |matrix: &mut Vec<FxHashMap<u32, f64>>, i: u32, j: u32, dist: usize| {
        let closeness = 1.0 / (dist as f64 + 1.0);
        let cell = matrix[i as usize].entry(j).or_insert(0.0);
        if closeness > *cell {
            *cell = closeness;
        }
    };

    // Forward pass (Algorithm 8 lines 3–7): topic node walks, first rep
    // absorbs. A topic node that is itself a representative absorbs at
    // distance 0.
    for (i, &v) in topic_nodes.iter().enumerate() {
        if let Some(&j) = rep_idx.get(&v) {
            record(&mut matrix, i as u32, j, 0);
        }
        for walk in walks.walks(v) {
            for (d0, node) in walk.iter().enumerate() {
                if let Some(&j) = rep_idx.get(node) {
                    record(&mut matrix, i as u32, j, d0 + 1);
                    break; // absorbing state: walk cannot leave
                }
            }
        }
    }

    // Backward pass (lines 8–12): representative walks, first topic node
    // absorbed.
    for (j, &r) in reps.iter().enumerate() {
        for walk in walks.walks(r) {
            for (d0, node) in walk.iter().enumerate() {
                if let Some(&i) = topic_idx.get(node) {
                    record(&mut matrix, i, j as u32, d0 + 1);
                    break;
                }
            }
        }
    }

    // Normalize rows (lines 13–18) and aggregate columns (lines 19–22).
    let local = 1.0 / m as f64;
    let mut weights = vec![0.0f64; k];
    for row in &matrix {
        let row_weight: f64 = row.values().sum();
        if row_weight <= 0.0 {
            continue; // topic node with no absorbing representative
        }
        for (&j, &val) in row {
            weights[j as usize] += val / row_weight * local;
        }
    }
    weights
}

#[cfg(test)]
mod tests {
    use super::*;
    use pit_graph::GraphBuilder;
    use pit_walk::{WalkConfig, WalkIndex};

    /// Deterministic path 0→1→2→3→4: walks are forced.
    fn path_walks(n: usize, l: usize) -> WalkIndex {
        let mut b = GraphBuilder::new(n);
        for i in 0..(n as u32 - 1) {
            b.add_edge(NodeId(i), NodeId(i + 1), 0.5).unwrap();
        }
        WalkIndex::build(&b.build().unwrap(), WalkConfig::new(l, 4))
    }

    #[test]
    fn nearest_rep_absorbs_with_higher_closeness() {
        // Topic node 0; reps {1, 3}. Forward walk 0→1→… absorbs at 1 with
        // D = 1 (closeness 0.5); rep 3 is never first, so row = {1: 0.5}.
        let walks = path_walks(5, 4);
        let w = migrate_influence(&walks, &[NodeId(0)], &[NodeId(1), NodeId(3)]);
        assert!(
            (w[0] - 1.0).abs() < 1e-12,
            "all weight goes to rep 1: {w:?}"
        );
        assert_eq!(w[1], 0.0);
    }

    #[test]
    fn backward_pass_catches_upstream_topics() {
        // Topic node 2, rep 0. Forward walks of 2 go 2→3→4 and never meet 0;
        // the backward walk of rep 0 (0→1→2→…) absorbs topic 2 at D = 2.
        let walks = path_walks(5, 4);
        let w = migrate_influence(&walks, &[NodeId(2)], &[NodeId(0)]);
        assert!((w[0] - 1.0).abs() < 1e-12, "backward pass missed: {w:?}");
    }

    #[test]
    fn topic_node_that_is_rep_self_absorbs() {
        let walks = path_walks(5, 4);
        // Node 1 is both topic and rep; rep 3 is downstream (D = 2 → 1/3).
        // Self-closeness 1/(0+1) = 1 dominates the row after normalization:
        // 1 / (1 + 1/3) = 0.75.
        let w = migrate_influence(&walks, &[NodeId(1)], &[NodeId(1), NodeId(3)]);
        assert!((w[0] - 0.75).abs() < 1e-9, "{w:?}");
        assert!((w[1] - 0.25).abs() < 1e-9, "{w:?}");
    }

    #[test]
    fn weights_sum_to_covered_fraction() {
        let walks = path_walks(6, 5);
        // Topic {0, 5}: node 0 reaches rep 2; node 5 is a sink with empty
        // walks and rep walks (2→3→4→5) absorb it. Both covered → total 1.
        let w = migrate_influence(&walks, &[NodeId(0), NodeId(5)], &[NodeId(2)]);
        let total: f64 = w.iter().sum();
        assert!((total - 1.0).abs() < 1e-12, "{w:?}");
    }

    #[test]
    fn uncovered_topic_contributes_nothing() {
        // Two disconnected paths: 0→1 and 2→3. Topic {0, 2}, rep {1}.
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 0.5).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 0.5).unwrap();
        let walks = WalkIndex::build(&b.build().unwrap(), WalkConfig::new(3, 4));
        let w = migrate_influence(&walks, &[NodeId(0), NodeId(2)], &[NodeId(1)]);
        // Only topic 0 is covered: weight = 1/2.
        assert!((w[0] - 0.5).abs() < 1e-12, "{w:?}");
    }

    #[test]
    fn empty_inputs() {
        let walks = path_walks(3, 2);
        assert!(migrate_influence(&walks, &[], &[NodeId(0)])
            .iter()
            .all(|&w| w == 0.0));
        assert!(migrate_influence(&walks, &[NodeId(0)], &[]).is_empty());
    }

    #[test]
    fn absorbing_stops_at_first_rep() {
        // Path 0→1→2 with reps {1, 2}: topic 0's walk must credit only rep 1
        // (the absorbing state), never rep 2 — plus rep 2's backward walk
        // doesn't reach 0. Row = {rep1: 1/2} → all weight on rep 1.
        let walks = path_walks(3, 2);
        let w = migrate_influence(&walks, &[NodeId(0)], &[NodeId(1), NodeId(2)]);
        assert!((w[0] - 1.0).abs() < 1e-12, "{w:?}");
        assert_eq!(w[1], 0.0, "{w:?}");
    }
}
