//! **LRW-A** — approximate L-length random-walk summarization
//! (Section 4, Algorithm 9).
//!
//! Offline pipeline per topic:
//! 1. rank every node with the diversified, vertex-reinforced PageRank of
//!    Equation 5 ([`pagerank`] — Algorithm 7), reinforced by the time-variant
//!    visiting frequencies `H` of the sampled-walk index;
//! 2. keep the top `μ·|V_t|` nodes (or an explicit target count) as the
//!    representative set `V_{r,t}`;
//! 3. migrate the topic nodes' local influence onto the representatives with
//!    absorbing random walks ([`migration`] — Algorithm 8).

pub mod migration;
pub mod pagerank;

use crate::repset::RepresentativeSet;
use crate::{SummarizeContext, Summarizer};
use pit_graph::TopicId;

/// LRW-A parameters.
#[derive(Clone, Copy, Debug)]
pub struct LrwConfig {
    /// Damping `λ` of Equation 5 (weight of the reinforced-walk term).
    pub lambda: f64,
    /// Representative fraction `μ ∈ (0, 1)`: keep `⌈μ·|V_t|⌉` nodes.
    pub mu: f64,
    /// Explicit representative count, overriding `mu` when set (used by the
    /// experiments that sweep the materialized set size, Figures 7/12).
    pub rep_count: Option<usize>,
    /// PageRank initialization policy (topic-rooted by default; the literal
    /// Algorithm-7 all-ones initialization is kept for ablation runs — see
    /// the [`pagerank`] module docs).
    pub init: pagerank::PageRankInit,
}

impl Default for LrwConfig {
    fn default() -> Self {
        LrwConfig {
            lambda: 0.85,
            mu: 0.2,
            rep_count: None,
            init: pagerank::PageRankInit::TopicPrior,
        }
    }
}

/// The LRW-A summarizer (Algorithm 9, offline part).
#[derive(Clone, Debug)]
pub struct LrwSummarizer {
    config: LrwConfig,
}

impl LrwSummarizer {
    /// Create a summarizer with the given configuration.
    pub fn new(config: LrwConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&config.lambda),
            "lambda must be in [0,1]"
        );
        assert!(config.mu > 0.0 && config.mu <= 1.0, "mu must be in (0,1]");
        if let Some(c) = config.rep_count {
            assert!(c >= 1, "explicit representative count must be positive");
        }
        LrwSummarizer { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &LrwConfig {
        &self.config
    }

    fn target_count(&self, vt_len: usize) -> usize {
        self.config
            .rep_count
            .unwrap_or_else(|| ((self.config.mu * vt_len as f64).ceil() as usize).max(1))
    }
}

impl Summarizer for LrwSummarizer {
    fn summarize(&self, ctx: &SummarizeContext<'_>, topic: TopicId) -> RepresentativeSet {
        let vt = ctx.space.topic_nodes(topic);
        if vt.is_empty() {
            return RepresentativeSet::new(topic, Vec::new());
        }
        let scores = pagerank::diversified_pagerank_with_init(
            ctx.graph,
            ctx.walks,
            vt,
            self.config.lambda,
            self.config.init,
        );
        let reps = pagerank::top_scored(&scores, self.target_count(vt.len()));
        let weights = migration::migrate_influence(ctx.walks, vt, &reps);
        let pairs = reps.into_iter().zip(weights).collect();
        RepresentativeSet::new(topic, pairs)
    }

    fn name(&self) -> &'static str {
        "LRW-A"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pit_graph::{fixtures, TermId};
    use pit_topics::TopicSpaceBuilder;
    use pit_walk::{WalkConfig, WalkIndex};

    fn fig1_context() -> (pit_graph::CsrGraph, pit_topics::TopicSpace, WalkIndex) {
        let g = fixtures::figure1_graph();
        let mut b = TopicSpaceBuilder::new(g.node_count(), 1);
        for nodes in &fixtures::figure1_topics() {
            let t = b.add_topic(vec![TermId(0)]);
            for &n in nodes {
                b.assign(n, t);
            }
        }
        let space = b.build();
        let walks = WalkIndex::build(&g, WalkConfig::new(4, 32).with_seed(3));
        (g, space, walks)
    }

    #[test]
    fn summary_covers_topics_with_bounded_weight() {
        let (g, space, walks) = fig1_context();
        let ctx = SummarizeContext {
            graph: &g,
            space: &space,
            walks: &walks,
        };
        let lrw = LrwSummarizer::new(LrwConfig::default());
        for t in space.topics() {
            let reps = lrw.summarize(&ctx, t);
            assert!(!reps.is_empty(), "topic {t} got no representatives");
            let total = reps.total_weight();
            assert!(
                (0.0..=1.0 + 1e-9).contains(&total),
                "topic {t}: total weight {total}"
            );
        }
    }

    #[test]
    fn rep_count_override_caps_set_size() {
        let (g, space, walks) = fig1_context();
        let ctx = SummarizeContext {
            graph: &g,
            space: &space,
            walks: &walks,
        };
        let lrw = LrwSummarizer::new(LrwConfig {
            rep_count: Some(2),
            ..LrwConfig::default()
        });
        for t in space.topics() {
            assert!(lrw.summarize(&ctx, t).len() <= 2);
        }
    }

    #[test]
    fn mu_controls_set_size() {
        let (g, space, walks) = fig1_context();
        let ctx = SummarizeContext {
            graph: &g,
            space: &space,
            walks: &walks,
        };
        let t = pit_graph::TopicId(0); // |V_t| = 5
        let small = LrwSummarizer::new(LrwConfig {
            mu: 0.2,
            ..LrwConfig::default()
        })
        .summarize(&ctx, t);
        let large = LrwSummarizer::new(LrwConfig {
            mu: 1.0,
            ..LrwConfig::default()
        })
        .summarize(&ctx, t);
        assert_eq!(small.len(), 1);
        assert_eq!(large.len(), 5);
    }

    #[test]
    fn deterministic() {
        let (g, space, walks) = fig1_context();
        let ctx = SummarizeContext {
            graph: &g,
            space: &space,
            walks: &walks,
        };
        let lrw = LrwSummarizer::new(LrwConfig::default());
        let a = lrw.summarize(&ctx, pit_graph::TopicId(1));
        let b = lrw.summarize(&ctx, pit_graph::TopicId(1));
        assert_eq!(a, b);
    }

    #[test]
    fn empty_topic_is_empty_summary() {
        let g = fixtures::figure1_graph();
        let mut b = TopicSpaceBuilder::new(g.node_count(), 1);
        let t = b.add_topic(vec![TermId(0)]);
        let space = b.build();
        let walks = WalkIndex::build(&g, WalkConfig::new(3, 4));
        let ctx = SummarizeContext {
            graph: &g,
            space: &space,
            walks: &walks,
        };
        assert!(LrwSummarizer::new(LrwConfig::default())
            .summarize(&ctx, t)
            .is_empty());
    }

    #[test]
    fn reps_are_near_topic_nodes() {
        // On the Figure-1 graph with full mu, representatives for t1 should
        // include nodes on t1's influence paths (e.g. user 5 or user 3's
        // upstream), never isolated bystanders with zero score... verify all
        // reps have positive PageRank mass by checking weights or membership.
        let (g, space, walks) = fig1_context();
        let ctx = SummarizeContext {
            graph: &g,
            space: &space,
            walks: &walks,
        };
        let lrw = LrwSummarizer::new(LrwConfig {
            mu: 0.4,
            ..LrwConfig::default()
        });
        let reps = lrw.summarize(&ctx, pit_graph::TopicId(0));
        let vt = space.topic_nodes(pit_graph::TopicId(0));
        // With a prior concentrated on V_t, every representative must be a
        // topic node or reachable from one within L hops (per the sampled
        // reach index) — never an unrelated bystander.
        for (r, _) in reps.iter() {
            let near = vt.contains(&r) || walks.reach_set(r).iter().any(|x| vt.contains(x));
            assert!(near, "representative {r} is not near V_t = {vt:?}");
        }
    }

    #[test]
    #[should_panic]
    fn invalid_mu_rejected() {
        let _ = LrwSummarizer::new(LrwConfig {
            mu: 0.0,
            ..LrwConfig::default()
        });
    }
}
