//! # pit-summarize
//!
//! Topic-aware social summarization (Definition 1 of the paper): given a
//! topic `t` with topic-node set `V_t`, select a bounded set of
//! *representative nodes* with weights that approximates the influence of all
//! of `V_t` over the network.
//!
//! Two approaches, as in the paper:
//!
//! * [`rcl`] — **RCL-A** (Section 3, Algorithms 1–5): cluster topic nodes by
//!   common reachability over a sampled probe set, pick one *central* node
//!   per cluster by closeness centrality, weight it by cluster size.
//! * [`lrw`] — **LRW-A** (Section 4, Algorithms 7–9): rank nodes with a
//!   vertex-reinforced *diversified PageRank* driven by the time-variant
//!   visiting frequencies of sampled walks, keep the top `μ·|V_t|`, and
//!   migrate the topic nodes' local influence onto them with absorbing
//!   random walks.
//!
//! Both implement the [`Summarizer`] trait and produce a
//! [`RepresentativeSet`] the online search (`pit-search-core`) consumes.

#![forbid(unsafe_code)]

pub mod lrw;
pub mod rcl;
pub mod repset;

pub use lrw::pagerank::PageRankInit;
pub use lrw::{LrwConfig, LrwSummarizer};
pub use rcl::{RclConfig, RclSummarizer};
pub use repset::RepresentativeSet;

use pit_graph::{CsrGraph, TopicId};
use pit_topics::TopicSpace;
use pit_walk::WalkIndex;

/// Shared inputs of a summarization run.
pub struct SummarizeContext<'a> {
    /// The social graph.
    pub graph: &'a CsrGraph,
    /// The topic space (source of `V_t`).
    pub space: &'a TopicSpace,
    /// The sampled-walk index of Algorithm 6.
    pub walks: &'a WalkIndex,
}

/// A topic-aware social summarization strategy.
pub trait Summarizer {
    /// Select and weight representative nodes for `topic`.
    fn summarize(&self, ctx: &SummarizeContext<'_>, topic: TopicId) -> RepresentativeSet;

    /// Human-readable name for reports ("RCL-A", "LRW-A").
    fn name(&self) -> &'static str;
}
