//! Weighted representative node sets — the output of social summarization.

use pit_graph::{NodeId, TopicId};

/// The social summarization of one topic: representative nodes with the local
/// influence weight each carries (the `weight(u, t)` of Definition 1).
///
/// Nodes are kept sorted by id so the online search can intersect a
/// representative set with the propagation index `Γ(v)` by merge/probe.
/// Weights are non-negative and, for both paper algorithms, sum to at most 1
/// (each topic node contributes `1/|V_t|` of local influence, distributed —
/// possibly partially — over the representatives).
#[derive(Clone, Debug, PartialEq)]
pub struct RepresentativeSet {
    topic: TopicId,
    nodes: Vec<NodeId>,
    weights: Vec<f64>,
}

impl RepresentativeSet {
    /// Build from `(node, weight)` pairs; sorts by node and merges duplicate
    /// nodes by summing their weights.
    ///
    /// # Panics
    /// Panics if any weight is negative or non-finite.
    pub fn new(topic: TopicId, mut pairs: Vec<(NodeId, f64)>) -> Self {
        for &(n, w) in &pairs {
            assert!(
                w.is_finite() && w >= 0.0,
                "representative {n} has invalid weight {w}"
            );
        }
        pairs.sort_unstable_by_key(|&(n, _)| n);
        let mut nodes: Vec<NodeId> = Vec::with_capacity(pairs.len());
        let mut weights: Vec<f64> = Vec::with_capacity(pairs.len());
        for (n, w) in pairs {
            if nodes.last() == Some(&n) {
                *weights.last_mut().expect("parallel arrays") += w;
            } else {
                nodes.push(n);
                weights.push(w);
            }
        }
        RepresentativeSet {
            topic,
            nodes,
            weights,
        }
    }

    /// The topic this set summarizes.
    #[inline]
    pub fn topic(&self) -> TopicId {
        self.topic
    }

    /// Number of representative nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Sorted representative node ids.
    #[inline]
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Weights parallel to [`RepresentativeSet::nodes`].
    #[inline]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The weight of `node`, or `None` if it is not a representative.
    pub fn weight_of(&self, node: NodeId) -> Option<f64> {
        self.nodes
            .binary_search(&node)
            .ok()
            .map(|i| self.weights[i])
    }

    /// Whether `node` is a representative.
    pub fn contains(&self, node: NodeId) -> bool {
        self.nodes.binary_search(&node).is_ok()
    }

    /// Sum of all weights (≤ 1 for the paper's algorithms).
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// Iterate `(node, weight)` pairs in node order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        self.nodes.iter().copied().zip(self.weights.iter().copied())
    }

    /// Keep only the `k` heaviest representatives (ties broken by node id),
    /// preserving node-sorted order. Used by the experiments that vary the
    /// materialized representative-set size (paper Figures 7 and 12).
    pub fn truncate_to_top(&self, k: usize) -> RepresentativeSet {
        if k >= self.len() {
            return self.clone();
        }
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.sort_unstable_by(|&a, &b| {
            self.weights[b]
                .total_cmp(&self.weights[a])
                .then(self.nodes[a].cmp(&self.nodes[b]))
        });
        order.truncate(k);
        let pairs = order
            .into_iter()
            .map(|i| (self.nodes[i], self.weights[i]))
            .collect();
        RepresentativeSet::new(self.topic, pairs)
    }

    /// Estimated resident heap size in bytes.
    pub fn heap_size_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<NodeId>()
            + self.weights.capacity() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_and_merges_duplicates() {
        let s = RepresentativeSet::new(
            TopicId(0),
            vec![(NodeId(5), 0.2), (NodeId(1), 0.3), (NodeId(5), 0.1)],
        );
        assert_eq!(s.nodes(), &[NodeId(1), NodeId(5)]);
        assert_eq!(s.weights(), &[0.3, 0.30000000000000004]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn weight_lookup() {
        let s = RepresentativeSet::new(TopicId(1), vec![(NodeId(2), 0.4), (NodeId(7), 0.6)]);
        assert_eq!(s.weight_of(NodeId(2)), Some(0.4));
        assert_eq!(s.weight_of(NodeId(3)), None);
        assert!(s.contains(NodeId(7)));
        assert!(!s.contains(NodeId(0)));
        assert!((s.total_weight() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn rejects_negative_weight() {
        let _ = RepresentativeSet::new(TopicId(0), vec![(NodeId(0), -0.1)]);
    }

    #[test]
    #[should_panic]
    fn rejects_nan_weight() {
        let _ = RepresentativeSet::new(TopicId(0), vec![(NodeId(0), f64::NAN)]);
    }

    #[test]
    fn truncate_keeps_heaviest() {
        let s = RepresentativeSet::new(
            TopicId(0),
            vec![
                (NodeId(0), 0.1),
                (NodeId(1), 0.5),
                (NodeId(2), 0.05),
                (NodeId(3), 0.35),
            ],
        );
        let t = s.truncate_to_top(2);
        assert_eq!(t.nodes(), &[NodeId(1), NodeId(3)]);
        assert_eq!(t.weights(), &[0.5, 0.35]);
        // k >= len is identity.
        assert_eq!(s.truncate_to_top(10), s);
    }

    #[test]
    fn empty_set_behaves() {
        let s = RepresentativeSet::new(TopicId(0), vec![]);
        assert!(s.is_empty());
        assert_eq!(s.total_weight(), 0.0);
        assert!(s.truncate_to_top(3).is_empty());
    }
}
