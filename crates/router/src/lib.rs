//! pit-router: sharded scatter-gather serving for PIT-Search.
//!
//! The single-node engine holds every user's Γ(v) propagation index and
//! walk table in one process. Past a few hundred million table entries that
//! stops fitting, so this crate partitions *users* across N engine shards
//! (deterministic map: [`pit::shard_of`], `v mod N`) and serves the union
//! behind one front door:
//!
//! - [`ShardedEngine`] implements the server's
//!   [`ServeEngine`](pit_server::ServeEngine) surface by driving the exact
//!   single-node search state machine
//!   ([`SearchDriver`](pit_search_core::SearchDriver)) over per-shard
//!   `EXPAND` probes — rankings are bit-identical to single-node by
//!   construction, including tie-breaks.
//! - [`ShardTransport`] abstracts where a shard lives:
//!   [`LocalTransport`] (in-process slice, used by `pit route --local` and
//!   the equivalence proofs) or [`RemoteTransport`] (a `pit serve` backend
//!   over the length-prefixed wire protocol).
//!
//! Honesty guarantees, end to end:
//!
//! - **Generation coherence.** Every `EXPAND` carries the generation the
//!   query was admitted against; a backend that reloaded mid-flight refuses
//!   the probe. Mixed-generation answers are structurally impossible.
//! - **Partial provenance.** A shard that times out, sheds, or faults
//!   mid-query is reported once in the reply's `partial=` clause with the
//!   `timeout | overloaded | internal` taxonomy — except the home shard,
//!   whose Γ(v) seeds the search: losing it fails the query honestly.
//! - **Cross-shard pruning.** The driver's §5.2 upper bound stops the
//!   search globally; shards whose frontier never rose above the running
//!   k-th score are never contacted and counted in `shards_pruned`.

pub mod sharded;
pub mod transport;

pub use sharded::ShardedEngine;
pub use transport::{LocalTransport, RemoteTransport, ShardError, ShardTransport};
