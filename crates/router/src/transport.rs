//! How the router reaches one shard: in-process (a slice engine behind the
//! same [`ServeEngine`] trait the daemon serves) or over TCP (a framed
//! client speaking the existing `pit-server` protocol).
//!
//! Failures map onto the serving taxonomy — `timeout` | `overloaded` |
//! `internal` — because that is what a partial reply reports per missing
//! shard; a transport never invents a fourth word.

use parking_lot::Mutex;
use pit::Delta;
use pit_server::protocol::{read_frame, write_frame, ProbeTable, Request, Response};
use pit_server::{ServeEngine, ServerConfig, ServerState};
use std::net::{TcpStream, ToSocketAddrs};
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why one shard could not answer, in the wire taxonomy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShardError {
    /// The shard did not answer within the query's remaining budget.
    Timeout,
    /// The shard shed the request at admission.
    Overloaded,
    /// Anything else: transport failure, generation mismatch, malformed
    /// reply — a fault, with the reason preserved for logs.
    Internal(String),
}

impl ShardError {
    /// The single-word taxonomy class carried in `partial=` annotations.
    pub fn word(&self) -> &'static str {
        match self {
            ShardError::Timeout => "timeout",
            ShardError::Overloaded => "overloaded",
            ShardError::Internal(_) => "internal",
        }
    }

    /// Full human-readable reason (logs and `ServeError::Shard`).
    pub fn describe(&self) -> String {
        match self {
            ShardError::Timeout => "timeout".to_string(),
            ShardError::Overloaded => "overloaded".to_string(),
            ShardError::Internal(reason) => reason.clone(),
        }
    }
}

/// One shard as the router sees it. Implementations are `Sync`: the router
/// probes different shards from different scatter threads, but issues at
/// most one in-flight call per shard at a time.
pub trait ShardTransport: Send + Sync {
    /// Where this shard lives, for error messages.
    fn location(&self) -> String;

    /// `SHARD` — the shard's position, fleet size, and serving generation.
    ///
    /// # Errors
    /// Transport or protocol failure, classified.
    fn shard_info(&self) -> Result<(u32, u32, u64), ShardError>;

    /// `EXPAND` — probe Γ-tables for `probes` under generation `gen`,
    /// returning one table per probe in request order plus the shard's
    /// residual §5.2 upper bound. `deadline` caps the wait.
    ///
    /// # Errors
    /// Transport failure, generation mismatch, or a backend `ERR`.
    fn expand(
        &self,
        gen: u64,
        terms: &[u32],
        probes: &[(u32, f64)],
        deadline: Option<Instant>,
    ) -> Result<(Vec<ProbeTable>, f64), ShardError>;

    /// `PREPARE DIR` — stage a successor engine from a snapshot directory.
    ///
    /// # Errors
    /// Build failure (reported verbatim) or transport failure.
    fn prepare_dir(&self, dir: &Path) -> Result<(), ShardError>;

    /// `PREPARE UPDATE` — stage a successor engine from a delta.
    ///
    /// # Errors
    /// Build failure (reported verbatim) or transport failure.
    fn prepare_update(&self, delta: &Delta) -> Result<(), ShardError>;

    /// `COMMIT` — swap the staged successor in; returns the new generation.
    ///
    /// # Errors
    /// Nothing staged, or transport failure.
    fn commit(&self) -> Result<u64, ShardError>;

    /// `ABORT` — drop any staged successor; returns the serving generation.
    /// Idempotent by design, so a fleet-wide abort sweep can hit shards
    /// that never staged.
    ///
    /// # Errors
    /// Transport failure only.
    fn abort(&self) -> Result<u64, ShardError>;
}

/// An in-process shard: a slice engine behind a private [`ServerState`], so
/// generations, two-phase staging, and reload accounting behave exactly as
/// they would in a remote `pit serve` — one code path, two deployments.
pub struct LocalTransport {
    state: ServerState,
}

impl LocalTransport {
    /// Wrap one slice engine (generation starts at 1, like a fresh daemon).
    pub fn new(engine: Arc<dyn ServeEngine>) -> Self {
        LocalTransport {
            state: ServerState::with_engine(engine, ServerConfig::default()),
        }
    }
}

impl ShardTransport for LocalTransport {
    fn location(&self) -> String {
        "in-process".to_string()
    }

    fn shard_info(&self) -> Result<(u32, u32, u64), ShardError> {
        let current = self.state.current();
        let (index, count) = match current.engine.shard_spec() {
            Some(spec) => (spec.index, spec.count),
            None => (0, 1),
        };
        Ok((index, count, current.generation))
    }

    fn expand(
        &self,
        gen: u64,
        terms: &[u32],
        probes: &[(u32, f64)],
        _deadline: Option<Instant>,
    ) -> Result<(Vec<ProbeTable>, f64), ShardError> {
        // In-process probes cannot be abandoned mid-call; the driver's own
        // cancellation checkpoints bound the query instead.
        let current = self.state.current();
        if current.generation != gen {
            return Err(ShardError::Internal(format!(
                "shard generation changed (serving {}, request {gen})",
                current.generation
            )));
        }
        current
            .engine
            .expand(terms, probes)
            .map_err(ShardError::Internal)
    }

    fn prepare_dir(&self, dir: &Path) -> Result<(), ShardError> {
        self.state.prepare_dir(dir).map_err(ShardError::Internal)
    }

    fn prepare_update(&self, delta: &Delta) -> Result<(), ShardError> {
        self.state
            .prepare_update(delta)
            .map_err(ShardError::Internal)
    }

    fn commit(&self) -> Result<u64, ShardError> {
        self.state.commit_staged().map_err(ShardError::Internal)
    }

    fn abort(&self) -> Result<u64, ShardError> {
        Ok(self.state.abort_staged())
    }
}

/// A transport-level failure, plus whether it has the shape a server-side
/// idle cut leaves on a pooled connection — the one shape that proves the
/// request was never served and is therefore safe to retry.
struct CallFailure {
    error: ShardError,
    stale: bool,
}

impl CallFailure {
    /// A failure that must never trigger a retry.
    fn hard(error: ShardError) -> Self {
        CallFailure {
            error,
            stale: false,
        }
    }
}

/// `min(deadline − now, io_timeout)` — or `Timeout` if the deadline passed.
fn remaining_budget(
    deadline: Option<Instant>,
    io_timeout: Duration,
) -> Result<Duration, ShardError> {
    match deadline {
        Some(d) => {
            let now = Instant::now();
            if d <= now {
                Err(ShardError::Timeout)
            } else {
                Ok((d - now).min(io_timeout))
            }
        }
        None => Ok(io_timeout),
    }
}

/// A remote shard behind a `pit serve` daemon, over the length-prefixed
/// text protocol. One pooled connection, re-dialed on demand; any I/O error
/// drops the connection (the stream position is unknowable mid-frame). The
/// single failure shape an idle-cut pooled connection produces is retried
/// once on a fresh dial — see `call` for the exact conditions.
pub struct RemoteTransport {
    addr: String,
    conn: Mutex<Option<TcpStream>>,
    /// Per-call I/O cap. A query deadline can only *shorten* a call's wait,
    /// never extend it past this — so one dragged shard costs the query at
    /// most `io_timeout`, and the round degrades to an honest `partial`
    /// instead of the whole query dying at its budget.
    io_timeout: Duration,
}

impl RemoteTransport {
    /// A transport for the daemon at `addr` (`host:port`).
    pub fn new(addr: impl Into<String>, io_timeout: Duration) -> Self {
        RemoteTransport {
            addr: addr.into(),
            conn: Mutex::named("router.transport.conn", None),
            io_timeout,
        }
    }

    /// One request/response exchange under `min(deadline, io_timeout)`.
    /// Classifies every failure into the taxonomy.
    ///
    /// A *pooled* connection that the server idled out between calls fails
    /// with a distinctive signature — the write is refused, or EOF arrives
    /// before a single reply byte — meaning the request was never served.
    /// That one case is retried once on a fresh dial (within whatever
    /// remains of the deadline), so routine server-side idle cuts never
    /// surface as shard faults. A failure on a fresh connection, or one
    /// after reply bytes started flowing, is reported as-is.
    fn call(&self, request: &Request, deadline: Option<Instant>) -> Result<Response, ShardError> {
        let budget = remaining_budget(deadline, self.io_timeout)?;
        let mut guard = self.conn.lock();
        let reused = guard.is_some();
        if guard.is_none() {
            *guard = Some(self.dial(budget)?);
        }
        // The guard stays held for the exchange: the protocol is strictly
        // request/reply per connection, and the router issues one call per
        // shard at a time anyway.
        let Some(stream) = guard.as_mut() else {
            // Unreachable — the dial above just filled the slot — but the
            // serving stack returns errors rather than panicking.
            return Err(ShardError::Internal(format!(
                "{}: connection pool invariant broken",
                self.addr
            )));
        };
        let failure = match self.exchange(stream, budget, request) {
            Ok(Response::Err(reason)) => {
                // Server-side errors leave the connection usable.
                return Err(classify_err_reply(&reason));
            }
            Ok(resp) => return Ok(resp),
            Err(f) => f,
        };
        // Transport-level failure: the stream may hold a half frame.
        *guard = None;
        if reused && failure.stale {
            let budget = remaining_budget(deadline, self.io_timeout)?;
            let mut fresh = self.dial(budget)?;
            return match self.exchange(&mut fresh, budget, request) {
                Ok(Response::Err(reason)) => {
                    *guard = Some(fresh);
                    Err(classify_err_reply(&reason))
                }
                Ok(resp) => {
                    *guard = Some(fresh);
                    Ok(resp)
                }
                Err(retry_failure) => Err(retry_failure.error),
            };
        }
        Err(failure.error)
    }

    /// Write one request and read its reply on `stream`, flagging the
    /// failure shapes an idle-cut pooled connection produces.
    fn exchange(
        &self,
        stream: &mut TcpStream,
        budget: Duration,
        request: &Request,
    ) -> Result<Response, CallFailure> {
        stream
            .set_write_timeout(Some(budget))
            .and_then(|()| stream.set_read_timeout(Some(budget)))
            .map_err(|e| CallFailure::hard(ShardError::Internal(format!("{}: {e}", self.addr))))?;
        write_frame(stream, &request.render()).map_err(|e| CallFailure {
            // A peer that already closed refuses the write outright — the
            // request never left this process.
            stale: matches!(
                e.kind(),
                std::io::ErrorKind::BrokenPipe
                    | std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::ConnectionAborted
            ),
            error: self.classify_io(&e),
        })?;
        let text = read_frame(stream)
            .map_err(|e| CallFailure {
                // A reset before any reply byte means the peer discarded the
                // request; a timeout or a torn frame does not, so those are
                // never retried.
                stale: matches!(
                    e.kind(),
                    std::io::ErrorKind::ConnectionReset | std::io::ErrorKind::ConnectionAborted
                ),
                error: self.classify_io(&e),
            })?
            .ok_or_else(|| CallFailure {
                // Clean EOF at the frame boundary with zero reply bytes:
                // the server closed (idle cut) without serving the request.
                stale: true,
                error: ShardError::Internal(format!("{}: connection closed mid-call", self.addr)),
            })?;
        Response::parse(&text).map_err(|e| {
            CallFailure::hard(ShardError::Internal(format!(
                "{}: bad reply: {e}",
                self.addr
            )))
        })
    }

    fn dial(&self, budget: Duration) -> Result<TcpStream, ShardError> {
        let addrs = self
            .addr
            .to_socket_addrs()
            .map_err(|e| ShardError::Internal(format!("resolve {}: {e}", self.addr)))?;
        let mut last = ShardError::Internal(format!("resolve {}: no addresses", self.addr));
        for addr in addrs {
            match TcpStream::connect_timeout(&addr, budget) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    return Ok(stream);
                }
                Err(e) => last = self.classify_io(&e),
            }
        }
        Err(last)
    }

    fn classify_io(&self, e: &std::io::Error) -> ShardError {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => ShardError::Timeout,
            _ => ShardError::Internal(format!("{}: {e}", self.addr)),
        }
    }
}

/// Classify a backend `ERR <reason>` by its leading taxonomy word.
fn classify_err_reply(reason: &str) -> ShardError {
    let class = reason.split([' ', ':']).next().unwrap_or_default();
    match class {
        "timeout" => ShardError::Timeout,
        "overloaded" => ShardError::Overloaded,
        _ => ShardError::Internal(reason.to_string()),
    }
}

impl ShardTransport for RemoteTransport {
    fn location(&self) -> String {
        self.addr.clone()
    }

    fn shard_info(&self) -> Result<(u32, u32, u64), ShardError> {
        match self.call(&Request::Shard, None)? {
            Response::ShardInfo { index, count, gen } => Ok((index, count, gen)),
            other => Err(ShardError::Internal(format!(
                "{}: unexpected SHARD reply {other:?}",
                self.addr
            ))),
        }
    }

    fn expand(
        &self,
        gen: u64,
        terms: &[u32],
        probes: &[(u32, f64)],
        deadline: Option<Instant>,
    ) -> Result<(Vec<ProbeTable>, f64), ShardError> {
        let request = Request::Expand {
            gen,
            terms: terms.to_vec(),
            probes: probes.to_vec(),
        };
        match self.call(&request, deadline)? {
            Response::Expanded {
                gen: reply_gen,
                bound,
                tables,
            } => {
                // Belt and braces: the backend already refuses mismatched
                // generations, but a reply from a different generation than
                // requested must never be fed into the driver.
                if reply_gen != gen {
                    return Err(ShardError::Internal(format!(
                        "{}: shard generation changed (serving {reply_gen}, request {gen})",
                        self.addr
                    )));
                }
                if tables.len() != probes.len() {
                    return Err(ShardError::Internal(format!(
                        "{}: EXPAND answered {} tables for {} probes",
                        self.addr,
                        tables.len(),
                        probes.len()
                    )));
                }
                Ok((tables, bound))
            }
            other => Err(ShardError::Internal(format!(
                "{}: unexpected EXPAND reply {other:?}",
                self.addr
            ))),
        }
    }

    fn prepare_dir(&self, dir: &Path) -> Result<(), ShardError> {
        let request = Request::PrepareDir {
            dir: dir.display().to_string(),
        };
        match self.call(&request, None)? {
            Response::Staged => Ok(()),
            other => Err(ShardError::Internal(format!(
                "{}: unexpected PREPARE reply {other:?}",
                self.addr
            ))),
        }
    }

    fn prepare_update(&self, delta: &Delta) -> Result<(), ShardError> {
        let request = Request::PrepareUpdate {
            edges: delta
                .new_edges
                .iter()
                .map(|&(u, v, p)| (u.0, v.0, p))
                .collect(),
            assignments: delta
                .new_assignments
                .iter()
                .map(|&(u, t)| (u.0, t.0))
                .collect(),
        };
        match self.call(&request, None)? {
            Response::Staged => Ok(()),
            other => Err(ShardError::Internal(format!(
                "{}: unexpected PREPARE reply {other:?}",
                self.addr
            ))),
        }
    }

    fn commit(&self) -> Result<u64, ShardError> {
        match self.call(&Request::Commit, None)? {
            Response::Generation(gen) => Ok(gen),
            other => Err(ShardError::Internal(format!(
                "{}: unexpected COMMIT reply {other:?}",
                self.addr
            ))),
        }
    }

    fn abort(&self) -> Result<u64, ShardError> {
        match self.call(&Request::Abort, None)? {
            Response::Generation(gen) => Ok(gen),
            other => Err(ShardError::Internal(format!(
                "{}: unexpected ABORT reply {other:?}",
                self.addr
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::thread;

    fn shard_reply(gen: u64) -> String {
        Response::ShardInfo {
            index: 0,
            count: 1,
            gen,
        }
        .render()
    }

    /// A pooled connection the server closed between calls (an idle cut)
    /// must not surface as a shard fault: the transport re-dials once and
    /// the caller sees only the answer from the fresh connection.
    #[test]
    fn stale_pooled_connection_is_redialed_once() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("local addr");
        let server = thread::spawn(move || {
            // Connection 1: answer one SHARD, then close — exactly what a
            // server-side idle cut does to a parked router connection.
            {
                let (mut s, _) = listener.accept().expect("accept #1");
                let req = read_frame(&mut s).expect("read #1").expect("frame #1");
                assert_eq!(req, Request::Shard.render());
                write_frame(&mut s, &shard_reply(1)).expect("reply #1");
            }
            // Connection 2: the transparent retry lands here.
            let (mut s, _) = listener.accept().expect("accept #2");
            let req = read_frame(&mut s).expect("read #2").expect("frame #2");
            assert_eq!(req, Request::Shard.render());
            write_frame(&mut s, &shard_reply(2)).expect("reply #2");
            // Keep the socket open until the client has read the reply.
            thread::sleep(Duration::from_millis(200));
        });

        let transport = RemoteTransport::new(addr.to_string(), Duration::from_secs(5));
        assert_eq!(transport.shard_info().expect("call #1"), (0, 1, 1));
        // Let the server's FIN land so the pooled socket is visibly dead.
        thread::sleep(Duration::from_millis(100));
        assert_eq!(
            transport
                .shard_info()
                .expect("call #2 should retry on a fresh dial"),
            (0, 1, 2)
        );
        server.join().expect("server thread");
    }

    /// A connection that dies on its *first* use proves nothing about idle
    /// cuts — the shard itself is misbehaving, and retrying would only mask
    /// that. The failure must be reported without a second dial.
    #[test]
    fn fresh_connection_failure_is_not_retried() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("local addr");
        let server = thread::spawn(move || {
            {
                let (mut s, _) = listener.accept().expect("accept #1");
                let _ = read_frame(&mut s); // swallow the request,
            } // answer nothing, close.
              // Any re-dial would land here within the transport's 5s budget;
              // watch long enough to catch it.
            listener.set_nonblocking(true).expect("nonblocking");
            let patience = Instant::now() + Duration::from_millis(400);
            while Instant::now() < patience {
                assert!(
                    listener.accept().is_err(),
                    "a first-use failure must not be retried"
                );
                thread::sleep(Duration::from_millis(10));
            }
        });

        let transport = RemoteTransport::new(addr.to_string(), Duration::from_secs(5));
        let err = transport
            .shard_info()
            .expect_err("first use died unanswered");
        assert!(matches!(err, ShardError::Internal(_)), "got {err:?}");
        server.join().expect("server thread");
    }

    #[test]
    fn remaining_budget_caps_and_times_out() {
        let io = Duration::from_secs(3);
        // No deadline: the per-call cap alone.
        assert_eq!(remaining_budget(None, io).expect("uncapped"), io);
        // Distant deadline: still capped by io_timeout.
        let far = Instant::now() + Duration::from_secs(60);
        assert_eq!(remaining_budget(Some(far), io).expect("capped"), io);
        // Near deadline: the remaining slice wins.
        let near = Instant::now() + Duration::from_millis(50);
        assert!(remaining_budget(Some(near), io).expect("sliced") <= Duration::from_millis(50));
        // Expired deadline: an honest Timeout before any I/O happens.
        let past = Instant::now() - Duration::from_millis(1);
        assert_eq!(
            remaining_budget(Some(past), io).expect_err("expired"),
            ShardError::Timeout
        );
    }
}
