//! How the router reaches one shard: in-process (a slice engine behind the
//! same [`ServeEngine`] trait the daemon serves) or over TCP (a framed
//! client speaking the existing `pit-server` protocol).
//!
//! Failures map onto the serving taxonomy — `timeout` | `overloaded` |
//! `internal` — because that is what a partial reply reports per missing
//! shard; a transport never invents a fourth word.

use parking_lot::Mutex;
use pit::Delta;
use pit_server::protocol::{read_frame, write_frame, ProbeTable, Request, Response};
use pit_server::{ServeEngine, ServerConfig, ServerState};
use std::net::{TcpStream, ToSocketAddrs};
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why one shard could not answer, in the wire taxonomy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShardError {
    /// The shard did not answer within the query's remaining budget.
    Timeout,
    /// The shard shed the request at admission.
    Overloaded,
    /// Anything else: transport failure, generation mismatch, malformed
    /// reply — a fault, with the reason preserved for logs.
    Internal(String),
}

impl ShardError {
    /// The single-word taxonomy class carried in `partial=` annotations.
    pub fn word(&self) -> &'static str {
        match self {
            ShardError::Timeout => "timeout",
            ShardError::Overloaded => "overloaded",
            ShardError::Internal(_) => "internal",
        }
    }

    /// Full human-readable reason (logs and `ServeError::Shard`).
    pub fn describe(&self) -> String {
        match self {
            ShardError::Timeout => "timeout".to_string(),
            ShardError::Overloaded => "overloaded".to_string(),
            ShardError::Internal(reason) => reason.clone(),
        }
    }
}

/// One shard as the router sees it. Implementations are `Sync`: the router
/// probes different shards from different scatter threads, but issues at
/// most one in-flight call per shard at a time.
pub trait ShardTransport: Send + Sync {
    /// Where this shard lives, for error messages.
    fn location(&self) -> String;

    /// `SHARD` — the shard's position, fleet size, and serving generation.
    ///
    /// # Errors
    /// Transport or protocol failure, classified.
    fn shard_info(&self) -> Result<(u32, u32, u64), ShardError>;

    /// `EXPAND` — probe Γ-tables for `probes` under generation `gen`,
    /// returning one table per probe in request order plus the shard's
    /// residual §5.2 upper bound. `deadline` caps the wait.
    ///
    /// # Errors
    /// Transport failure, generation mismatch, or a backend `ERR`.
    fn expand(
        &self,
        gen: u64,
        terms: &[u32],
        probes: &[(u32, f64)],
        deadline: Option<Instant>,
    ) -> Result<(Vec<ProbeTable>, f64), ShardError>;

    /// `PREPARE DIR` — stage a successor engine from a snapshot directory.
    ///
    /// # Errors
    /// Build failure (reported verbatim) or transport failure.
    fn prepare_dir(&self, dir: &Path) -> Result<(), ShardError>;

    /// `PREPARE UPDATE` — stage a successor engine from a delta.
    ///
    /// # Errors
    /// Build failure (reported verbatim) or transport failure.
    fn prepare_update(&self, delta: &Delta) -> Result<(), ShardError>;

    /// `COMMIT` — swap the staged successor in; returns the new generation.
    ///
    /// # Errors
    /// Nothing staged, or transport failure.
    fn commit(&self) -> Result<u64, ShardError>;

    /// `ABORT` — drop any staged successor; returns the serving generation.
    /// Idempotent by design, so a fleet-wide abort sweep can hit shards
    /// that never staged.
    ///
    /// # Errors
    /// Transport failure only.
    fn abort(&self) -> Result<u64, ShardError>;
}

/// An in-process shard: a slice engine behind a private [`ServerState`], so
/// generations, two-phase staging, and reload accounting behave exactly as
/// they would in a remote `pit serve` — one code path, two deployments.
pub struct LocalTransport {
    state: ServerState,
}

impl LocalTransport {
    /// Wrap one slice engine (generation starts at 1, like a fresh daemon).
    pub fn new(engine: Arc<dyn ServeEngine>) -> Self {
        LocalTransport {
            state: ServerState::with_engine(engine, ServerConfig::default()),
        }
    }
}

impl ShardTransport for LocalTransport {
    fn location(&self) -> String {
        "in-process".to_string()
    }

    fn shard_info(&self) -> Result<(u32, u32, u64), ShardError> {
        let current = self.state.current();
        let (index, count) = match current.engine.shard_spec() {
            Some(spec) => (spec.index, spec.count),
            None => (0, 1),
        };
        Ok((index, count, current.generation))
    }

    fn expand(
        &self,
        gen: u64,
        terms: &[u32],
        probes: &[(u32, f64)],
        _deadline: Option<Instant>,
    ) -> Result<(Vec<ProbeTable>, f64), ShardError> {
        // In-process probes cannot be abandoned mid-call; the driver's own
        // cancellation checkpoints bound the query instead.
        let current = self.state.current();
        if current.generation != gen {
            return Err(ShardError::Internal(format!(
                "shard generation changed (serving {}, request {gen})",
                current.generation
            )));
        }
        current
            .engine
            .expand(terms, probes)
            .map_err(ShardError::Internal)
    }

    fn prepare_dir(&self, dir: &Path) -> Result<(), ShardError> {
        self.state.prepare_dir(dir).map_err(ShardError::Internal)
    }

    fn prepare_update(&self, delta: &Delta) -> Result<(), ShardError> {
        self.state
            .prepare_update(delta)
            .map_err(ShardError::Internal)
    }

    fn commit(&self) -> Result<u64, ShardError> {
        self.state.commit_staged().map_err(ShardError::Internal)
    }

    fn abort(&self) -> Result<u64, ShardError> {
        Ok(self.state.abort_staged())
    }
}

/// A remote shard behind a `pit serve` daemon, over the length-prefixed
/// text protocol. One pooled connection, re-dialed on demand; any I/O error
/// drops the connection (the stream position is unknowable mid-frame).
pub struct RemoteTransport {
    addr: String,
    conn: Mutex<Option<TcpStream>>,
    /// Per-call I/O cap. A query deadline can only *shorten* a call's wait,
    /// never extend it past this — so one dragged shard costs the query at
    /// most `io_timeout`, and the round degrades to an honest `partial`
    /// instead of the whole query dying at its budget.
    io_timeout: Duration,
}

impl RemoteTransport {
    /// A transport for the daemon at `addr` (`host:port`).
    pub fn new(addr: impl Into<String>, io_timeout: Duration) -> Self {
        RemoteTransport {
            addr: addr.into(),
            conn: Mutex::named("router.transport.conn", None),
            io_timeout,
        }
    }

    /// One request/response exchange under `min(deadline, io_timeout)`.
    /// Classifies every failure into the taxonomy.
    fn call(&self, request: &Request, deadline: Option<Instant>) -> Result<Response, ShardError> {
        let budget = match deadline {
            Some(d) => {
                let now = Instant::now();
                if d <= now {
                    return Err(ShardError::Timeout);
                }
                (d - now).min(self.io_timeout)
            }
            None => self.io_timeout,
        };
        let mut guard = self.conn.lock();
        if guard.is_none() {
            *guard = Some(self.dial(budget)?);
        }
        // The guard stays held for the exchange: the protocol is strictly
        // request/reply per connection, and the router issues one call per
        // shard at a time anyway.
        let result = (|| {
            let stream = guard.as_mut().ok_or(ShardError::Timeout)?;
            stream
                .set_write_timeout(Some(budget))
                .and_then(|()| stream.set_read_timeout(Some(budget)))
                .map_err(|e| ShardError::Internal(format!("{}: {e}", self.addr)))?;
            write_frame(stream, &request.render()).map_err(|e| self.classify_io(&e))?;
            let text = read_frame(stream)
                .map_err(|e| self.classify_io(&e))?
                .ok_or_else(|| {
                    ShardError::Internal(format!("{}: connection closed mid-call", self.addr))
                })?;
            Response::parse(&text)
                .map_err(|e| ShardError::Internal(format!("{}: bad reply: {e}", self.addr)))
        })();
        match result {
            Ok(Response::Err(reason)) => {
                // Server-side errors leave the connection usable.
                Err(classify_err_reply(&reason))
            }
            Ok(resp) => Ok(resp),
            Err(e) => {
                // Transport-level failure: the stream may hold a half frame.
                *guard = None;
                Err(e)
            }
        }
    }

    fn dial(&self, budget: Duration) -> Result<TcpStream, ShardError> {
        let addrs = self
            .addr
            .to_socket_addrs()
            .map_err(|e| ShardError::Internal(format!("resolve {}: {e}", self.addr)))?;
        let mut last = ShardError::Internal(format!("resolve {}: no addresses", self.addr));
        for addr in addrs {
            match TcpStream::connect_timeout(&addr, budget) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    return Ok(stream);
                }
                Err(e) => last = self.classify_io(&e),
            }
        }
        Err(last)
    }

    fn classify_io(&self, e: &std::io::Error) -> ShardError {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => ShardError::Timeout,
            _ => ShardError::Internal(format!("{}: {e}", self.addr)),
        }
    }
}

/// Classify a backend `ERR <reason>` by its leading taxonomy word.
fn classify_err_reply(reason: &str) -> ShardError {
    let class = reason.split([' ', ':']).next().unwrap_or_default();
    match class {
        "timeout" => ShardError::Timeout,
        "overloaded" => ShardError::Overloaded,
        _ => ShardError::Internal(reason.to_string()),
    }
}

impl ShardTransport for RemoteTransport {
    fn location(&self) -> String {
        self.addr.clone()
    }

    fn shard_info(&self) -> Result<(u32, u32, u64), ShardError> {
        match self.call(&Request::Shard, None)? {
            Response::ShardInfo { index, count, gen } => Ok((index, count, gen)),
            other => Err(ShardError::Internal(format!(
                "{}: unexpected SHARD reply {other:?}",
                self.addr
            ))),
        }
    }

    fn expand(
        &self,
        gen: u64,
        terms: &[u32],
        probes: &[(u32, f64)],
        deadline: Option<Instant>,
    ) -> Result<(Vec<ProbeTable>, f64), ShardError> {
        let request = Request::Expand {
            gen,
            terms: terms.to_vec(),
            probes: probes.to_vec(),
        };
        match self.call(&request, deadline)? {
            Response::Expanded {
                gen: reply_gen,
                bound,
                tables,
            } => {
                // Belt and braces: the backend already refuses mismatched
                // generations, but a reply from a different generation than
                // requested must never be fed into the driver.
                if reply_gen != gen {
                    return Err(ShardError::Internal(format!(
                        "{}: shard generation changed (serving {reply_gen}, request {gen})",
                        self.addr
                    )));
                }
                if tables.len() != probes.len() {
                    return Err(ShardError::Internal(format!(
                        "{}: EXPAND answered {} tables for {} probes",
                        self.addr,
                        tables.len(),
                        probes.len()
                    )));
                }
                Ok((tables, bound))
            }
            other => Err(ShardError::Internal(format!(
                "{}: unexpected EXPAND reply {other:?}",
                self.addr
            ))),
        }
    }

    fn prepare_dir(&self, dir: &Path) -> Result<(), ShardError> {
        let request = Request::PrepareDir {
            dir: dir.display().to_string(),
        };
        match self.call(&request, None)? {
            Response::Staged => Ok(()),
            other => Err(ShardError::Internal(format!(
                "{}: unexpected PREPARE reply {other:?}",
                self.addr
            ))),
        }
    }

    fn prepare_update(&self, delta: &Delta) -> Result<(), ShardError> {
        let request = Request::PrepareUpdate {
            edges: delta
                .new_edges
                .iter()
                .map(|&(u, v, p)| (u.0, v.0, p))
                .collect(),
            assignments: delta
                .new_assignments
                .iter()
                .map(|&(u, t)| (u.0, t.0))
                .collect(),
        };
        match self.call(&request, None)? {
            Response::Staged => Ok(()),
            other => Err(ShardError::Internal(format!(
                "{}: unexpected PREPARE reply {other:?}",
                self.addr
            ))),
        }
    }

    fn commit(&self) -> Result<u64, ShardError> {
        match self.call(&Request::Commit, None)? {
            Response::Generation(gen) => Ok(gen),
            other => Err(ShardError::Internal(format!(
                "{}: unexpected COMMIT reply {other:?}",
                self.addr
            ))),
        }
    }

    fn abort(&self) -> Result<u64, ShardError> {
        match self.call(&Request::Abort, None)? {
            Response::Generation(gen) => Ok(gen),
            other => Err(ShardError::Internal(format!(
                "{}: unexpected ABORT reply {other:?}",
                self.addr
            ))),
        }
    }
}
