//! The scatter-gather engine: one [`SearchDriver`] — the exact single-node
//! Algorithm 10/11 state machine — driven over N shard transports.
//!
//! The router is a *coordinator*, not a second search implementation. Every
//! score mutation, absorption, and pruning decision happens inside the
//! shared driver, in the canonical probe order; shards are pure Γ-table
//! probe servers. That is what makes a sharded ranking bit-identical to the
//! single-node one: there is no second ranking code path to diverge, and
//! the wire transports `f64`s bit-exactly (`{:.17e}`).
//!
//! Cross-shard §5.2 pruning falls out of the same structure: the driver
//! stops the moment the global upper bound proves the top-k settled, and
//! whatever frontier remains — including entire shards never probed — is
//! simply skipped. [`ServeOutcome::shards_pruned`] counts the distinct
//! shards owning that unprobed remainder.
//!
//! Generation coherence: the generation vector is captured at construction
//! and every `EXPAND` carries the expected generation; a backend that
//! reloaded mid-query refuses the probe, so a mixed-generation answer is
//! structurally impossible. Reloads fan out in two phases (`PREPARE` all →
//! `COMMIT` all, `ABORT` all on any failure), so the fleet moves
//! all-or-keep-old.

use crate::transport::{LocalTransport, ShardError, ShardTransport};
use pit::shard::slice_engine;
use pit::{shard_of, Delta, PitEngine, ShardSpec, UpdateReport};
use pit_graph::NodeId;
use pit_search_core::{
    CancelToken, DriverStep, SearchConfig, SearchDriver, SearchScratch, SearchTracer, TableProbe,
};
use pit_server::protocol::{ProbeTable, ROUTER_EXPAND_CHUNK};
use pit_server::{LocalServeEngine, ServeEngine, ServeError, ServeOutcome};
use pit_topics::KeywordQuery;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// The sharded serving engine: full search metadata (topic space,
/// vocabulary, representative index — small and replicated) plus one
/// transport per shard owning the user partition's Γ tables and walks.
pub struct ShardedEngine {
    /// Replicated metadata engine. Loaded from any shard snapshot — the
    /// space, vocabulary, representatives, and θ are identical across
    /// shards; only Γ tables and walk rows are partitioned.
    meta: Arc<PitEngine>,
    shards: Vec<Arc<dyn ShardTransport>>,
    /// Per-shard serving generations captured at construction. Queries
    /// admitted against this engine probe exactly these generations.
    gens: Vec<u64>,
}

impl ShardedEngine {
    /// Assemble a router over `shards`, interrogating each backend for its
    /// shard position and generation and validating the fleet layout:
    /// backend `i` must serve shard `i` of exactly `shards.len()`.
    ///
    /// # Errors
    /// A human-readable reason when a backend is unreachable or the fleet
    /// layout is inconsistent.
    pub fn assemble(
        meta: Arc<PitEngine>,
        shards: Vec<Arc<dyn ShardTransport>>,
    ) -> Result<Self, String> {
        let count = shards.len() as u32;
        if count == 0 {
            return Err("router needs at least one shard".to_string());
        }
        let mut gens = Vec::with_capacity(shards.len());
        for (i, t) in shards.iter().enumerate() {
            let (index, total, gen) = t
                .shard_info()
                .map_err(|e| format!("shard {i} ({}): {}", t.location(), e.describe()))?;
            // A full (unsharded) single backend reports 0/1 and is a valid
            // one-shard fleet; anything else must match its slot exactly.
            if index != i as u32 || total != count {
                return Err(format!(
                    "shard {i} ({}) serves slice {index}/{total}, expected {i}/{count} — \
                     wrong backend wiring",
                    t.location()
                ));
            }
            gens.push(gen);
        }
        Ok(ShardedEngine { meta, shards, gens })
    }

    /// Split a full engine into `count` in-process shards — slice each
    /// partition's Γ tables and walk rows, keep the full engine as the
    /// router's metadata. The property tests drive this to prove sharded
    /// rankings bit-identical to single-node ones.
    pub fn split(engine: &Arc<PitEngine>, count: u32) -> Self {
        let shards: Vec<Arc<dyn ShardTransport>> = (0..count)
            .map(|index| {
                let spec = ShardSpec::new(index, count);
                let slice = Arc::new(slice_engine(engine, spec));
                Arc::new(LocalTransport::new(Arc::new(LocalServeEngine::sharded(
                    slice, spec,
                )))) as Arc<dyn ShardTransport>
            })
            .collect();
        let gens = vec![1; count as usize];
        ShardedEngine {
            meta: Arc::clone(engine),
            shards,
            gens,
        }
    }

    /// The per-shard generation vector this engine was admitted with.
    pub fn generations(&self) -> &[u64] {
        &self.gens
    }

    /// The replicated metadata engine.
    pub fn meta(&self) -> &Arc<PitEngine> {
        &self.meta
    }

    /// Abort staged successors on every shard, best-effort (the abort verb
    /// is idempotent, so shards that never staged answer cleanly).
    fn abort_fleet(&self) {
        for t in &self.shards {
            let _ = t.abort();
        }
    }
}

/// Strip a backend's own `reload-failed:` prefix before re-wrapping, so
/// fleet errors read `reload-failed: shard 2 (…): <reason>` instead of
/// stuttering the class twice.
fn strip_class(reason: &str) -> &str {
    reason
        .strip_prefix("reload-failed:")
        .map(str::trim)
        .unwrap_or(reason)
}

/// Convert one wire table into the driver's probe form. The `f64`s are
/// bit-exact off the wire.
fn to_table_probe(t: &ProbeTable) -> TableProbe {
    TableProbe {
        hits: t.hits.iter().map(|&(x, p)| (NodeId(x), p)).collect(),
        cands: t.cands.iter().map(|&(w, ep)| (NodeId(w), ep)).collect(),
    }
}

/// One shard's scatter result for a round: the tables (in request order)
/// or the classified failure, plus the round-trip wait.
type ShardReply = (Result<Vec<ProbeTable>, ShardError>, u64);

impl ServeEngine for ShardedEngine {
    fn node_count(&self) -> usize {
        self.meta.graph().node_count()
    }

    fn topic_count(&self) -> usize {
        self.meta.space().topic_count()
    }

    fn index_bytes(&self) -> usize {
        // The router's own resident footprint (replicated metadata);
        // shards report their slices via their own STATS.
        self.meta.index_bytes()
    }

    fn shard_spec(&self) -> Option<ShardSpec> {
        // The router answers for the union — it is not a slice, and
        // `forbid_direct_query` must stay None.
        None
    }

    fn shard_count(&self) -> u32 {
        self.shards.len() as u32
    }

    fn resolve_terms(&self, keywords: &[String]) -> Result<Vec<pit_graph::TermId>, String> {
        let vocab = self
            .meta
            .vocab()
            .ok_or_else(|| "malformed: engine has no vocabulary".to_string())?;
        keywords
            .iter()
            .map(|kw| {
                vocab
                    .get(kw)
                    .ok_or_else(|| format!("malformed: unknown keyword {kw}"))
            })
            .collect()
    }

    fn try_search(
        &self,
        query: &KeywordQuery,
        k: usize,
        cancel: &CancelToken,
        tracer: &mut dyn SearchTracer,
        scratch: &mut SearchScratch,
    ) -> Result<ServeOutcome, ServeError> {
        let count = self.shards.len() as u32;
        let config = SearchConfig {
            k,
            max_expand_rounds: self.meta.max_expand_rounds(),
            prune: true,
        };
        let mut driver = SearchDriver::begin(
            self.meta.space(),
            self.meta.reps(),
            config,
            query,
            self.meta.graph().node_count(),
            self.meta.propagation().config().theta,
            cancel,
            tracer,
            scratch,
        )
        .map_err(ServeError::Search)?;

        let terms: Vec<u32> = query.terms.iter().map(|t| t.0).collect();
        let deadline = cancel.deadline();
        // A shard that failed once is dead for the rest of this query: its
        // remaining probes are skipped without another RPC, and it appears
        // exactly once in the partial provenance.
        let mut dead: Vec<Option<ShardError>> = vec![None; count as usize];
        let mut partial: Vec<(u32, String)> = Vec::new();
        let mut fanout_micros: Vec<u64> = vec![0; count as usize];
        let mut probed: Vec<bool> = vec![false; count as usize];
        let mut seed_round = true;

        loop {
            let probes = match driver
                .next_step(cancel, tracer)
                .map_err(ServeError::Search)?
            {
                DriverStep::Done(_) => break,
                DriverStep::Probe(probes) => probes,
            };

            // Partition the round by owner shard, preserving issue order
            // within each shard.
            let mut by_shard: Vec<Vec<(u32, f64)>> = vec![Vec::new(); count as usize];
            for &(u, ep_u) in &probes {
                by_shard[shard_of(u, count) as usize].push((u.0, ep_u));
            }

            // Scatter: one thread per shard with work this round. Each
            // thread issues its probes in chunks over its own transport.
            let mut replies: Vec<Option<ShardReply>> = (0..count).map(|_| None).collect();
            std::thread::scope(|scope| {
                for (i, slot) in replies.iter_mut().enumerate() {
                    if by_shard[i].is_empty() || dead[i].is_some() {
                        continue;
                    }
                    let shard_probes = &by_shard[i];
                    let transport = &self.shards[i];
                    let gen = self.gens[i];
                    let terms = &terms;
                    scope.spawn(move || {
                        let started = Instant::now();
                        let mut tables = Vec::with_capacity(shard_probes.len());
                        let mut result = Ok(());
                        for chunk in shard_probes.chunks(ROUTER_EXPAND_CHUNK) {
                            match transport.expand(gen, terms, chunk, deadline) {
                                Ok((mut t, _bound)) => tables.append(&mut t),
                                Err(e) => {
                                    result = Err(e);
                                    break;
                                }
                            }
                        }
                        let micros = started.elapsed().as_micros().min(u64::MAX as u128) as u64;
                        *slot = Some((result.map(|()| tables), micros));
                    });
                }
            });

            // Book failures once per shard, then feed every reply back in
            // the exact order the probe list was issued — the absorption
            // order bit-identity rests on.
            for (i, reply) in replies.iter().enumerate() {
                let Some((result, micros)) = reply else {
                    continue;
                };
                fanout_micros[i] += micros;
                probed[i] = true;
                if let Err(e) = result {
                    if seed_round {
                        // The query user's own Γ(v) seeds the whole search;
                        // without it there is no honest ranking to degrade.
                        return Err(ServeError::Shard(format!(
                            "home shard {i} ({}) could not seed the search: {}",
                            self.shards[i].location(),
                            e.describe()
                        )));
                    }
                    partial.push((i as u32, e.word().to_string()));
                    dead[i] = Some(e.clone());
                }
            }
            let mut cursors = vec![0usize; count as usize];
            for &(u, _ep_u) in &probes {
                let sh = shard_of(u, count) as usize;
                let table = match &replies[sh] {
                    Some((Ok(tables), _)) => {
                        let t = &tables[cursors[sh]];
                        cursors[sh] += 1;
                        if t.node != u.0 {
                            // A shard answering out of order is a protocol
                            // fault; refuse its whole round.
                            if dead[sh].is_none() {
                                partial.push((sh as u32, "internal".to_string()));
                                dead[sh] = Some(ShardError::Internal(format!(
                                    "shard {sh} answered table {} for probe {}",
                                    t.node, u.0
                                )));
                            }
                            None
                        } else {
                            Some(to_table_probe(t))
                        }
                    }
                    _ => None,
                };
                match table {
                    Some(t) => driver
                        .feed(cancel, tracer, &t)
                        .map_err(ServeError::Search)?,
                    None => driver.skip_probe(tracer),
                }
            }
            seed_round = false;
        }

        // §5.2 across the fleet: the frontier the settled bound left
        // unprobed, attributed to its owner shards. A shard in that set
        // that was never contacted at all was pruned outright.
        let mut pruned_shards: Vec<bool> = vec![false; count as usize];
        for (u, _ep) in driver.unexplored() {
            let sh = shard_of(u, count) as usize;
            if !probed[sh] && dead[sh].is_none() {
                pruned_shards[sh] = true;
            }
        }
        let shards_pruned = pruned_shards.iter().filter(|&&p| p).count() as u32;

        let outcome = driver.finish(tracer);
        partial.sort_unstable();
        Ok(ServeOutcome {
            ranked: outcome.top_k.iter().map(|s| (s.topic.0, s.score)).collect(),
            stats: outcome.stats(),
            partial,
            shards_pruned,
            fanout_micros: fanout_micros
                .iter()
                .enumerate()
                .filter(|&(i, _)| probed[i])
                .map(|(i, &m)| (i as u32, m))
                .collect(),
        })
    }

    fn expand(
        &self,
        _terms: &[u32],
        _probes: &[(u32, f64)],
    ) -> Result<(Vec<ProbeTable>, f64), String> {
        Err("malformed: EXPAND targets a shard backend; the router owns no Γ tables".to_string())
    }

    fn successor_from_dir(&self, dir: &Path) -> Result<Arc<dyn ServeEngine>, String> {
        // The split root holds one snapshot per shard: <dir>/shard-<i>.
        // Meta loads first (cheap local validation), then the fleet stages
        // all-or-nothing, then commits.
        let meta_dir = dir.join("shard-0");
        let meta = pit::store::load_engine(&meta_dir).map_err(|e| {
            format!(
                "reload-failed: router meta from {}: {e}",
                meta_dir.display()
            )
        })?;
        for (i, t) in self.shards.iter().enumerate() {
            let shard_dir = dir.join(format!("shard-{i}"));
            if let Err(e) = t.prepare_dir(&shard_dir) {
                self.abort_fleet();
                let reason = e.describe();
                return Err(format!(
                    "reload-failed: shard {i} ({}) rejected {}: {} — fleet aborted, old \
                     generation still serving",
                    t.location(),
                    shard_dir.display(),
                    strip_class(&reason)
                ));
            }
        }
        let mut gens = Vec::with_capacity(self.shards.len());
        for (i, t) in self.shards.iter().enumerate() {
            match t.commit() {
                Ok(gen) => gens.push(gen),
                Err(e) => {
                    // Some shards may already serve the new generation; the
                    // generation vector in the old router no longer matches
                    // them, so their probes fail honestly. Re-issuing the
                    // RELOAD is the recovery.
                    return Err(format!(
                        "reload-failed: shard {i} ({}) failed to commit: {} — fleet may be \
                         mixed-generation; re-issue RELOAD {}",
                        t.location(),
                        e.describe(),
                        dir.display()
                    ));
                }
            }
        }
        Ok(Arc::new(ShardedEngine {
            meta: Arc::new(meta),
            shards: self.shards.clone(),
            gens,
        }))
    }

    fn successor_from_delta(
        &self,
        delta: &Delta,
    ) -> Result<(Arc<dyn ServeEngine>, UpdateReport), String> {
        // The meta engine applies the full delta (its graph and walks are
        // complete, so summarization is seed-deterministic and identical to
        // what each shard computes before slicing); this also validates the
        // delta before any shard is touched.
        let (meta, report) = self
            .meta
            .with_delta(delta)
            .map_err(|e| format!("reload-failed: {e}"))?;
        for (i, t) in self.shards.iter().enumerate() {
            if let Err(e) = t.prepare_update(delta) {
                self.abort_fleet();
                let reason = e.describe();
                return Err(format!(
                    "reload-failed: shard {i} ({}) rejected the delta: {} — fleet aborted, \
                     old generation still serving",
                    t.location(),
                    strip_class(&reason)
                ));
            }
        }
        let mut gens = Vec::with_capacity(self.shards.len());
        for (i, t) in self.shards.iter().enumerate() {
            match t.commit() {
                Ok(gen) => gens.push(gen),
                Err(e) => {
                    return Err(format!(
                        "reload-failed: shard {i} ({}) failed to commit: {} — fleet may be \
                         mixed-generation; re-issue the UPDATE",
                        t.location(),
                        e.describe()
                    ));
                }
            }
        }
        Ok((
            Arc::new(ShardedEngine {
                meta: Arc::new(meta),
                shards: self.shards.clone(),
                gens,
            }),
            report,
        ))
    }
}
