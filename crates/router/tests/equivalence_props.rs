//! Property: for ANY shard count and ANY query, the sharded top-k is
//! bit-identical to the single-node top-k — topics, order, tie-breaking,
//! and raw `f64` score bits — and so are the driver's work counters.
//!
//! This holds by construction (one shared search state machine, probes fed
//! in canonical order) and this test keeps it held: any divergence in the
//! scatter order, wire float formatting, or feed sequencing shows up as a
//! bit mismatch on some sampled query.

use pit::PitEngine;
use pit_graph::{NodeId, TermId};
use pit_index::PropIndexConfig;
use pit_router::ShardedEngine;
use pit_search_core::{CancelToken, NoTracer, SearchScratch};
use pit_server::{LocalServeEngine, ServeEngine, ServeOutcome};
use pit_topics::KeywordQuery;
use pit_walk::WalkConfig;
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

const NODES: usize = 180;

/// One shared engine for every proptest case — the offline build is the
/// expensive part, the queries are cheap.
fn engine() -> &'static Arc<PitEngine> {
    static ENGINE: OnceLock<Arc<PitEngine>> = OnceLock::new();
    ENGINE.get_or_init(|| {
        let spec = pit_datasets::DatasetSpec {
            name: "router-equivalence".to_string(),
            nodes: NODES,
            kind: pit_datasets::DatasetKind::PowerLaw { edges_per_node: 4 },
            topics: pit_datasets::spec::scaled_topic_config(NODES, 41),
            seed: 41,
        };
        let ds = pit_datasets::generate(&spec);
        Arc::new(
            PitEngine::builder()
                .walk(WalkConfig::new(3, 8).with_seed(7))
                .propagation(PropIndexConfig::with_theta(0.02))
                .build_with_vocab(ds.graph, ds.space, Some(ds.vocab)),
        )
    })
}

fn run(e: &dyn ServeEngine, q: &KeywordQuery, k: usize) -> ServeOutcome {
    e.try_search(
        q,
        k,
        &CancelToken::none(),
        &mut NoTracer,
        &mut SearchScratch::new(),
    )
    .expect("search succeeds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn sharded_topk_is_bit_identical_to_single_node(
        user in 0u32..NODES as u32,
        k in 1usize..8,
        shards in 1u32..6,
        term_seed in proptest::collection::vec(proptest::prelude::any::<u32>(), 1..3),
    ) {
        let engine = engine();
        let terms: Vec<TermId> = term_seed
            .iter()
            .map(|&s| TermId(s % engine.space().term_count() as u32))
            .collect();
        let q = KeywordQuery::new(NodeId(user), terms);

        let single = LocalServeEngine::full(Arc::clone(engine));
        let router = ShardedEngine::split(engine, shards);
        let a = run(&single, &q, k);
        let b = run(&router, &q, k);

        prop_assert!(b.partial.is_empty(), "healthy fleet answered partial: {:?}", b.partial);
        let bits = |o: &ServeOutcome| -> Vec<(u32, u64)> {
            o.ranked.iter().map(|&(t, s)| (t, s.to_bits())).collect()
        };
        prop_assert_eq!(bits(&a), bits(&b), "rankings diverged for {:?} k={} shards={}", q, k, shards);
        prop_assert_eq!(a.stats, b.stats, "work counters diverged for {:?} k={} shards={}", q, k, shards);
    }
}
