//! The router's core guarantees, proven against in-process shards:
//!
//! 1. **Bit-identity.** For any shard count, the sharded top-k equals the
//!    single-node top-k bit-for-bit — same topics, same order, same `f64`
//!    score bits, same work counters — because both run the one shared
//!    search state machine.
//! 2. **Cross-shard pruning.** On the paper's Figure-3 / §5.2 fixture with
//!    two shards, the top-1 query from user 8 settles without ever probing
//!    the shard owning the marked frontier node — `shards_pruned == 1`.
//! 3. **Honest partials.** A shard failing mid-query is reported exactly
//!    once with its taxonomy word; a failing *home* shard fails the whole
//!    query rather than degrade silently.
//! 4. **Generation coherence.** After the fleet commits a new generation, a
//!    router still holding the old generation vector refuses to answer —
//!    a mixed-generation ranking is structurally impossible.

use pit::shard::{slice_engine, split_snapshot};
use pit::{shard_of, Delta, PitEngine, ShardSpec, SummarizerKind};
use pit_graph::fixtures::{self, user, FIGURE3_THETA};
use pit_graph::{TermId, TopicId};
use pit_index::{PropIndexConfig, PropagationIndex};
use pit_router::{LocalTransport, ShardError, ShardTransport, ShardedEngine};
use pit_search_core::{CancelToken, NoTracer, SearchScratch, TopicRepIndex};
use pit_server::{LocalServeEngine, ServeEngine, ServeError, ServeOutcome};
use pit_summarize::RepresentativeSet;
use pit_topics::{KeywordQuery, TopicSpaceBuilder};
use pit_walk::{WalkConfig, WalkIndex, WalkIndexParts};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// The §5.2 worked-trace engine: Figure-3 graph, the paper's given rep
/// sets (S1 = {1,3,5,12} w=0.25, S2 = {7,9,10} w=⅓, S3 = {2,4,6} w=⅓),
/// θ = 0.05.
fn fig3_engine() -> PitEngine {
    let g = fixtures::figure3_graph();
    let mut b = TopicSpaceBuilder::new(g.node_count(), 1);
    for _ in 0..3 {
        let t = b.add_topic(vec![TermId(0)]);
        b.assign(user(1), t);
    }
    let space = b.build();
    let prop = PropagationIndex::build(&g, PropIndexConfig::with_theta(FIGURE3_THETA));
    let weights = [0.25, 1.0 / 3.0, 1.0 / 3.0];
    let sets = fixtures::figure3_rep_sets()
        .iter()
        .enumerate()
        .map(|(i, nodes)| {
            RepresentativeSet::new(
                TopicId::from_index(i),
                nodes.iter().map(|&n| (n, weights[i])).collect(),
            )
        })
        .collect();
    let reps = TopicRepIndex::from_sets(sets);
    let walks = WalkIndex::build_parts(
        &g,
        WalkConfig::new(3, 8).with_seed(5),
        WalkIndexParts::FOR_LRW,
    );
    PitEngine::from_parts(
        g,
        space,
        None,
        walks,
        prop,
        reps,
        SummarizerKind::default_lrw(),
        8,
    )
}

fn search(engine: &dyn ServeEngine, query: &KeywordQuery, k: usize) -> ServeOutcome {
    engine
        .try_search(
            query,
            k,
            &CancelToken::none(),
            &mut NoTracer,
            &mut SearchScratch::new(),
        )
        .expect("search succeeds")
}

/// Topics, order, and score *bits* must all agree, as must the driver's
/// work counters — the sharded run is the same algorithm, not a lookalike.
fn assert_bit_identical(single: &ServeOutcome, sharded: &ServeOutcome, context: &str) {
    assert!(
        sharded.partial.is_empty(),
        "{context}: unexpected partial {:?}",
        sharded.partial
    );
    let bits = |o: &ServeOutcome| -> Vec<(u32, u64)> {
        o.ranked.iter().map(|&(t, s)| (t, s.to_bits())).collect()
    };
    assert_eq!(bits(single), bits(sharded), "{context}: rankings diverge");
    assert_eq!(
        single.stats, sharded.stats,
        "{context}: work counters diverge"
    );
}

#[test]
fn fig3_sharded_topk_is_bit_identical_for_every_layout() {
    let engine = Arc::new(fig3_engine());
    let single = LocalServeEngine::full(Arc::clone(&engine));
    for shards in 1..=4u32 {
        let router = ShardedEngine::split(&engine, shards);
        for u in 1..=12u32 {
            for k in 1..=3usize {
                let q = KeywordQuery::new(user(u), vec![TermId(0)]);
                assert_bit_identical(
                    &search(&single, &q, k),
                    &search(&router, &q, k),
                    &format!("user {u}, k {k}, {shards} shards"),
                );
            }
        }
    }
}

#[test]
fn fig3_two_shards_top1_prunes_the_idle_shard() {
    // The §5.2 trace from user 8: the top-1 settles on t2 directly from
    // Γ(8), leaving marked node 11 unexpanded. Its owner shard differs from
    // user 8's home shard under a 2-way split, so the router never contacts
    // it — that is cross-shard upper-bound pruning, and the counter says so.
    let home = shard_of(user(8), 2);
    let idle = shard_of(user(11), 2);
    assert_ne!(
        home, idle,
        "fixture relies on the 2-way split separating them"
    );

    let engine = Arc::new(fig3_engine());
    let router = ShardedEngine::split(&engine, 2);
    let q = KeywordQuery::new(user(8), vec![TermId(0)]);
    let out = search(&router, &q, 1);
    assert_eq!(out.ranked[0].0, 1, "t2 must win the §5.2 trace");
    assert_eq!(
        out.shards_pruned, 1,
        "the idle shard must be counted pruned"
    );
    assert!(out.partial.is_empty());
    // Exactly one shard was contacted: the home shard.
    let probed: Vec<u32> = out.fanout_micros.iter().map(|&(s, _)| s).collect();
    assert_eq!(probed, vec![home]);
}

/// A shard backend that is reachable (answers `SHARD`) but fails every
/// `EXPAND` with a fixed taxonomy error.
struct FailingShard {
    index: u32,
    count: u32,
    error: ShardError,
}

impl ShardTransport for FailingShard {
    fn location(&self) -> String {
        format!("failing-shard-{}", self.index)
    }

    fn shard_info(&self) -> Result<(u32, u32, u64), ShardError> {
        Ok((self.index, self.count, 1))
    }

    fn expand(
        &self,
        _gen: u64,
        _terms: &[u32],
        _probes: &[(u32, f64)],
        _deadline: Option<Instant>,
    ) -> Result<(Vec<pit_server::protocol::ProbeTable>, f64), ShardError> {
        Err(self.error.clone())
    }

    fn prepare_dir(&self, _dir: &Path) -> Result<(), ShardError> {
        Err(self.error.clone())
    }

    fn prepare_update(&self, _delta: &Delta) -> Result<(), ShardError> {
        Err(self.error.clone())
    }

    fn commit(&self) -> Result<u64, ShardError> {
        Err(self.error.clone())
    }

    fn abort(&self) -> Result<u64, ShardError> {
        Ok(1)
    }
}

fn local_shard(engine: &Arc<PitEngine>, spec: ShardSpec) -> Arc<dyn ShardTransport> {
    let slice = Arc::new(slice_engine(engine, spec));
    Arc::new(LocalTransport::new(Arc::new(LocalServeEngine::sharded(
        slice, spec,
    ))))
}

/// A generated engine big enough that searches expand across shards —
/// the Figure-3 fixture is too small to ever probe two shards in one query.
fn dataset_engine() -> PitEngine {
    let spec = pit_datasets::DatasetSpec {
        name: "router-partials".to_string(),
        nodes: 250,
        kind: pit_datasets::DatasetKind::PowerLaw { edges_per_node: 4 },
        topics: pit_datasets::spec::scaled_topic_config(250, 23),
        seed: 23,
    };
    let ds = pit_datasets::generate(&spec);
    PitEngine::builder()
        .walk(WalkConfig::new(3, 8).with_seed(4))
        .propagation(PropIndexConfig::with_theta(0.02))
        .build_with_vocab(ds.graph, ds.space, Some(ds.vocab))
}

/// Find a query whose healthy 2-shard scatter provably probes both shards,
/// returning it with the shard that is *not* the query user's home.
fn cross_shard_query(engine: &Arc<PitEngine>) -> (KeywordQuery, usize, u32) {
    let router = ShardedEngine::split(engine, 2);
    let k = 5;
    for u in 0..engine.graph().node_count() as u32 {
        let q = KeywordQuery::new(pit_graph::NodeId(u), vec![TermId(0)]);
        let out = search(&router, &q, k);
        if out.fanout_micros.len() == 2 {
            let home = shard_of(pit_graph::NodeId(u), 2);
            return (q, k, 1 - home);
        }
    }
    panic!("dataset fixture produced no cross-shard query; regenerate it");
}

#[test]
fn dead_secondary_shard_yields_an_honest_partial() {
    // A query known to expand into its non-home shard, whose owner times
    // out on every probe. The reply must carry the ranking the healthy
    // shard could prove, flagged partial exactly once.
    let engine = Arc::new(dataset_engine());
    let (q, k, dead) = cross_shard_query(&engine);
    let shards: Vec<Arc<dyn ShardTransport>> = (0..2u32)
        .map(|i| {
            if i == dead {
                Arc::new(FailingShard {
                    index: i,
                    count: 2,
                    error: ShardError::Timeout,
                }) as Arc<dyn ShardTransport>
            } else {
                local_shard(&engine, ShardSpec::new(i, 2))
            }
        })
        .collect();
    let router = ShardedEngine::assemble(Arc::clone(&engine), shards).expect("assemble");
    let out = search(&router, &q, k);
    assert_eq!(
        out.partial,
        vec![(dead, "timeout".to_string())],
        "one partial entry, taxonomy word, no duplicates"
    );
    assert!(!out.ranked.is_empty(), "the healthy shard still answers");
    assert_eq!(out.shards_pruned, 0, "a dead shard is partial, not pruned");
}

#[test]
fn dead_home_shard_fails_the_query_instead_of_degrading() {
    let engine = Arc::new(fig3_engine());
    let home = shard_of(user(8), 2);
    let shards: Vec<Arc<dyn ShardTransport>> = (0..2u32)
        .map(|i| {
            if i == home {
                Arc::new(FailingShard {
                    index: i,
                    count: 2,
                    error: ShardError::Overloaded,
                }) as Arc<dyn ShardTransport>
            } else {
                local_shard(&engine, ShardSpec::new(i, 2))
            }
        })
        .collect();
    let router = ShardedEngine::assemble(Arc::clone(&engine), shards).expect("assemble");
    let q = KeywordQuery::new(user(8), vec![TermId(0)]);
    let err = router
        .try_search(
            &q,
            1,
            &CancelToken::none(),
            &mut NoTracer,
            &mut SearchScratch::new(),
        )
        .expect_err("a seedless search must fail");
    let ServeError::Shard(reason) = err else {
        panic!("expected a shard error, got a search error");
    };
    assert!(
        reason.contains(&format!("home shard {home}")),
        "reason names the home shard: {reason}"
    );
}

#[test]
fn assemble_rejects_a_miswired_fleet() {
    let engine = Arc::new(fig3_engine());
    // Backend 1 mounted in slot 0: the layout check must refuse it.
    let shards: Vec<Arc<dyn ShardTransport>> = vec![
        local_shard(&engine, ShardSpec::new(1, 2)),
        local_shard(&engine, ShardSpec::new(1, 2)),
    ];
    let Err(err) = ShardedEngine::assemble(Arc::clone(&engine), shards) else {
        panic!("a miswired fleet must be refused");
    };
    assert!(err.contains("wrong backend wiring"), "{err}");
}

#[test]
fn stale_generation_vector_refuses_to_answer() {
    // Two routers over the *same* live fleet. After the fleet commits a new
    // generation via one of them, the other still holds the old generation
    // vector; its probes must be refused, not silently answered from the
    // new tables.
    let engine = Arc::new(fig3_engine());
    let shards: Vec<Arc<dyn ShardTransport>> = (0..2u32)
        .map(|i| local_shard(&engine, ShardSpec::new(i, 2)))
        .collect();
    let stale = ShardedEngine::assemble(Arc::clone(&engine), shards.clone()).expect("assemble");
    let q = KeywordQuery::new(user(8), vec![TermId(0)]);
    let before = search(&stale, &q, 1);

    let delta = Delta {
        new_edges: Vec::new(),
        new_assignments: vec![(user(2), TopicId(0))],
    };
    let (fresh, _report) = stale.successor_from_delta(&delta).expect("fleet update");

    // The fresh router answers, bit-identical to a single node over the
    // updated engine (the meta engine applies the same delta).
    let (updated, _) = engine.with_delta(&delta).expect("meta delta");
    let single = LocalServeEngine::full(Arc::new(updated));
    assert_bit_identical(
        &search(&single, &q, 1),
        &search(fresh.as_ref(), &q, 1),
        "post-update",
    );

    // The stale router's home-shard probe carries generation 1 against a
    // fleet serving generation 2 — refused at the seed, so the query fails
    // instead of mixing generations.
    let err = stale
        .try_search(
            &q,
            1,
            &CancelToken::none(),
            &mut NoTracer,
            &mut SearchScratch::new(),
        )
        .expect_err("stale generation vector must not answer");
    let ServeError::Shard(reason) = err else {
        panic!("expected a shard error");
    };
    assert!(reason.contains("generation"), "{reason}");
    // The pre-update answer it gave while current is unaffected history.
    assert!(!before.ranked.is_empty());
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pit-router-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

#[test]
fn fleet_reload_from_a_split_snapshot_serves_the_new_generation() {
    let engine = Arc::new(fig3_engine());
    let root = scratch_dir("reload");
    let src = root.join("full");
    pit::store::save_engine(&src, &engine).expect("save snapshot");
    let report = split_snapshot(&src, &root.join("split"), 2).expect("split snapshot");
    assert_eq!(report.shards, 2);

    let old = ShardedEngine::split(&engine, 2);
    let q = KeywordQuery::new(user(8), vec![TermId(0)]);
    let next = old
        .successor_from_dir(&root.join("split"))
        .expect("fleet reload");
    let single = LocalServeEngine::full(Arc::clone(&engine));
    assert_bit_identical(
        &search(&single, &q, 1),
        &search(next.as_ref(), &q, 1),
        "reloaded fleet",
    );

    // The old router's generation vector predates the commit: refused.
    assert!(old
        .try_search(
            &q,
            1,
            &CancelToken::none(),
            &mut NoTracer,
            &mut SearchScratch::new()
        )
        .is_err());
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn fleet_reload_aborts_whole_when_one_shard_rejects() {
    // shard-1 directory missing: PREPARE fails there, the fleet must abort
    // and the old generation must keep serving.
    let engine = Arc::new(fig3_engine());
    let root = scratch_dir("abort");
    let src = root.join("full");
    pit::store::save_engine(&src, &engine).expect("save snapshot");
    split_snapshot(&src, &root.join("split"), 2).expect("split snapshot");
    std::fs::remove_dir_all(root.join("split").join("shard-1")).expect("drop shard-1");

    let router = ShardedEngine::split(&engine, 2);
    let q = KeywordQuery::new(user(8), vec![TermId(0)]);
    let Err(err) = router.successor_from_dir(&root.join("split")) else {
        panic!("reload with a missing shard snapshot must fail");
    };
    assert!(err.starts_with("reload-failed:"), "{err}");
    assert!(err.contains("old generation still serving"), "{err}");

    // Still serving: the fleet aborted rather than half-committed.
    let out = search(&router, &q, 1);
    assert_eq!(out.ranked[0].0, 1);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn router_refuses_expand_and_reports_union_shape() {
    let engine = Arc::new(fig3_engine());
    let router = ShardedEngine::split(&engine, 3);
    assert_eq!(router.shard_count(), 3);
    assert_eq!(router.shard_spec(), None, "a router answers for the union");
    assert_eq!(router.forbid_direct_query(), None);
    assert_eq!(router.node_count(), 12);
    let err = router
        .expand(&[0], &[(7, 1.0)])
        .expect_err("router owns no Γ");
    assert!(err.starts_with("malformed:"), "{err}");
    assert_eq!(router.generations(), &[1, 1, 1]);
}

#[test]
fn singleton_fleet_accepts_a_full_unsharded_backend() {
    // A plain single-node backend reports shard 0-of-1; a 1-shard router in
    // front of it is a valid (if pointless) deployment and must agree with
    // the backend bit-for-bit.
    let engine = Arc::new(fig3_engine());
    let full = Arc::new(LocalTransport::new(Arc::new(LocalServeEngine::full(
        Arc::clone(&engine),
    )))) as Arc<dyn ShardTransport>;
    let router = ShardedEngine::assemble(Arc::clone(&engine), vec![full]).expect("assemble");
    let single = LocalServeEngine::full(Arc::clone(&engine));
    for u in 1..=12u32 {
        let q = KeywordQuery::new(user(u), vec![TermId(0)]);
        assert_bit_identical(
            &search(&single, &q, 2),
            &search(&router, &q, 2),
            &format!("singleton fleet, user {u}"),
        );
    }
}
