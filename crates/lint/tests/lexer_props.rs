//! Property tests for the lint lexer's totality: the lexer (and the
//! extraction layer on top of it) must accept *any* input without
//! panicking, and its per-line split must be lossless — the lint runs on
//! every `.rs` file in the workspace, including ones mid-edit, so "almost
//! valid Rust" is a normal input, not an edge case.
//!
//! Two input shapes: raw byte soup (lossy-decoded, so any UTF-8 sequence
//! including multibyte and control chars appears), and "rusty soup" —
//! fragments biased toward the lexer's state transitions (string/char/raw
//! delimiters, escapes, comment openers, braces, test markers), where a
//! state-machine bug actually lives.

use pit_lint::extract::FileIndex;
use pit_lint::lexer::{lex, test_regions};
use proptest::collection::vec;
use proptest::prelude::*;

/// Fragments that drive the lexer's state machine.
const FRAGMENTS: &[&str] = &[
    "\"",
    "\\",
    "\\\"",
    "'",
    "'a'",
    "'\\''",
    "//",
    "/*",
    "*/",
    "/**/",
    "r#\"",
    "\"#",
    "r##\"",
    "\"##",
    "b\"",
    "\n",
    "\n\n",
    "{",
    "}",
    "(",
    ")",
    "#[cfg(test)]",
    "#[test]",
    "mod tests ",
    "fn f() ",
    "enum E ",
    "const K: &str = \"v\";",
    "Mutex::named(",
    ".lock()",
    ".unwrap()",
    " ident ",
    "0x2a",
    "; ",
    "let g = ",
    " + len",
    "r\"",
    "#",
];

/// Concatenation of random fragments.
fn rusty_soup() -> impl Strategy<Value = String> {
    vec(0..FRAGMENTS.len(), 0..40)
        .prop_map(|idxs| idxs.into_iter().map(|i| FRAGMENTS[i]).collect::<String>())
}

/// Arbitrary bytes, lossy-decoded: exercises multibyte UTF-8, replacement
/// chars, NULs, and every ASCII delimiter at random positions.
fn byte_soup() -> impl Strategy<Value = String> {
    vec(any::<u8>(), 0..200).prop_map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn lex_is_total_and_lossless_on_byte_soup(src in byte_soup()) {
        let lines = lex(&src);
        prop_assert_eq!(lines.len(), src.split('\n').count());
        let rejoined: Vec<&str> = lines.iter().map(|l| l.raw.as_str()).collect();
        prop_assert_eq!(rejoined.join("\n"), src);
        // The masks stay within the line, and test_regions yields one
        // verdict per line.
        for l in &lines {
            prop_assert!(l.code.chars().count() <= l.raw.chars().count());
            prop_assert!(l.comment.chars().count() <= l.raw.chars().count());
        }
        prop_assert_eq!(test_regions(&lines).len(), lines.len());
    }

    #[test]
    fn lex_is_total_and_lossless_on_rusty_soup(src in rusty_soup()) {
        let lines = lex(&src);
        prop_assert_eq!(lines.len(), src.split('\n').count());
        let rejoined: Vec<&str> = lines.iter().map(|l| l.raw.as_str()).collect();
        prop_assert_eq!(rejoined.join("\n"), src);
    }

    #[test]
    fn extraction_is_total_on_rusty_soup(src in rusty_soup()) {
        // FileIndex::build runs the full pipeline: lexer, test regions,
        // span extraction, lock-site capture. None of it may panic, and
        // every span must stay within the file.
        let idx = FileIndex::build("fuzz.rs", &src);
        let n = idx.lines.len();
        prop_assert_eq!(idx.in_test.len(), n);
        for f in &idx.fns {
            prop_assert!(f.start <= f.end && f.end < n, "{:?}", f);
        }
        for e in &idx.enums {
            prop_assert!(e.start <= e.end && e.end < n, "{:?}", e);
        }
        for c in &idx.consts {
            prop_assert!(c.start <= c.end && c.end < n, "{:?}", c);
        }
        for a in &idx.acquisitions {
            prop_assert!(a.line < n, "{:?}", a);
        }
    }

    #[test]
    fn rules_are_total_on_rusty_soup(src in rusty_soup()) {
        // The per-file rules run over a serving-stack path (tightest
        // scope: L1+L5+L9 all active) without panicking on any input.
        let _ = pit_lint::rules::check_file("crates/server/src/protocol.rs", &src);
    }

    #[test]
    fn rules_are_total_on_byte_soup(src in byte_soup()) {
        let _ = pit_lint::rules::check_file("crates/server/src/protocol.rs", &src);
    }
}
