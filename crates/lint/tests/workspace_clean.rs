//! The lint must hold on the workspace itself: zero violations, zero stale
//! allowlist entries. This is the same check CI runs via
//! `cargo run -p pit-lint -- --deny`, wired into `cargo test` so a local
//! run catches regressions too.

use pit_lint::allowlist::Allowlist;
use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    assert!(
        root.join("Cargo.toml").is_file(),
        "expected workspace root at {}",
        root.display()
    );

    let allow_text =
        std::fs::read_to_string(root.join("lint.allow")).expect("lint.allow exists at the root");
    let allow = Allowlist::parse(&allow_text).expect("lint.allow parses");

    let report = pit_lint::run(&root, &allow).expect("scan succeeds");
    assert!(report.files_scanned > 30, "walker found the workspace");

    let mut problems: Vec<String> = report
        .violations
        .iter()
        .map(|v| format!("{}:{}: [{}] {}", v.path, v.line, v.rule, v.message))
        .collect();
    problems.extend(report.allow_errors.iter().cloned());
    problems.extend(report.unused_allow.iter().cloned());
    assert!(
        problems.is_empty(),
        "workspace has lint violations:\n{}",
        problems.join("\n")
    );
    assert!(
        report.waived > 0,
        "the allowlist should be excusing the known sites"
    );
}
