//! Seeded-violation fixtures for the contract rules (L6–L9): each test
//! builds a tiny synthetic workspace containing exactly the defect the
//! rule exists for and asserts the rule fires. A green `--deny` run on the
//! real workspace is meaningful only because these prove the checks are
//! armed. Fixtures assert on their own rule id — a partial fixture
//! workspace legitimately trips *other* rules (e.g. a lone server file has
//! no rendered taxonomy words), and that noise is not under test here.

use pit_lint::contracts;
use pit_lint::extract::FileIndex;
use pit_lint::rules;
use pit_lint::rules::Violation;

fn check(files: &[(&str, &str)], docs: &[(&str, &str)]) -> Vec<Violation> {
    let indices: Vec<FileIndex> = files
        .iter()
        .map(|(rel, src)| FileIndex::build(rel, src))
        .collect();
    let docs: Vec<(String, String)> = docs
        .iter()
        .map(|(n, t)| (n.to_string(), t.to_string()))
        .collect();
    contracts::check(&indices, &docs)
}

fn only(violations: &[Violation], rule: &str) -> Vec<Violation> {
    violations
        .iter()
        .filter(|v| v.rule == rule)
        .cloned()
        .collect()
}

/// L7 violations about `StaleReason` specifically (a fixture containing a
/// lone server file legitimately also trips the taxonomy-word checks).
fn stale_reason_only(violations: &[Violation]) -> Vec<Violation> {
    violations
        .iter()
        .filter(|v| v.rule == "L7" && v.message.contains("StaleReason"))
        .cloned()
        .collect()
}

// ───────────────────────── L6: wire-contract drift ─────────────────────────

const METRICS_RS: &str = "crates/server/src/metrics.rs";
const GOLDEN_RS: &str = "crates/server/tests/golden_wire.rs";

fn metrics_src(stats: &[&str], prom: &[&str]) -> String {
    let stats: String = stats
        .iter()
        .map(|k| format!("out.push(\"{k}\");\n"))
        .collect();
    let prom: String = prom
        .iter()
        .map(|k| format!("body.push(\"{k}\");\n"))
        .collect();
    format!(
        "impl Metrics {{\n  pub fn snapshot(&self) -> Vec<&str> {{\n    let mut out = Vec::new();\n{stats}    out\n  }}\n  pub fn render_prometheus(&self) -> Vec<&str> {{\n    let mut body = Vec::new();\n{prom}    body\n  }}\n}}\n"
    )
}

fn golden_src(stats: &[&str], prom: &[&str]) -> String {
    let stats: String = stats.iter().map(|k| format!("  \"{k}\",\n")).collect();
    let prom: String = prom
        .iter()
        .map(|k| format!("  (\"{k}\", \"counter\"),\n"))
        .collect();
    format!(
        "const STATS_KEYS: &[&str] = &[\n{stats}];\nconst METRIC_NAMES: &[(&str, &str)] = &[\n{prom}];\n"
    )
}

#[test]
fn l6_emitted_but_unpinned_key_fires() {
    let metrics = metrics_src(&["queries", "sneaky_key"], &["pit_queries_total"]);
    let golden = golden_src(&["queries"], &["pit_queries_total"]);
    let v = check(
        &[(METRICS_RS, &metrics), (GOLDEN_RS, &golden)],
        &[("README.md", "`queries` `sneaky_key` `pit_queries_total`")],
    );
    let l6 = only(&v, "L6");
    assert_eq!(l6.len(), 1, "{l6:#?}");
    assert!(l6[0].message.contains("`sneaky_key`"), "{}", l6[0].message);
    assert!(l6[0].message.contains("not pinned"), "{}", l6[0].message);
    assert_eq!(l6[0].path, METRICS_RS, "blames the emit site");
}

#[test]
fn l6_pinned_but_dead_key_fires() {
    let metrics = metrics_src(&["queries"], &["pit_queries_total"]);
    let golden = golden_src(&["queries", "dead_key"], &["pit_queries_total"]);
    let v = check(
        &[(METRICS_RS, &metrics), (GOLDEN_RS, &golden)],
        &[("README.md", "`queries` `dead_key` `pit_queries_total`")],
    );
    let l6 = only(&v, "L6");
    assert_eq!(l6.len(), 1, "{l6:#?}");
    assert!(l6[0].message.contains("`dead_key`"), "{}", l6[0].message);
    assert!(l6[0].message.contains("no emitter"), "{}", l6[0].message);
    assert_eq!(l6[0].path, GOLDEN_RS, "blames the stale pin");
}

#[test]
fn l6_undocumented_series_fires_for_both_surfaces() {
    let metrics = metrics_src(&["queries"], &["pit_queries_total"]);
    let golden = golden_src(&["queries"], &["pit_queries_total"]);
    let v = check(
        &[(METRICS_RS, &metrics), (GOLDEN_RS, &golden)],
        &[(
            "README.md",
            "`queries` only — the Prometheus name is missing",
        )],
    );
    let l6 = only(&v, "L6");
    assert_eq!(l6.len(), 1, "{l6:#?}");
    assert!(
        l6[0].message.contains("`pit_queries_total`"),
        "{}",
        l6[0].message
    );
    assert!(
        l6[0].message.contains("documented in none"),
        "{}",
        l6[0].message
    );
}

#[test]
fn l6_missing_golden_const_is_reported_not_skipped() {
    let metrics = metrics_src(&["queries"], &["pit_queries_total"]);
    let golden = "const SOMETHING_ELSE: &[&str] = &[];\n";
    let v = check(
        &[(METRICS_RS, &metrics), (GOLDEN_RS, golden)],
        &[("README.md", "`queries` `pit_queries_total`")],
    );
    let l6 = only(&v, "L6");
    assert!(
        l6.iter().any(|v| v.message.contains("STATS_KEYS")),
        "a vanished golden registry must be loud: {l6:#?}"
    );
}

#[test]
fn l6_aligned_workspace_is_clean() {
    let metrics = metrics_src(&["queries"], &["pit_queries_total"]);
    let golden = golden_src(&["queries"], &["pit_queries_total"]);
    let v = check(
        &[(METRICS_RS, &metrics), (GOLDEN_RS, &golden)],
        &[(
            "DESIGN.md",
            "`queries` and `pit_queries_total` are documented",
        )],
    );
    assert!(only(&v, "L6").is_empty(), "{v:#?}");
}

// ──────────────────── L7: error-taxonomy exhaustiveness ────────────────────

const CACHE_RS: &str = "crates/server/src/cache.rs";
const CANCEL_RS: &str = "crates/search/src/cancel.rs";

#[test]
fn l7_stale_reason_without_from_str_fires() {
    let cache = "pub enum StaleReason {\n  EdgeAdded,\n}\nimpl StaleReason {\n  pub fn as_str(self) -> &'static str {\n    \"edge-added\"\n  }\n}\n";
    let v = check(&[(CACHE_RS, cache)], &[]);
    let l7 = stale_reason_only(&v);
    assert_eq!(l7.len(), 1, "{l7:#?}");
    assert!(l7[0].message.contains("no `from_str`"), "{}", l7[0].message);
}

#[test]
fn l7_variant_missing_parse_arm_fires() {
    let cache = "pub enum StaleReason {\n  EdgeAdded,\n  FullReload,\n}\nimpl StaleReason {\n  pub fn as_str(self) -> &'static str {\n    match self { Self::EdgeAdded => \"edge-added\", Self::FullReload => \"full-reload\" }\n  }\n  pub fn from_str(s: &str) -> Option<Self> {\n    match s { \"edge-added\" => Some(Self::EdgeAdded), _ => None }\n  }\n}\n";
    let v = check(&[(CACHE_RS, cache)], &[]);
    let l7 = stale_reason_only(&v);
    assert_eq!(l7.len(), 1, "{l7:#?}");
    assert!(l7[0].message.contains("FullReload"), "{}", l7[0].message);
    assert!(l7[0].message.contains("no parse arm"), "{}", l7[0].message);
}

#[test]
fn l7_variant_missing_wire_rendering_fires() {
    let cache = "pub enum StaleReason {\n  EdgeAdded,\n}\nimpl StaleReason {\n  pub fn as_str(self) -> &'static str {\n    \"something-else\"\n  }\n  pub fn from_str(s: &str) -> Option<Self> {\n    match s { \"edge-added\" => Some(Self::EdgeAdded), _ => None }\n  }\n}\n";
    let v = check(&[(CACHE_RS, cache)], &[]);
    let l7 = stale_reason_only(&v);
    assert_eq!(l7.len(), 1, "{l7:#?}");
    assert!(
        l7[0].message.contains("no wire rendering"),
        "{}",
        l7[0].message
    );
}

#[test]
fn l7_unmapped_search_error_variant_fires() {
    // `Cancelled` is rendered and mapped by the server; `NewThing` is
    // neither: two violations for it, none for Cancelled.
    let cancel = "pub enum SearchError {\n  Cancelled,\n  NewThing,\n}\nimpl fmt::Display for SearchError {\n  fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {\n    match self { SearchError::Cancelled => write!(f, \"cancelled\"), _ => Ok(()) }\n  }\n}\n";
    let server =
        "fn map(e: SearchError) {\n  match e { SearchError::Cancelled => (), _ => () }\n}\n";
    let v = check(
        &[(CANCEL_RS, cancel), ("crates/server/src/conn.rs", server)],
        &[],
    );
    let l7: Vec<Violation> = only(&v, "L7")
        .into_iter()
        .filter(|v| v.message.contains("SearchError"))
        .collect();
    assert_eq!(l7.len(), 2, "{l7:#?}");
    assert!(l7.iter().all(|v| v.message.contains("NewThing")), "{l7:#?}");
    assert!(l7
        .iter()
        .any(|v| v.message.contains("no Display rendering")));
    assert!(l7.iter().any(|v| v.message.contains("never mapped")));
}

#[test]
fn l7_err_reply_with_undeclared_word_fires() {
    let conn =
        "fn reply() -> Response {\n  Response::Err(format!(\n    \"weird: {}\", 1,\n  ))\n}\n";
    let v = check(&[("crates/server/src/conn.rs", conn)], &[]);
    let l7 = only(&v, "L7");
    assert!(
        l7.iter().any(
            |v| v.message.contains("undeclared taxonomy word") && v.message.contains("`weird`")
        ),
        "{l7:#?}"
    );
}

#[test]
fn l7_err_reply_with_declared_word_passes() {
    let conn = "fn reply() -> Response {\n  Response::Err(\"overloaded\".to_string())\n}\n";
    let v = check(&[("crates/server/src/conn.rs", conn)], &[]);
    assert!(
        !only(&v, "L7")
            .iter()
            .any(|v| v.message.contains("undeclared")),
        "{v:#?}"
    );
}

// ─────────────────────────── L8: static lock order ───────────────────────────

const STATE_RS: &str = "crates/server/src/state.rs";

fn state_src(body: &str) -> String {
    format!(
        "impl S {{\n  fn build() -> S {{\n    let engine = RwLock::named(\"server.state.engine\", 0);\n    let lru = Mutex::named(\"server.cache.lru\", 0);\n    S\n  }}\n{body}}}\n"
    )
}

#[test]
fn l8_direct_declared_order_contradiction_fires() {
    let src = state_src(
        "  fn backward(&self) {\n    let c = self.lru.lock();\n    let slot = self.engine.write();\n  }\n",
    );
    let v = check(&[(STATE_RS, &src)], &[]);
    let l8 = only(&v, "L8");
    assert!(
        l8.iter().any(|v| v.message.contains("contradicts")),
        "{l8:#?}"
    );
}

#[test]
fn l8_contradiction_through_a_callee_fires() {
    let src = state_src(
        "  fn sneak(&self) {\n    let c = self.lru.lock();\n    self.touch_engine();\n  }\n  fn touch_engine(&self) {\n    let g = self.engine.read();\n  }\n",
    );
    let v = check(&[(STATE_RS, &src)], &[]);
    let l8 = only(&v, "L8");
    assert!(
        l8.iter()
            .any(|v| v.message.contains("contradicts") && v.message.contains("touch_engine")),
        "call-graph edge must be found: {l8:#?}"
    );
}

#[test]
fn l8_cycle_between_locks_fires() {
    let src = "impl S {\n  fn build() -> S {\n    let alpha = Mutex::named(\"lock.alpha\", 0);\n    let beta = Mutex::named(\"lock.beta\", 0);\n    S\n  }\n  fn one(&self) {\n    let g = self.alpha.lock();\n    let h = self.beta.lock();\n  }\n  fn two(&self) {\n    let g = self.beta.lock();\n    let h = self.alpha.lock();\n  }\n}\n";
    let v = check(&[(STATE_RS, src)], &[]);
    let l8 = only(&v, "L8");
    assert_eq!(l8.len(), 1, "one cycle, reported once: {l8:#?}");
    assert!(
        l8[0].message.contains("lock-order cycle"),
        "{}",
        l8[0].message
    );
    assert!(l8[0].message.contains("lock.alpha"), "{}", l8[0].message);
}

#[test]
fn l8_forward_order_and_dropped_guard_are_clean() {
    let src = state_src(
        "  fn forward(&self) {\n    let slot = self.engine.write();\n    let c = self.lru.lock();\n  }\n  fn sequential(&self) {\n    let c = self.lru.lock();\n    drop(c);\n    let slot = self.engine.write();\n  }\n",
    );
    let v = check(&[(STATE_RS, &src)], &[]);
    assert!(only(&v, "L8").is_empty(), "{v:#?}");
}

#[test]
fn l8_line_scoped_temporary_holds_nothing() {
    // The chained `.lock().take()` guard dies on its own line, so the
    // engine acquisition on the next line is NOT under `server.cache.lru`.
    let src = state_src(
        "  fn temp(&self) {\n    let v = self.lru.lock().take();\n    let slot = self.engine.write();\n  }\n",
    );
    let v = check(&[(STATE_RS, &src)], &[]);
    assert!(only(&v, "L8").is_empty(), "{v:#?}");
}

// ──────────────────────── L9: length-arithmetic audit ────────────────────────

#[test]
fn l9_unchecked_wire_length_arithmetic_fires() {
    let src = "fn frame(bytes: &[u8]) -> Vec<u8> {\n  let mut out = Vec::with_capacity(4 + bytes.len());\n  out\n}\n";
    let v = rules::check_file("crates/server/src/protocol.rs", src);
    let l9: Vec<&Violation> = v.iter().filter(|v| v.rule == "L9").collect();
    assert_eq!(l9.len(), 1, "{l9:#?}");
    assert!(
        l9[0].message.contains("4 + bytes.len()"),
        "{}",
        l9[0].message
    );
}

#[test]
fn l9_bounded_or_checked_arithmetic_passes() {
    let bounded = "fn frame(bytes: &[u8]) -> Vec<u8> {\n  if bytes.len() > MAX_FRAME_BYTES { return Vec::new(); }\n  let mut out = Vec::with_capacity(4 + bytes.len());\n  out\n}\n";
    let checked = "fn total(len: usize) -> Option<usize> {\n  len.checked_mul(8)\n}\n";
    for src in [bounded, checked] {
        let v = rules::check_file("crates/server/src/protocol.rs", src);
        assert!(!v.iter().any(|v| v.rule == "L9"), "{v:#?}");
    }
}

#[test]
fn l9_is_scoped_to_wire_and_snapshot_paths() {
    let src = "fn f(n: usize) -> usize {\n  4 + n.len()\n}\n";
    let v = rules::check_file("crates/server/src/conn.rs", src);
    assert!(!v.iter().any(|v| v.rule == "L9"), "{v:#?}");
}
