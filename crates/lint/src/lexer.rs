//! A comment- and string-aware line lexer for Rust source.
//!
//! This is deliberately *not* a full Rust lexer: the lint rules only need
//! to know, per line, which bytes are code and which are comment text —
//! with string/char literal *contents* blanked out so a rule never matches
//! inside `"panic!(…)"` the string. It handles the constructs that would
//! otherwise break that classification: line and (nested) block comments,
//! string escapes, raw strings `r#"…"#`, byte strings, char literals vs.
//! lifetimes, and raw identifiers `r#fn`.

/// One source line, split into its code and comment halves.
#[derive(Debug, Default, Clone)]
pub struct SourceLine {
    /// The line's code with comments removed and literal contents blanked
    /// (delimiters are kept, so `.expect("…")` still shows `.expect("")`).
    pub code: String,
    /// The line's comment text (contents of `//`, `///`, `//!`, `/* */`).
    pub comment: String,
    /// The raw line, verbatim — what allowlist needles match against.
    pub raw: String,
    /// Contents of string literals on this line, in order, escapes kept
    /// verbatim. A literal spanning lines contributes one entry per line.
    /// The extraction layer reads these (STATS keys, metric names, lock
    /// names); the line rules never do — they match on the blanked `code`.
    pub strings: Vec<String>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    /// Nested depth of `/* … */`.
    BlockComment(u32),
    /// Inside `"…"`; `true` after a backslash.
    Str(bool),
    /// Inside `r##"…"##` with this many hashes.
    RawStr(u32),
    /// Inside `'…'`; `true` after a backslash.
    CharLit(bool),
}

/// Split `source` into classified lines. Always returns one entry per input
/// line (split on `\n`), so indices are 0-based line numbers.
pub fn lex(source: &str) -> Vec<SourceLine> {
    let mut lines: Vec<SourceLine> = Vec::new();
    let mut cur = SourceLine::default();
    let mut state = State::Code;
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0;

    macro_rules! push_line {
        () => {{
            lines.push(std::mem::take(&mut cur));
            if state == State::LineComment {
                state = State::Code;
            }
        }};
    }
    macro_rules! open_string {
        () => {
            cur.strings.push(String::new())
        };
    }
    macro_rules! string_char {
        ($c:expr) => {{
            if cur.strings.is_empty() {
                cur.strings.push(String::new());
            }
            cur.strings.last_mut().expect("just ensured").push($c);
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            // Strings and block comments continue across lines; everything
            // else resets at the newline. A still-open string starts a new
            // contents entry on the next line.
            push_line!();
            if matches!(state, State::Str(_) | State::RawStr(_)) {
                open_string!();
            }
            i += 1;
            continue;
        }
        cur.raw.push(c);
        match state {
            State::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    cur.raw.push('/');
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    cur.comment.push('/');
                    cur.comment.push('*');
                    cur.raw.push('*');
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            State::Str(escaped) => {
                if escaped {
                    string_char!(c);
                    state = State::Str(false);
                } else if c == '\\' {
                    string_char!(c);
                    state = State::Str(true);
                } else if c == '"' {
                    cur.code.push('"');
                    state = State::Code;
                } else {
                    string_char!(c);
                }
                i += 1;
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars, i + 1, hashes) {
                    cur.code.push('"');
                    for _ in 0..hashes {
                        cur.code.push('#');
                    }
                    for k in 1..=hashes as usize {
                        if let Some(&h) = chars.get(i + k) {
                            cur.raw.push(h);
                        }
                    }
                    state = State::Code;
                    i += 1 + hashes as usize;
                } else {
                    string_char!(c);
                    i += 1;
                }
            }
            State::CharLit(escaped) => {
                if escaped {
                    state = State::CharLit(false);
                } else if c == '\\' {
                    state = State::CharLit(true);
                } else if c == '\'' {
                    cur.code.push('\'');
                    state = State::Code;
                }
                i += 1;
            }
            State::Code => {
                let prev_ident = cur
                    .code
                    .chars()
                    .last()
                    .is_some_and(|p| p.is_alphanumeric() || p == '_');
                match c {
                    '/' if chars.get(i + 1) == Some(&'/') => {
                        state = State::LineComment;
                        cur.comment.push_str("//");
                        cur.raw.push('/');
                        i += 2;
                    }
                    '/' if chars.get(i + 1) == Some(&'*') => {
                        state = State::BlockComment(1);
                        cur.comment.push_str("/*");
                        cur.raw.push('*');
                        i += 2;
                    }
                    '"' => {
                        cur.code.push('"');
                        open_string!();
                        state = State::Str(false);
                        i += 1;
                    }
                    'r' | 'b' if !prev_ident && starts_raw_or_byte(&chars, i) => {
                        // r"…", r#"…"#, b"…", br#"…"#, rb is not valid Rust.
                        let mut j = i;
                        if chars[j] == 'b' {
                            cur.code.push('b');
                            j += 1;
                            if chars.get(j) == Some(&'\'') {
                                // b'x' byte literal.
                                cur.code.push('\'');
                                cur.raw.push('\'');
                                state = State::CharLit(false);
                                i = j + 1;
                                continue;
                            }
                            if chars.get(j) == Some(&'"') {
                                cur.code.push('"');
                                cur.raw.push('"');
                                open_string!();
                                state = State::Str(false);
                                i = j + 1;
                                continue;
                            }
                            // br…
                            cur.code.push('r');
                            cur.raw.push('r');
                            j += 1;
                        } else {
                            cur.code.push('r');
                            j += 1;
                        }
                        let mut hashes = 0u32;
                        while chars.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        // starts_raw_or_byte guaranteed a quote here.
                        for k in (i + 1)..=j {
                            if let Some(&h) = chars.get(k) {
                                cur.raw.push(h);
                            }
                        }
                        for _ in 0..hashes {
                            cur.code.push('#');
                        }
                        cur.code.push('"');
                        open_string!();
                        state = State::RawStr(hashes);
                        i = j + 1;
                    }
                    '\'' => {
                        // Char literal or lifetime? A literal is 'x…' where
                        // the payload ends with a quote; a lifetime never
                        // closes. Escapes always mean a literal.
                        let is_literal = match chars.get(i + 1) {
                            Some('\\') => true,
                            Some(&n) if n != '\'' => chars.get(i + 2) == Some(&'\''),
                            _ => false,
                        };
                        cur.code.push('\'');
                        if is_literal {
                            state = State::CharLit(false);
                        }
                        i += 1;
                    }
                    _ => {
                        cur.code.push(c);
                        i += 1;
                    }
                }
            }
        }
    }
    lines.push(cur);
    lines
}

/// After the closing `"` of a raw string, are there `hashes` `#`s?
fn closes_raw(chars: &[char], from: usize, hashes: u32) -> bool {
    (0..hashes as usize).all(|k| chars.get(from + k) == Some(&'#'))
}

/// Does `chars[i]` (an `r` or `b` not preceded by an identifier char) start
/// a raw/byte string or byte char literal — as opposed to a plain
/// identifier or raw identifier `r#name`?
fn starts_raw_or_byte(chars: &[char], i: usize) -> bool {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        match chars.get(j) {
            Some('\'') | Some('"') => return true,
            Some('r') => j += 1,
            _ => return false,
        }
    } else {
        j += 1;
    }
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    // `r#foo` raw identifiers land here with a letter, not a quote.
    chars.get(j) == Some(&'"')
}

/// Find `needle` in `haystack` only at token boundaries: the match may not
/// be preceded or followed by an identifier character. Returns the byte
/// offset of the first such match.
pub fn find_token(haystack: &str, needle: &str) -> Option<usize> {
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    let mut from = 0;
    while let Some(pos) = haystack[from..].find(needle) {
        let at = from + pos;
        // A boundary is only required where the needle's own edge is an
        // identifier character (so `.unwrap()` matches after `x`, while
        // `Ordering::Relaxed` rejects `MyOrdering::Relaxed`).
        let before_ok = match needle.chars().next() {
            Some(f) if is_ident(f) => haystack[..at]
                .chars()
                .next_back()
                .is_none_or(|c| !is_ident(c)),
            _ => true,
        };
        let after_ok = match needle.chars().next_back() {
            Some(l) if is_ident(l) => haystack[at + needle.len()..]
                .chars()
                .next()
                .is_none_or(|c| !is_ident(c)),
            _ => true,
        };
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + needle.len().max(1);
    }
    None
}

/// Mark every line that belongs to test-only code: an item annotated
/// `#[test]` or `#[cfg(test)]` (typically the `mod tests` block), through
/// its closing brace. The lint rules skip these lines — test code may
/// unwrap, panic, and measure time freely.
pub fn test_regions(lines: &[SourceLine]) -> Vec<bool> {
    let mut is_test = vec![false; lines.len()];
    // Concatenate code with line bookkeeping for brace matching.
    let mut code = String::new();
    let mut line_of: Vec<usize> = Vec::new();
    for (idx, l) in lines.iter().enumerate() {
        for _ in l.code.chars() {
            line_of.push(idx);
        }
        code.push_str(&l.code);
        code.push('\n');
        line_of.push(idx);
    }
    let bytes: Vec<char> = code.chars().collect();
    let mut search_from = 0;
    loop {
        let rest: String = bytes[search_from..].iter().collect();
        let marker = ["#[cfg(test)]", "#[test]", "#[cfg(all(test"]
            .iter()
            .filter_map(|m| rest.find(m).map(|p| p + search_from))
            .min();
        let Some(start) = marker else { break };
        // Walk forward to the item body: the first `{` outside attribute
        // brackets opens the region; a `;` first means a braceless item.
        let mut j = start;
        let mut bracket = 0i32;
        let mut open = None;
        while j < bytes.len() {
            match bytes[j] {
                '[' => bracket += 1,
                ']' => bracket -= 1,
                '{' if bracket == 0 => {
                    open = Some(j);
                    break;
                }
                ';' if bracket == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let end = match open {
            Some(open_at) => {
                let mut depth = 0i32;
                let mut k = open_at;
                loop {
                    if k >= bytes.len() {
                        break k.saturating_sub(1);
                    }
                    match bytes[k] {
                        '{' => depth += 1,
                        '}' => {
                            depth -= 1;
                            if depth == 0 {
                                break k;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
            }
            None => j.min(bytes.len().saturating_sub(1)),
        };
        let first_line = line_of.get(start).copied().unwrap_or(0);
        let last_line = line_of
            .get(end)
            .copied()
            .unwrap_or_else(|| lines.len().saturating_sub(1));
        for flag in is_test.iter_mut().take(last_line + 1).skip(first_line) {
            *flag = true;
        }
        search_from = end.max(start) + 1;
        if search_from >= bytes.len() {
            break;
        }
    }
    is_test
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn line_comments_are_stripped() {
        let lines = lex("let x = 1; // panic!(\"no\")\nlet y = 2;");
        assert_eq!(lines[0].code.trim_end(), "let x = 1;");
        assert!(lines[0].comment.contains("panic!"));
        assert_eq!(lines[1].code, "let y = 2;");
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let lines = lex("a /* one /* two */ still */ b\n/* open\n still comment\n*/ c");
        assert_eq!(lines[0].code.replace(' ', ""), "ab");
        assert!(lines[1].code.trim().is_empty());
        assert!(lines[2].code.trim().is_empty());
        assert_eq!(lines[3].code.trim(), "c");
        assert!(lines[2].comment.contains("still comment"));
    }

    #[test]
    fn string_contents_are_blanked() {
        let c = code_of("let s = \"panic!(\\\"x\\\") .unwrap()\"; s.len()");
        assert!(!c[0].contains("panic!"));
        assert!(!c[0].contains(".unwrap()"));
        assert!(c[0].contains("s.len()"));
        assert!(c[0].contains("\"\""), "delimiters survive: {}", c[0]);
    }

    #[test]
    fn raw_strings_are_blanked() {
        let c = code_of("let s = r#\"has \"quotes\" and panic!\"#; tail()");
        assert!(!c[0].contains("panic!"));
        assert!(c[0].contains("tail()"));
        let c = code_of("let s = r\"plain .unwrap()\"; tail()");
        assert!(!c[0].contains(".unwrap()"));
        assert!(c[0].contains("tail()"));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let c = code_of("let b = b\"panic! bytes\"; let x = b'a'; done()");
        assert!(!c[0].contains("panic!"));
        assert!(c[0].contains("done()"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let c = code_of("fn f<'a>(x: &'a str) { let q = '\"'; let n = '\\n'; g(x) }");
        assert!(c[0].contains("fn f<'a>(x: &'a str)"), "{}", c[0]);
        assert!(c[0].contains("g(x)"));
        // The quote character inside the char literal must not open a string.
        let c = code_of("let q = '\"'; h(\"panic! inside\")");
        assert!(!c[0].contains("panic!"));
        assert!(c[0].contains("h("));
    }

    #[test]
    fn raw_identifiers_are_code() {
        let c = code_of("let r#fn = 1; use_it(r#fn)");
        assert!(c[0].contains("r#fn"));
    }

    #[test]
    fn find_token_respects_boundaries() {
        assert!(find_token("std::thread::panicking()", "panic!").is_none());
        assert!(find_token("panic!(\"x\")", "panic!").is_some());
        assert!(find_token("x.unwrap_or(1)", ".unwrap()").is_none());
        assert!(find_token("x.unwrap()", ".unwrap()").is_some());
        assert!(find_token("x.expect_err(\"e\")", ".expect(").is_none());
        assert!(find_token("x.expect(\"e\")", ".expect(").is_some());
        assert!(find_token("Ordering::Relaxed)", "Ordering::Relaxed").is_some());
        assert!(find_token("MyOrdering::Relaxed", "Ordering::Relaxed").is_none());
        assert!(find_token("a_thread::sleep(d)", "thread::sleep").is_none());
        assert!(find_token("std::thread::sleep(d)", "thread::sleep").is_some());
    }

    #[test]
    fn test_regions_cover_cfg_test_modules() {
        let src = "fn live() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       #[test]\n\
                       fn t() { y.unwrap(); }\n\
                   }\n\
                   fn also_live() {}\n";
        let lines = lex(src);
        let regions = test_regions(&lines);
        assert!(!regions[0], "live code before the module");
        assert!(regions[1] && regions[2] && regions[3] && regions[4] && regions[5]);
        assert!(!regions[6], "live code after the module");
    }

    #[test]
    fn test_regions_cover_single_test_fns() {
        let src = "fn live() {}\n#[test]\nfn t() {\n  boom();\n}\nfn live2() {}\n";
        let regions = test_regions(&lex(src));
        // (the trailing `false` is the empty line after the final newline)
        assert_eq!(
            regions,
            vec![false, true, true, true, true, false, false],
            "{regions:?}"
        );
    }

    #[test]
    fn string_contents_are_captured_per_line() {
        let lines = lex("emit(\"queries\", \"pit_queries_total\");\nplain();");
        assert_eq!(lines[0].strings, vec!["queries", "pit_queries_total"]);
        assert!(lines[1].strings.is_empty());
        // Raw strings capture verbatim; escapes are kept as written.
        let lines = lex("let a = r#\"ra\"w\"#; let b = \"es\\\"c\";");
        assert_eq!(lines[0].strings, vec!["ra\"w", "es\\\"c"]);
        // A multi-line string contributes one entry per line.
        let lines = lex("let s = \"first\nsecond\";");
        assert_eq!(lines[0].strings, vec!["first"]);
        assert_eq!(lines[1].strings, vec!["second"]);
    }

    #[test]
    fn cfg_test_in_a_string_is_ignored() {
        let src = "let s = \"#[cfg(test)]\";\nfn live() { x.unwrap(); }\n";
        let regions = test_regions(&lex(src));
        assert!(!regions[0] && !regions[1]);
    }
}
