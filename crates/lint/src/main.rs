//! `pit-lint` CLI. Usage:
//!
//! ```text
//! cargo run -p pit-lint -- [--deny] [--json] [--root DIR] [--allow FILE]
//! ```
//!
//! Exit codes are stable so CI and tooling can branch on them:
//!
//! - `0` — clean (or `--deny` not set and only violations were found);
//! - `1` — violations, stale allowlist entries, or ambiguous allowlist
//!   entries, under `--deny`;
//! - `2` — internal error: bad arguments, unreadable files, malformed
//!   allowlist.
//!
//! `--json` replaces the human report with a single machine-readable JSON
//! object on stdout (violations, allowlist errors, summary counts).
//! `--root` defaults to the enclosing workspace root; `--allow` defaults to
//! `<root>/lint.allow`.

use pit_lint::allowlist::Allowlist;
use pit_lint::LintReport;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut allow_path: Option<PathBuf> = None;

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--json" => json = true,
            "--root" => root = argv.next().map(PathBuf::from),
            "--allow" => allow_path = argv.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!("pit-lint [--deny] [--json] [--root DIR] [--allow FILE]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("pit-lint: unknown argument {other:?} (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("pit-lint: cannot read current directory: {e}");
            return ExitCode::from(2);
        }
    };
    let root = match root.or_else(|| pit_lint::find_workspace_root(&cwd)) {
        Some(r) => r,
        None => {
            eprintln!("pit-lint: no workspace Cargo.toml above {}", cwd.display());
            return ExitCode::from(2);
        }
    };

    let allow_path = allow_path.unwrap_or_else(|| root.join("lint.allow"));
    let allow = if allow_path.is_file() {
        let text = match std::fs::read_to_string(&allow_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("pit-lint: cannot read {}: {e}", allow_path.display());
                return ExitCode::from(2);
            }
        };
        match Allowlist::parse(&text) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("pit-lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        Allowlist::empty()
    };

    let report = match pit_lint::run(&root, &allow) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pit-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", render_json(&report, allow.len()));
    } else {
        render_human(&report, allow.len());
    }

    if deny && !report.is_clean() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn render_human(report: &LintReport, allow_entries: usize) {
    for v in &report.violations {
        println!("{}:{}: [{}] {}", v.path, v.line, v.rule, v.message);
    }
    for e in &report.allow_errors {
        println!("{e}");
    }
    for u in &report.unused_allow {
        println!("{u}");
    }
    println!(
        "pit-lint: {} files scanned, {} violations, {} waived ({} allowlist entries), {} stale entries, {} ambiguous entries",
        report.files_scanned,
        report.violations.len(),
        report.waived,
        allow_entries,
        report.unused_allow.len(),
        report.allow_errors.len()
    );
}

/// Render the report as one JSON object. Hand-rolled (the workspace policy
/// is no new dependencies); all dynamic content goes through [`escape`].
fn render_json(report: &LintReport, allow_entries: usize) -> String {
    let mut out = String::from("{\n  \"violations\": [");
    for (i, v) in report.violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            escape(v.rule),
            escape(&v.path),
            v.line,
            escape(&v.message)
        ));
    }
    if !report.violations.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"allowlist_errors\": [");
    let errors: Vec<&String> = report
        .allow_errors
        .iter()
        .chain(&report.unused_allow)
        .collect();
    for (i, e) in errors.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    \"{}\"", escape(e)));
    }
    if !errors.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!(
        "],\n  \"files_scanned\": {},\n  \"waived\": {},\n  \"allow_entries\": {},\n  \"clean\": {}\n}}",
        report.files_scanned,
        report.waived,
        allow_entries,
        report.is_clean()
    ));
    out
}

/// Escape a string for inclusion in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
