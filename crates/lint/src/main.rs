//! `pit-lint` CLI. Usage:
//!
//! ```text
//! cargo run -p pit-lint -- [--deny] [--root DIR] [--allow FILE]
//! ```
//!
//! `--deny` exits 1 on any violation or stale allowlist entry (CI mode);
//! without it the report is informational. `--root` defaults to the
//! enclosing workspace root; `--allow` defaults to `<root>/lint.allow`.

use pit_lint::allowlist::Allowlist;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut root: Option<PathBuf> = None;
    let mut allow_path: Option<PathBuf> = None;

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--root" => root = argv.next().map(PathBuf::from),
            "--allow" => allow_path = argv.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!("pit-lint [--deny] [--root DIR] [--allow FILE]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("pit-lint: unknown argument {other:?} (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("pit-lint: cannot read current directory: {e}");
            return ExitCode::from(2);
        }
    };
    let root = match root.or_else(|| pit_lint::find_workspace_root(&cwd)) {
        Some(r) => r,
        None => {
            eprintln!("pit-lint: no workspace Cargo.toml above {}", cwd.display());
            return ExitCode::from(2);
        }
    };

    let allow_path = allow_path.unwrap_or_else(|| root.join("lint.allow"));
    let allow = if allow_path.is_file() {
        let text = match std::fs::read_to_string(&allow_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("pit-lint: cannot read {}: {e}", allow_path.display());
                return ExitCode::from(2);
            }
        };
        match Allowlist::parse(&text) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("pit-lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        Allowlist::empty()
    };

    let report = match pit_lint::run(&root, &allow) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pit-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    for v in &report.violations {
        println!("{}:{}: [{}] {}", v.path, v.line, v.rule, v.message);
    }
    for u in &report.unused_allow {
        println!("{u}");
    }
    println!(
        "pit-lint: {} files scanned, {} violations, {} waived ({} allowlist entries), {} stale entries",
        report.files_scanned,
        report.violations.len(),
        report.waived,
        allow.len(),
        report.unused_allow.len()
    );

    if deny && !report.is_clean() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
