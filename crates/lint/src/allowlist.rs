//! The lint allowlist: every exception to a rule lives in one audited file
//! (`lint.allow` at the workspace root) and must carry a written invariant
//! justification. An entry that stops matching anything fails the lint, so
//! the file cannot rot.
//!
//! Format — one entry per line, four `|`-separated fields:
//!
//! ```text
//! # rule | path | needle[ @line] | justification
//! L1 | crates/server/src/state.rs | panic!("poisoned query | fault injection: the worker pool's catch_unwind path is exercised by tests
//! L3 | crates/server/src/metrics.rs | c.load(Ordering::Relaxed); @278 | monotone counter reads, no ordering dependency
//! ```
//!
//! - **rule**: `L1`…`L9`;
//! - **path**: workspace-relative, forward slashes;
//! - **needle**: a substring of the offending raw source line. An entry is
//!   **single-site**: it must match exactly one flagged line. When the same
//!   needle appears on several flagged lines, anchor it with ` @<line>`
//!   (1-based) — an unanchored entry matching more than one site fails the
//!   run, so a waiver can never silently spread to new code;
//! - **justification**: free text, at least [`MIN_JUSTIFICATION`] chars —
//!   say *which invariant* makes the flagged pattern safe.

use crate::rules::Violation;
use std::cell::Cell;
use std::fmt;

/// Justifications shorter than this are rejected: "ok" is not an invariant.
pub const MIN_JUSTIFICATION: usize = 20;

/// One parsed allowlist entry.
#[derive(Debug, Clone)]
pub struct Entry {
    /// Rule id, e.g. "L1".
    pub rule: String,
    /// Workspace-relative path the waiver applies to.
    pub path: String,
    /// Raw-line substring identifying the waived site.
    pub needle: String,
    /// Optional 1-based line anchor (` @N` suffix on the needle field).
    pub anchor: Option<usize>,
    /// The written invariant justification.
    pub justification: String,
    /// Source line in the allowlist file (for diagnostics).
    pub line: usize,
    /// Whether any violation matched this entry during the run.
    pub used: Cell<bool>,
}

/// A parsed allowlist.
#[derive(Debug, Default)]
pub struct Allowlist {
    entries: Vec<Entry>,
}

/// The outcome of applying the allowlist to a set of candidate violations.
#[derive(Debug, Default)]
pub struct Applied {
    /// Violations no entry waived, original order preserved.
    pub violations: Vec<Violation>,
    /// Sites excused by a justified entry.
    pub waived: usize,
    /// Ambiguous entries: an unanchored needle that matched more than one
    /// flagged site. These fail the run — nothing they matched is waived.
    pub errors: Vec<String>,
}

/// A malformed allowlist line.
#[derive(Debug)]
pub struct ParseError {
    /// 1-based line number in the allowlist file.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.allow:{}: {}", self.line, self.message)
    }
}

const RULE_IDS: &[&str] = &["L1", "L2", "L3", "L4", "L5", "L6", "L7", "L8", "L9"];

impl Allowlist {
    /// An empty allowlist (waives nothing).
    pub fn empty() -> Self {
        Allowlist::default()
    }

    /// Parse the allowlist text. Blank lines and `#` comments are skipped.
    ///
    /// # Errors
    /// The first malformed line: wrong field count, unknown rule id, empty
    /// needle, or a justification below [`MIN_JUSTIFICATION`] characters.
    pub fn parse(text: &str) -> Result<Self, ParseError> {
        let mut entries = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = trimmed.splitn(4, '|').map(str::trim).collect();
            if fields.len() != 4 {
                return Err(ParseError {
                    line,
                    message: format!(
                        "expected 4 `|`-separated fields (rule | path | needle | justification), got {}",
                        fields.len()
                    ),
                });
            }
            let (rule, path, needle, justification) = (fields[0], fields[1], fields[2], fields[3]);
            if !RULE_IDS.contains(&rule) {
                return Err(ParseError {
                    line,
                    message: format!("unknown rule id {rule:?} (expected L1..L9)"),
                });
            }
            if path.is_empty() || path.contains('\\') {
                return Err(ParseError {
                    line,
                    message: "path must be non-empty and use forward slashes".to_string(),
                });
            }
            let (needle, anchor) = match split_anchor(needle) {
                Ok(pair) => pair,
                Err(msg) => return Err(ParseError { line, message: msg }),
            };
            if needle.is_empty() {
                return Err(ParseError {
                    line,
                    message: "needle must be a non-empty substring of the waived line".to_string(),
                });
            }
            if justification.len() < MIN_JUSTIFICATION {
                return Err(ParseError {
                    line,
                    message: format!(
                        "justification is {} chars; write the actual invariant (≥ {MIN_JUSTIFICATION} chars)",
                        justification.len()
                    ),
                });
            }
            entries.push(Entry {
                rule: rule.to_string(),
                path: path.to_string(),
                needle: needle.to_string(),
                anchor,
                justification: justification.to_string(),
                line,
                used: Cell::new(false),
            });
        }
        Ok(Allowlist { entries })
    }

    /// Apply the allowlist to every candidate violation the rules emitted.
    /// Each entry must match exactly one site: a match waives it, more than
    /// one match (unanchored) is an [`Applied::errors`] entry, zero matches
    /// leaves the entry for [`Allowlist::unused`] reporting.
    pub fn apply(&self, candidates: Vec<Violation>) -> Applied {
        let mut waive = vec![false; candidates.len()];
        let mut errors = Vec::new();
        for e in &self.entries {
            let matches: Vec<usize> = candidates
                .iter()
                .enumerate()
                .filter(|(_, v)| {
                    v.rule == e.rule
                        && v.path == e.path
                        && v.raw.contains(&e.needle)
                        && e.anchor.is_none_or(|a| a == v.line)
                })
                .map(|(i, _)| i)
                .collect();
            match matches.len() {
                0 => {}
                1 => {
                    e.used.set(true);
                    waive[matches[0]] = true;
                }
                _ => {
                    // The entry is live (don't double-report it as unused)
                    // but waives nothing: over-broad waivers are the bug
                    // this check exists for.
                    e.used.set(true);
                    let lines: Vec<String> = matches
                        .iter()
                        .map(|i| candidates[*i].line.to_string())
                        .collect();
                    errors.push(format!(
                        "lint.allow:{}: entry ({} | {} | {}) matches {} sites (lines {}) — \
                         an entry waives exactly one; anchor it with ` @<line>` or add one \
                         entry per site",
                        e.line,
                        e.rule,
                        e.path,
                        e.needle,
                        matches.len(),
                        lines.join(", ")
                    ));
                }
            }
        }
        let waived = waive.iter().filter(|w| **w).count();
        Applied {
            violations: candidates
                .into_iter()
                .zip(waive)
                .filter_map(|(v, w)| (!w).then_some(v))
                .collect(),
            waived,
            errors,
        }
    }

    /// Entries that never matched a violation — stale waivers that must be
    /// deleted (reported as lint failures so the allowlist cannot rot).
    pub fn unused(&self) -> Vec<&Entry> {
        self.entries.iter().filter(|e| !e.used.get()).collect()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Split a trailing ` @<digits>` anchor off the needle field.
fn split_anchor(needle: &str) -> Result<(&str, Option<usize>), String> {
    let Some(at) = needle.rfind(" @") else {
        return Ok((needle, None));
    };
    let digits = &needle[at + 2..];
    if digits.is_empty() || !digits.chars().all(|c| c.is_ascii_digit()) {
        // An `@` that isn't an anchor (e.g. inside a code snippet) is part
        // of the needle itself.
        return Ok((needle, None));
    }
    let line: usize = digits
        .parse()
        .map_err(|_| format!("line anchor `@{digits}` does not fit in usize"))?;
    if line == 0 {
        return Err("line anchor must be 1-based".to_string());
    }
    Ok((needle[..at].trim_end(), Some(line)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidate(rule: &'static str, path: &str, line: usize, raw: &str) -> Violation {
        Violation {
            rule,
            path: path.to_string(),
            line,
            message: "test".to_string(),
            raw: raw.to_string(),
        }
    }

    const GOOD: &str = "\
# a comment\n\
\n\
L1 | crates/server/src/state.rs | panic!(\"poisoned | fault injection exercised by the respawn tests\n\
L3 | crates/server/src/cache.rs | Ordering::Relaxed | pure hit/miss counters, no ordering dependency\n";

    #[test]
    fn parses_and_waives_single_sites() {
        let a = Allowlist::parse(GOOD).expect("parses");
        assert_eq!(a.len(), 2);
        let applied = a.apply(vec![
            candidate(
                "L1",
                "crates/server/src/state.rs",
                10,
                "            panic!(\"poisoned query for user {}\", key.user);",
            ),
            candidate("L1", "crates/server/src/state.rs", 20, "x.unwrap()"),
            candidate("L2", "crates/server/src/state.rs", 30, "panic!(\"poisoned"),
            candidate("L1", "crates/server/src/pool.rs", 40, "panic!(\"poisoned"),
        ]);
        assert_eq!(applied.waived, 1);
        assert!(applied.errors.is_empty());
        // Wrong rule, wrong path, wrong needle all stay.
        assert_eq!(applied.violations.len(), 3);
    }

    #[test]
    fn unused_entries_are_reported() {
        let a = Allowlist::parse(GOOD).expect("parses");
        assert_eq!(a.unused().len(), 2);
        a.apply(vec![candidate(
            "L3",
            "crates/server/src/cache.rs",
            5,
            "hits.fetch_add(1, Ordering::Relaxed)",
        )]);
        let unused = a.unused();
        assert_eq!(unused.len(), 1);
        assert_eq!(unused[0].rule, "L1");
    }

    #[test]
    fn an_entry_matching_two_sites_is_an_error_and_waives_nothing() {
        let a = Allowlist::parse(
            "L3 | m.rs | Ordering::Relaxed | pure counters with no ordering dependency\n",
        )
        .expect("parses");
        let applied = a.apply(vec![
            candidate("L3", "m.rs", 1, "a.load(Ordering::Relaxed)"),
            candidate("L3", "m.rs", 9, "b.load(Ordering::Relaxed)"),
        ]);
        assert_eq!(applied.waived, 0, "over-broad entries must not waive");
        assert_eq!(applied.violations.len(), 2);
        assert_eq!(applied.errors.len(), 1);
        assert!(
            applied.errors[0].contains("matches 2 sites"),
            "{}",
            applied.errors[0]
        );
        assert!(
            applied.errors[0].contains("lines 1, 9"),
            "{}",
            applied.errors[0]
        );
        assert!(a.unused().is_empty(), "ambiguous is not unused");
    }

    #[test]
    fn line_anchors_disambiguate_identical_raw_lines() {
        let a = Allowlist::parse(
            "L3 | m.rs | Ordering::Relaxed @9 | the reader side of the pure counter pair\n",
        )
        .expect("parses");
        let applied = a.apply(vec![
            candidate("L3", "m.rs", 1, "a.load(Ordering::Relaxed)"),
            candidate("L3", "m.rs", 9, "a.load(Ordering::Relaxed)"),
        ]);
        assert_eq!(applied.waived, 1);
        assert!(applied.errors.is_empty());
        assert_eq!(applied.violations.len(), 1);
        assert_eq!(
            applied.violations[0].line, 1,
            "only the anchored line is waived"
        );
    }

    #[test]
    fn a_non_numeric_at_suffix_is_part_of_the_needle() {
        let a =
            Allowlist::parse("L1 | a.rs | send(user @domain) | a needle containing an at-sign\n")
                .expect("parses");
        let applied = a.apply(vec![candidate("L1", "a.rs", 3, "send(user @domain)")]);
        assert_eq!(applied.waived, 1);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Allowlist::parse("L1 | a.rs | needle").is_err(), "3 fields");
        assert!(
            Allowlist::parse("L12 | a.rs | needle | a perfectly long justification").is_err(),
            "bad rule"
        );
        assert!(
            Allowlist::parse("L1 | a.rs |  | a perfectly long justification").is_err(),
            "empty needle"
        );
        assert!(Allowlist::parse("L1 | a.rs | needle | too short").is_err());
        assert!(
            Allowlist::parse("L1 | a.rs | needle @0 | a perfectly long justification").is_err(),
            "zero anchor"
        );
    }

    #[test]
    fn contract_rule_ids_parse() {
        for rule in ["L6", "L7", "L8", "L9"] {
            let text = format!("{rule} | a.rs | needle | a perfectly long justification\n");
            assert!(Allowlist::parse(&text).is_ok(), "{rule}");
        }
    }
}
