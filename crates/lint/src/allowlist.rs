//! The lint allowlist: every exception to a rule lives in one audited file
//! (`lint.allow` at the workspace root) and must carry a written invariant
//! justification. An entry that stops matching anything fails the lint, so
//! the file cannot rot.
//!
//! Format — one entry per line, four `|`-separated fields:
//!
//! ```text
//! # rule | path | needle | justification
//! L1 | crates/server/src/state.rs | panic!("poisoned query | fault injection: the worker pool's catch_unwind path is exercised by tests
//! ```
//!
//! - **rule**: `L1`…`L5`;
//! - **path**: workspace-relative, forward slashes;
//! - **needle**: a substring of the offending raw source line (keep it
//!   tight — an entry waives *every* line in the file containing it);
//! - **justification**: free text, at least [`MIN_JUSTIFICATION`] chars —
//!   say *which invariant* makes the flagged pattern safe.

use std::cell::Cell;
use std::fmt;

/// Justifications shorter than this are rejected: "ok" is not an invariant.
pub const MIN_JUSTIFICATION: usize = 20;

/// One parsed allowlist entry.
#[derive(Debug, Clone)]
pub struct Entry {
    /// Rule id, e.g. "L1".
    pub rule: String,
    /// Workspace-relative path the waiver applies to.
    pub path: String,
    /// Raw-line substring identifying the waived site(s).
    pub needle: String,
    /// The written invariant justification.
    pub justification: String,
    /// Source line in the allowlist file (for diagnostics).
    pub line: usize,
    /// Whether any violation matched this entry during the run.
    pub used: Cell<bool>,
}

/// A parsed allowlist.
#[derive(Debug, Default)]
pub struct Allowlist {
    entries: Vec<Entry>,
}

/// A malformed allowlist line.
#[derive(Debug)]
pub struct ParseError {
    /// 1-based line number in the allowlist file.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.allow:{}: {}", self.line, self.message)
    }
}

impl Allowlist {
    /// An empty allowlist (waives nothing).
    pub fn empty() -> Self {
        Allowlist::default()
    }

    /// Parse the allowlist text. Blank lines and `#` comments are skipped.
    ///
    /// # Errors
    /// The first malformed line: wrong field count, unknown rule id, empty
    /// needle, or a justification below [`MIN_JUSTIFICATION`] characters.
    pub fn parse(text: &str) -> Result<Self, ParseError> {
        let mut entries = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = trimmed.splitn(4, '|').map(str::trim).collect();
            if fields.len() != 4 {
                return Err(ParseError {
                    line,
                    message: format!(
                        "expected 4 `|`-separated fields (rule | path | needle | justification), got {}",
                        fields.len()
                    ),
                });
            }
            let (rule, path, needle, justification) = (fields[0], fields[1], fields[2], fields[3]);
            if !matches!(rule, "L1" | "L2" | "L3" | "L4" | "L5") {
                return Err(ParseError {
                    line,
                    message: format!("unknown rule id {rule:?} (expected L1..L5)"),
                });
            }
            if path.is_empty() || path.contains('\\') {
                return Err(ParseError {
                    line,
                    message: "path must be non-empty and use forward slashes".to_string(),
                });
            }
            if needle.is_empty() {
                return Err(ParseError {
                    line,
                    message: "needle must be a non-empty substring of the waived line".to_string(),
                });
            }
            if justification.len() < MIN_JUSTIFICATION {
                return Err(ParseError {
                    line,
                    message: format!(
                        "justification is {} chars; write the actual invariant (≥ {MIN_JUSTIFICATION} chars)",
                        justification.len()
                    ),
                });
            }
            entries.push(Entry {
                rule: rule.to_string(),
                path: path.to_string(),
                needle: needle.to_string(),
                justification: justification.to_string(),
                line,
                used: Cell::new(false),
            });
        }
        Ok(Allowlist { entries })
    }

    /// Is this `(rule, path, raw line)` violation waived? Marks the
    /// matching entry as used.
    pub fn waives(&self, rule: &str, path: &str, raw_line: &str) -> bool {
        let mut hit = false;
        for e in &self.entries {
            if e.rule == rule && e.path == path && raw_line.contains(&e.needle) {
                e.used.set(true);
                hit = true;
            }
        }
        hit
    }

    /// Entries that never matched a violation — stale waivers that must be
    /// deleted (reported as lint failures so the allowlist cannot rot).
    pub fn unused(&self) -> Vec<&Entry> {
        self.entries.iter().filter(|e| !e.used.get()).collect()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "\
# a comment\n\
\n\
L1 | crates/server/src/state.rs | panic!(\"poisoned | fault injection exercised by the respawn tests\n\
L3 | crates/server/src/cache.rs | Ordering::Relaxed | pure hit/miss counters, no ordering dependency\n";

    #[test]
    fn parses_and_waives() {
        let a = Allowlist::parse(GOOD).expect("parses");
        assert_eq!(a.len(), 2);
        assert!(a.waives(
            "L1",
            "crates/server/src/state.rs",
            "            panic!(\"poisoned query for user {}\", key.user);"
        ));
        assert!(!a.waives("L1", "crates/server/src/state.rs", "x.unwrap()"));
        assert!(!a.waives("L2", "crates/server/src/state.rs", "panic!(\"poisoned"));
        assert!(!a.waives("L1", "crates/server/src/pool.rs", "panic!(\"poisoned"));
    }

    #[test]
    fn unused_entries_are_reported() {
        let a = Allowlist::parse(GOOD).expect("parses");
        assert_eq!(a.unused().len(), 2);
        a.waives(
            "L3",
            "crates/server/src/cache.rs",
            "hits.fetch_add(1, Ordering::Relaxed)",
        );
        let unused = a.unused();
        assert_eq!(unused.len(), 1);
        assert_eq!(unused[0].rule, "L1");
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Allowlist::parse("L1 | a.rs | needle").is_err(), "3 fields");
        assert!(
            Allowlist::parse("L9 | a.rs | needle | a perfectly long justification").is_err(),
            "bad rule"
        );
        assert!(
            Allowlist::parse("L1 | a.rs |  | a perfectly long justification").is_err(),
            "empty needle"
        );
        assert!(Allowlist::parse("L1 | a.rs | needle | too short").is_err());
    }
}
