//! pit-lint: workspace-aware static analysis for the PIT-Search repo.
//!
//! Rules clippy cannot express because they encode *this repo's* invariants:
//! which crates must never panic (the concurrent serving stack), which must
//! be deterministic (the offline engine), which atomics orderings are
//! audited, where untrusted lengths must be bounded before arithmetic — and,
//! since v2, cross-file contracts: every wire-visible metrics name must be
//! pinned and documented ([`contracts`] L6), every error-taxonomy variant
//! must round-trip the wire and be counted (L7), and named locks must be
//! acquired in one global order (L8). Run it as
//! `cargo run -p pit-lint -- --deny`; CI treats a non-zero exit as a build
//! failure.
//!
//! Exceptions live in `lint.allow` at the workspace root — one justified
//! entry per waived *site* (single-match semantics, see [`allowlist`]).
//! Unused or ambiguous entries fail the run, so the allowlist tracks the
//! code it excuses.

#![forbid(unsafe_code)]

pub mod allowlist;
pub mod contracts;
pub mod extract;
pub mod lexer;
pub mod rules;

use allowlist::Allowlist;
use extract::FileIndex;
use rules::Violation;
use std::fs;
use std::path::{Path, PathBuf};

/// Outcome of linting a workspace.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Unwaived violations, in path/line order.
    pub violations: Vec<Violation>,
    /// Sites matched by a rule but excused by a justified allowlist entry.
    pub waived: usize,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Allowlist entries that matched nothing — stale waivers, reported as
    /// errors by the CLI.
    pub unused_allow: Vec<String>,
    /// Allowlist entries that matched more than one site without a line
    /// anchor — over-broad waivers, reported as errors by the CLI.
    pub allow_errors: Vec<String>,
}

impl LintReport {
    /// Does the run pass (no violations, no stale or ambiguous allowlist
    /// entries)?
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.unused_allow.is_empty() && self.allow_errors.is_empty()
    }
}

/// Directories never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "node_modules"];

/// Markdown files whose backticked mentions count as wire-name
/// documentation for the L6 contract check.
const DOC_FILES: &[&str] = &["README.md", "DESIGN.md"];

/// Recursively collect every `.rs` file under `root`, sorted for stable
/// output.
pub fn collect_rust_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Lint every `.rs` file under `root` against `allow`: lex and index each
/// file once, run the per-file rules (L1–L5, L9) and the cross-file
/// contract rules (L6–L8), then apply the allowlist to the combined set.
pub fn run(root: &Path, allow: &Allowlist) -> std::io::Result<LintReport> {
    let mut report = LintReport::default();
    let mut indices = Vec::new();
    let mut candidates = Vec::new();
    for path in collect_rust_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = fs::read_to_string(&path)?;
        let index = FileIndex::build(&rel, &source);
        candidates.extend(rules::check_lines(&rel, &index.lines, &index.in_test));
        indices.push(index);
        report.files_scanned += 1;
    }
    let mut docs = Vec::new();
    for name in DOC_FILES {
        if let Ok(text) = fs::read_to_string(root.join(name)) {
            docs.push(((*name).to_string(), text));
        }
    }
    candidates.extend(contracts::check(&indices, &docs));
    candidates.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));

    let applied = allow.apply(candidates);
    report.violations = applied.violations;
    report.waived = applied.waived;
    report.allow_errors = applied.errors;
    report.unused_allow = allow
        .unused()
        .iter()
        .map(|e| {
            format!(
                "lint.allow:{}: unused entry ({} | {} | {}) — the code it excused is gone; delete it",
                e.line, e.rule, e.path, e.needle
            )
        })
        .collect();
    Ok(report)
}

/// Walk up from `start` to the directory containing the workspace-root
/// `Cargo.toml` (the one with a `[workspace]` table).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
