//! The per-file rules. Each works on [`crate::lexer::SourceLine`]s —
//! comment- and string-aware, so `// panic!` and `"unwrap()"` never match —
//! and skips test regions where the rule is about production behaviour.
//! The cross-file contract rules (L6–L8) live in [`crate::contracts`].
//!
//! - **L1** — no panic-capable calls (`unwrap`/`expect`/`panic!`/…) in the
//!   serving stack (`crates/server/src`, `crates/search/src`,
//!   `crates/router/src`, `crates/obs/src`) or the root crate's
//!   serving-adjacent modules, outside test code, except via a justified
//!   allowlist entry.
//! - **L2** — every `unsafe` block/impl/trait carries a `// SAFETY:`
//!   comment on the same line or in the contiguous comment block above.
//! - **L3** — `Ordering::Relaxed` only on allowlisted pure counters;
//!   `Ordering::SeqCst` never without a written justification.
//! - **L4** — no wall-clock or sleeping (`Instant::now`, `SystemTime::now`,
//!   `thread::sleep`) inside the deterministic engine crates.
//! - **L5** — in `protocol.rs`, no allocation sized by untrusted input
//!   without a `MAX_…` bound check in the preceding lines.
//! - **L9** — in the wire protocol and the snapshot load paths, no raw
//!   `+`/`*`/`<<` arithmetic on a length-derived value: overflow on an
//!   attacker- or disk-supplied length must be impossible, so the value is
//!   either pre-bounded against a `MAX_…` constant or combined with
//!   `checked_*`/`saturating_*` forms.
//!
//! Rules *emit every candidate site*; the allowlist is applied afterwards
//! (see [`crate::allowlist::Allowlist::apply`]) so an entry can be checked
//! for matching exactly one site.

use crate::lexer::{find_token, lex, test_regions, SourceLine};

/// One rule violation at a specific line.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Rule id: "L1".."L9".
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human explanation of what was matched and what to do.
    pub message: String,
    /// The raw source line, verbatim — what allowlist needles match.
    pub raw: String,
}

/// Crates whose `src/` may not call into panics (rule L1): the concurrent
/// serving stack, where a stray panic kills a worker or poisons a lock,
/// and the observability crate its hot paths call into.
const L1_SCOPE: &[&str] = &[
    "crates/server/src/",
    "crates/search/src/",
    "crates/router/src/",
    "crates/obs/src/",
];

/// Root-crate modules on the serving path (snapshot load, delta apply,
/// query execution) held to the same no-panic bar as the serving crates.
const L1_FILES: &[&str] = &["src/engine.rs", "src/update.rs", "src/store.rs"];

/// Panic-capable tokens forbidden by L1.
const L1_TOKENS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
];

/// Crates whose `src/` must be deterministic (rule L4): the offline engine,
/// where identical inputs must produce identical summaries and rankings.
const L4_SCOPE: &[&str] = &[
    "crates/graph/src/",
    "crates/topics/src/",
    "crates/walk/src/",
    "crates/summarize/src/",
    "crates/index/src/",
    "crates/search/src/",
];

/// Wall-clock / scheduling tokens forbidden by L4.
const L4_TOKENS: &[&str] = &["Instant::now", "SystemTime::now", "thread::sleep"];

/// Atomic-ordering tokens audited by L3.
const L3_TOKENS: &[&str] = &["Ordering::Relaxed", "Ordering::SeqCst"];

/// How far back (in lines) L5 and L9 look for a `MAX_…` bound check before
/// a dynamically-sized allocation or a length arithmetic site.
const BOUND_LOOKBACK: usize = 40;

/// Files whose length arithmetic L9 audits: the wire protocol (lengths come
/// from the socket) and the snapshot/shard-manifest load paths (lengths
/// come from disk).
const L9_SCOPE: &[&str] = &[
    "crates/server/src/protocol.rs",
    "src/store.rs",
    "src/shard.rs",
];

fn in_scope(rel: &str, scope: &[&str]) -> bool {
    scope.iter().any(|p| rel.starts_with(p))
}

/// Integration tests, benches, and build scripts are exempt from every rule
/// except L2 (`unsafe` needs a SAFETY story no matter where it lives).
pub(crate) fn is_test_path(rel: &str) -> bool {
    rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.starts_with("tests/")
        || rel.starts_with("benches/")
        || rel.ends_with("build.rs")
}

/// Check one file against the per-file rules, returning every candidate
/// site (the allowlist has not been consulted).
pub fn check_file(rel: &str, source: &str) -> Vec<Violation> {
    let lines = lex(source);
    let in_test = test_regions(&lines);
    check_lines(rel, &lines, &in_test)
}

/// [`check_file`] over already-lexed lines, so callers that also extract
/// items (the contract rules) lex each file once.
pub fn check_lines(rel: &str, lines: &[SourceLine], in_test: &[bool]) -> Vec<Violation> {
    let test_file = is_test_path(rel);
    let mut violations = Vec::new();

    let mut emit = |rule: &'static str, idx: usize, message: String, raw: &str| {
        violations.push(Violation {
            rule,
            path: rel.to_string(),
            line: idx + 1,
            message,
            raw: raw.to_string(),
        });
    };

    for (idx, line) in lines.iter().enumerate() {
        let live = !test_file && !in_test[idx];

        // L1: panic-capable calls in the serving stack.
        if live && (in_scope(rel, L1_SCOPE) || L1_FILES.contains(&rel)) {
            for tok in L1_TOKENS {
                if find_token(&line.code, tok).is_some() && !is_inside_debug_assert(&line.code, tok)
                {
                    emit(
                        "L1",
                        idx,
                        format!(
                            "panic-capable `{tok}` in serving-stack code; return an error, \
                             or add a lint.allow entry stating the invariant that makes it \
                             unreachable"
                        ),
                        &line.raw,
                    );
                }
            }
        }

        // L2: unsafe without SAFETY. Applies everywhere, including tests.
        if let Some(pos) = find_token(&line.code, "unsafe") {
            let after = line.code[pos + "unsafe".len()..].trim_start();
            // `unsafe fn` declarations are the *obligation* side; their
            // bodies are policed by `deny(unsafe_op_in_unsafe_fn)`, which
            // forces inner `unsafe {}` blocks that L2 then covers.
            let is_fn_decl = after.starts_with("fn ") || after.starts_with("fn(");
            if !is_fn_decl && !has_safety_comment(lines, idx) {
                emit(
                    "L2",
                    idx,
                    "`unsafe` without a `// SAFETY:` comment on the same line or in the \
                     contiguous comment block above"
                        .to_string(),
                    &line.raw,
                );
            }
        }

        // L3: atomic orderings are an audited resource.
        if live {
            for tok in L3_TOKENS {
                if find_token(&line.code, tok).is_some() {
                    let why = if *tok == "Ordering::Relaxed" {
                        "only pure counters may be Relaxed"
                    } else {
                        "SeqCst is never the answer without a written argument"
                    };
                    emit(
                        "L3",
                        idx,
                        format!("`{tok}` requires a justified lint.allow entry ({why})"),
                        &line.raw,
                    );
                }
            }
        }

        // L4: determinism of the engine crates.
        if live && in_scope(rel, L4_SCOPE) {
            for tok in L4_TOKENS {
                if find_token(&line.code, tok).is_some() {
                    emit(
                        "L4",
                        idx,
                        format!(
                            "nondeterministic `{tok}` in a deterministic engine crate; \
                             thread timing or wall-clock must not influence results"
                        ),
                        &line.raw,
                    );
                }
            }
        }

        // L5: untrusted-length allocation in the wire protocol.
        if live && rel.ends_with("protocol.rs") && rel.contains("/src/") {
            if let Some(site) = dynamic_alloc_site(&line.code) {
                if !bound_in_lookback(lines, idx) {
                    emit(
                        "L5",
                        idx,
                        format!(
                            "allocation `{site}` is sized by a runtime value with no \
                             `MAX_…` bound check in the preceding {BOUND_LOOKBACK} lines — \
                             validate the length before allocating"
                        ),
                        &line.raw,
                    );
                }
            }
        }

        // L9: length arithmetic in wire/snapshot paths must be checked or
        // provably pre-bounded.
        if live && in_scope(rel, L9_SCOPE) {
            for site in length_arith_sites(&line.code) {
                if !bound_in_lookback(lines, idx) {
                    emit(
                        "L9",
                        idx,
                        format!(
                            "unchecked `{site}` on a length-derived value; a wire- or \
                             disk-supplied length can overflow here — use `checked_*`/\
                             `saturating_*`, or bound it against a `MAX_…` constant in \
                             the preceding {BOUND_LOOKBACK} lines"
                        ),
                        &line.raw,
                    );
                }
            }
        }
    }

    violations
}

/// Is there a `MAX_…` mention in the `BOUND_LOOKBACK` lines up to and
/// including `idx`? Shared by L5 and L9: a named maximum nearby is the
/// evidence the value was bounded before use.
fn bound_in_lookback(lines: &[SourceLine], idx: usize) -> bool {
    lines[idx.saturating_sub(BOUND_LOOKBACK)..=idx]
        .iter()
        .any(|l| l.code.contains("MAX_"))
}

/// `debug_assert!` and friends compile out of release builds; a `panic!`
/// inside one is not a serving-path panic. Crude but sufficient: the token
/// appears after a `debug_assert` on the same line.
fn is_inside_debug_assert(code: &str, tok: &str) -> bool {
    match (code.find("debug_assert"), find_token(code, tok)) {
        (Some(da), Some(at)) => da < at,
        _ => false,
    }
}

/// Does the `unsafe` at line `idx` carry a SAFETY comment? Accepts the same
/// line's trailing comment or a contiguous block of comment/attribute lines
/// directly above.
fn has_safety_comment(lines: &[SourceLine], idx: usize) -> bool {
    if lines[idx].comment.contains("SAFETY") {
        return true;
    }
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let l = &lines[j];
        let code = l.code.trim();
        let is_comment_or_attr = code.is_empty() || code.starts_with("#[");
        if !is_comment_or_attr {
            return false;
        }
        if l.comment.contains("SAFETY") {
            return true;
        }
        if code.is_empty() && l.comment.is_empty() {
            // A fully blank line ends the contiguous block.
            return false;
        }
    }
    false
}

/// If this line allocates with a runtime-dependent size, return the matched
/// token for the diagnostic. Literal sizes (`with_capacity(16)`,
/// `vec![0u8; 4]`) are fine; any identifier in the size expression makes it
/// dynamic. A size mentioning `MAX` is itself the bound, so it passes.
fn dynamic_alloc_site(code: &str) -> Option<&'static str> {
    for (tok, close, sep) in [
        ("with_capacity(", ')', None),
        (".reserve(", ')', None),
        ("vec![", ']', Some(';')),
    ] {
        if let Some(at) = code.find(tok) {
            let mut args = clip_to_close(&code[at + tok.len()..], close);
            if let Some(sep) = sep {
                // `vec![elem; len]` — only the length is a size; the list
                // form `vec![a, b]` has a static length.
                match args.find(sep) {
                    Some(p) => args = &args[p + 1..],
                    None => continue,
                }
            }
            if args.contains("MAX") {
                continue;
            }
            if has_dynamic_ident(args) {
                return Some(tok);
            }
        }
    }
    None
}

/// Truncate `rest` (the text just after an opening `(`/`[`) at its matching
/// close, so the rest of the line never leaks into the size expression.
/// Falls back to the whole remainder for multi-line calls.
fn clip_to_close(rest: &str, close: char) -> &str {
    let open = if close == ')' { '(' } else { '[' };
    let mut depth = 1i32;
    for (i, c) in rest.char_indices() {
        if c == open {
            depth += 1;
        } else if c == close {
            depth -= 1;
            if depth == 0 {
                return &rest[..i];
            }
        }
    }
    rest
}

/// Any maximal identifier run starting with a letter or `_` (so `0u8` and
/// `16` don't count) marks the expression as runtime-dependent.
fn has_dynamic_ident(expr: &str) -> bool {
    let mut chars = expr.chars().peekable();
    while let Some(c) = chars.next() {
        if c.is_alphabetic() || c == '_' {
            return true;
        }
        if c.is_ascii_digit() {
            // Swallow the rest of the numeric literal (incl. type suffix).
            while chars
                .peek()
                .is_some_and(|n| n.is_alphanumeric() || *n == '_')
            {
                chars.next();
            }
        }
    }
    false
}

/// The `+`/`*`/`<<` sites on this line where an operand is length-derived
/// and the arithmetic is not already a checked/saturating form. Returns
/// `"left OP right"` descriptions for diagnostics.
fn length_arith_sites(code: &str) -> Vec<String> {
    // A checked/saturating/wrapping form on the line is the fix this rule
    // asks for; don't flag the operators inside its argument expressions.
    if ["checked_", "saturating_", "wrapping_"]
        .iter()
        .any(|p| code.contains(p))
    {
        return Vec::new();
    }
    let chars: Vec<char> = code.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let (op, width) = match chars[i] {
            '+' if chars.get(i + 1) == Some(&'+') => {
                i += 2;
                continue;
            }
            '+' => ("+", 1),
            '<' if chars.get(i + 1) == Some(&'<') => ("<<", 2),
            '<' => {
                i += 1;
                continue;
            }
            '*' => {
                // Binary `*` only: a deref/raw-pointer star follows an
                // operator or delimiter, a multiplication follows a value.
                let prev = chars[..i].iter().rev().find(|c| !c.is_whitespace());
                let binary = prev
                    .is_some_and(|c| c.is_alphanumeric() || *c == '_' || *c == ')' || *c == ']');
                if !binary {
                    i += 1;
                    continue;
                }
                ("*", 1)
            }
            _ => {
                i += 1;
                continue;
            }
        };
        let left = operand_left(&chars, i);
        // `+=` / `<<=` assign back into the left operand; skip the `=`.
        let mut rhs_from = i + width;
        if chars.get(rhs_from) == Some(&'=') {
            rhs_from += 1;
        }
        let right = operand_right(&chars, rhs_from);
        i += width;
        let (Some(left), Some(right)) = (left, right) else {
            continue;
        };
        if !is_lengthish(&left) && !is_lengthish(&right) {
            continue;
        }
        if left.contains("MAX") || right.contains("MAX") {
            continue;
        }
        if is_literal_operand(&left) && is_literal_operand(&right) {
            continue;
        }
        out.push(format!("{left} {op} {right}"));
    }
    out
}

fn is_operand_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '.'
}

/// The operand expression ending just before position `op` (scanning left
/// over an identifier/field/call chain like `bytes.len()`).
fn operand_left(chars: &[char], op: usize) -> Option<String> {
    let mut j = op;
    while j > 0 && chars[j - 1].is_whitespace() {
        j -= 1;
    }
    // A trailing call: step over `(…)` back to the callee chain, so
    // `bytes.len() + 4` reads its left operand as `bytes.len()`.
    let mut call = false;
    if j > 0 && chars[j - 1] == ')' {
        call = true;
        let mut depth = 0i32;
        while j > 0 {
            j -= 1;
            match chars[j] {
                ')' => depth += 1,
                '(' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
        }
    }
    let end = j;
    while j > 0 && is_operand_char(chars[j - 1]) {
        j -= 1;
    }
    let mut s: String = chars[j..end].iter().collect();
    if call {
        s.push_str("()");
    }
    (!s.is_empty()).then_some(s)
}

/// The operand expression starting at/after position `from` (an
/// identifier/field chain, optionally ending in a call like `.len()`).
fn operand_right(chars: &[char], from: usize) -> Option<String> {
    let mut j = from;
    while chars.get(j).is_some_and(|c| c.is_whitespace()) {
        j += 1;
    }
    // A leading `&`/`(` wrapper — step inside.
    while chars.get(j).is_some_and(|c| *c == '&' || *c == '(') {
        j += 1;
    }
    let mut out = String::new();
    while chars.get(j).is_some_and(|c| is_operand_char(*c)) {
        out.push(chars[j]);
        j += 1;
    }
    if chars.get(j) == Some(&'(') {
        out.push_str("()");
    }
    (!out.is_empty()).then_some(out)
}

/// Does this operand smell like a length/size/count?
fn is_lengthish(operand: &str) -> bool {
    let lower = operand.to_ascii_lowercase();
    ["len", "size", "count", "byte", "cap"]
        .iter()
        .any(|n| lower.contains(n))
}

/// Digits-only (with `_` separators and type suffixes): a compile-time
/// constant, not a runtime length.
fn is_literal_operand(operand: &str) -> bool {
    operand.starts_with(|c: char| c.is_ascii_digit())
        && operand.chars().all(|c| c.is_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(rel: &str, src: &str) -> Vec<Violation> {
        check_file(rel, src)
    }

    #[test]
    fn l1_fires_only_in_scope_and_outside_tests() {
        let src = "fn f() { x.unwrap(); }\n\
                   #[cfg(test)]\nmod tests { fn t() { y.unwrap(); } }\n";
        let v = check("crates/server/src/pool.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!((v[0].rule, v[0].line), ("L1", 1));
        assert!(
            check("crates/graph/src/lib.rs", src).is_empty(),
            "out of scope"
        );
        assert!(
            check("crates/server/tests/x.rs", src).is_empty(),
            "test file"
        );
    }

    #[test]
    fn l1_scope_covers_the_event_loop_front_end_modules() {
        // The connection front-end lives in files added long after the
        // scope was written (conn.rs, event.rs, cache.rs); the prefix
        // match must pick them up without anyone editing L1_SCOPE.
        let src = "fn f() { x.unwrap(); thread::sleep(d); }\n";
        for rel in [
            "crates/server/src/conn.rs",
            "crates/server/src/event.rs",
            "crates/server/src/cache.rs",
        ] {
            let v = check(rel, src);
            assert_eq!(v.len(), 1, "{rel}: {v:?}");
            assert_eq!(v[0].rule, "L1", "{rel} must sit inside L1 scope");
        }
        // Same source inside the engine crates trips L4 as well: the
        // server may sleep (its readiness backoff), the engine may not.
        let v = check("crates/search/src/newmod.rs", src);
        assert_eq!(v.len(), 2, "{v:?}");
    }

    #[test]
    fn l1_scope_covers_obs_and_root_serving_modules() {
        let src = "fn f() { x.unwrap(); }\n";
        for rel in [
            "crates/obs/src/ring.rs",
            "src/engine.rs",
            "src/update.rs",
            "src/store.rs",
        ] {
            let v = check(rel, src);
            assert_eq!(v.len(), 1, "{rel}: {v:?}");
            assert_eq!(v[0].rule, "L1");
        }
        // Other root-crate modules (offline pipeline) may unwrap.
        assert!(check("src/figures.rs", src).is_empty());
    }

    #[test]
    fn l1_ignores_comments_strings_and_debug_asserts() {
        let src = "fn f() {\n\
                   // x.unwrap() would be wrong\n\
                   let s = \"panic!\";\n\
                   debug_assert!(ok, \"bad\");\n\
                   }\n";
        assert!(check("crates/server/src/lib.rs", src).is_empty());
        let src = "fn f() { debug_assert!(m.get(k).is_some()); m.get(k).unwrap(); }\n";
        // The unwrap is *outside* the debug_assert — crude heuristic keeps
        // it quiet only when the assert precedes it on the line.
        assert!(check("crates/server/src/lib.rs", src).is_empty());
    }

    #[test]
    fn l2_requires_safety_comments() {
        let bad = "fn f() { unsafe { do_it() } }\n";
        let v = check("crates/eval/src/alloc.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "L2");

        let same_line = "fn f() { unsafe { do_it() } } // SAFETY: ptr is live\n";
        assert!(check("crates/eval/src/alloc.rs", same_line).is_empty());

        let above = "// SAFETY: layout came from alloc\n\
                     // and is therefore valid here\n\
                     unsafe impl GlobalAlloc for X {}\n";
        assert!(check("crates/eval/src/alloc.rs", above).is_empty());

        let gap = "// SAFETY: stale\n\nfn other() {}\nunsafe impl Send for X {}\n";
        assert_eq!(check("crates/eval/src/alloc.rs", gap).len(), 1);
    }

    #[test]
    fn l2_skips_unsafe_fn_declarations() {
        let src = "unsafe fn alloc(&self) -> *mut u8 { inner() }\n";
        assert!(check("crates/eval/src/alloc.rs", src).is_empty());
    }

    #[test]
    fn l3_flags_relaxed_and_seqcst_everywhere() {
        let src = "fn f(c: &AtomicU64) {\n\
                   c.fetch_add(1, Ordering::Relaxed);\n\
                   c.load(Ordering::SeqCst);\n\
                   c.load(Ordering::Acquire);\n\
                   }\n";
        let v = check("crates/walk/src/lib.rs", src);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|x| x.rule == "L3"));
    }

    #[test]
    fn l4_fires_in_engine_crates_only() {
        let src = "fn f() { let t = Instant::now(); std::thread::sleep(d); }\n";
        assert_eq!(check("crates/search/src/cancel.rs", src).len(), 2);
        assert!(
            check("crates/server/src/lib.rs", src).is_empty(),
            "server may time"
        );
        assert!(
            check("crates/bench/src/harness.rs", src).is_empty(),
            "bench may time"
        );
    }

    #[test]
    fn l5_requires_bound_before_dynamic_alloc() {
        let bad = "fn read(len: usize) { let buf = vec![0u8; len]; }\n";
        let v = check("crates/server/src/protocol.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "L5");

        let good = "fn read(len: usize) {\n\
                    if len > MAX_FRAME_BYTES { return; }\n\
                    let buf = vec![0u8; len];\n\
                    }\n";
        assert!(check("crates/server/src/protocol.rs", good).is_empty());

        let static_sizes = "fn f() { let v = vec![0u8; 16]; let w = Vec::with_capacity(8); }\n";
        assert!(check("crates/server/src/protocol.rs", static_sizes).is_empty());

        // Other files are out of scope for L5.
        assert!(check("crates/server/src/cache.rs", bad).is_empty());
    }

    #[test]
    fn l9_flags_unchecked_length_arithmetic() {
        let bad = "fn f(len: usize) { let total = 4 + len; }\n";
        // Out of L9 scope: nothing.
        assert!(check("crates/server/src/conn.rs", bad).is_empty());
        let v = check("src/store.rs", bad);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "L9");
        assert!(v[0].message.contains("4 + len"), "{}", v[0].message);

        let shifted = "fn f(count: usize) { let bytes = count << 3; }\n";
        assert_eq!(check("src/shard.rs", shifted).len(), 1);

        let mult = "fn f(n_bytes: usize) { let total = n_bytes * 8; }\n";
        assert_eq!(check("src/store.rs", mult).len(), 1);
    }

    #[test]
    fn l9_accepts_checked_bounded_or_constant_arithmetic() {
        // checked_* is the requested fix.
        let checked = "fn f(len: usize) { let t = len.checked_add(4)?; }\n";
        assert!(check("src/store.rs", checked).is_empty());
        // A MAX_ bound in the lookback window proves the value small.
        let bounded = "fn f(len: usize) {\n\
                       if len > MAX_FRAME_BYTES { return; }\n\
                       let total = 4 + len;\n\
                       }\n";
        assert!(check("crates/server/src/protocol.rs", bounded).is_empty());
        // Literal-only arithmetic (header layouts) is compile-time.
        let literal = "fn f(meta: &[u8]) { let ok = meta.len() != 4 + 1 + 1 + 4; }\n";
        assert!(check("src/store.rs", literal).is_empty());
        // Non-length arithmetic (scores, trait bounds, derefs) is not L9's
        // business.
        let other =
            "fn f<T: Read + Write>(x: f64, p: *const u32) { let y = x * 2.0; let v = *p; }\n";
        assert!(check("src/store.rs", other).is_empty());
    }
}
