//! The five repo-specific rules. Each works on [`crate::lexer::SourceLine`]s —
//! comment- and string-aware, so `// panic!` and `"unwrap()"` never match —
//! and skips test regions where the rule is about production behaviour.
//!
//! - **L1** — no panic-capable calls (`unwrap`/`expect`/`panic!`/…) in the
//!   serving stack (`crates/server/src`, `crates/search/src`,
//!   `crates/router/src`) outside test code, except via a justified
//!   allowlist entry.
//! - **L2** — every `unsafe` block/impl/trait carries a `// SAFETY:`
//!   comment on the same line or in the contiguous comment block above.
//! - **L3** — `Ordering::Relaxed` only on allowlisted pure counters;
//!   `Ordering::SeqCst` never without a written justification.
//! - **L4** — no wall-clock or sleeping (`Instant::now`, `SystemTime::now`,
//!   `thread::sleep`) inside the deterministic engine crates.
//! - **L5** — in `protocol.rs`, no allocation sized by untrusted input
//!   without a `MAX_…` bound check in the preceding lines.

use crate::allowlist::Allowlist;
use crate::lexer::{find_token, lex, test_regions, SourceLine};

/// One rule violation at a specific line.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Rule id: "L1".."L5".
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human explanation of what was matched and what to do.
    pub message: String,
}

/// Result of checking one file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Violations that were not waived by the allowlist.
    pub violations: Vec<Violation>,
    /// Sites matched by a rule but waived by a justified allowlist entry.
    pub waived: usize,
}

/// Crates whose `src/` may not call into panics (rule L1): the concurrent
/// serving stack, where a stray panic kills a worker or poisons a lock.
const L1_SCOPE: &[&str] = &[
    "crates/server/src/",
    "crates/search/src/",
    "crates/router/src/",
];

/// Panic-capable tokens forbidden by L1.
const L1_TOKENS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
];

/// Crates whose `src/` must be deterministic (rule L4): the offline engine,
/// where identical inputs must produce identical summaries and rankings.
const L4_SCOPE: &[&str] = &[
    "crates/graph/src/",
    "crates/topics/src/",
    "crates/walk/src/",
    "crates/summarize/src/",
    "crates/index/src/",
    "crates/search/src/",
];

/// Wall-clock / scheduling tokens forbidden by L4.
const L4_TOKENS: &[&str] = &["Instant::now", "SystemTime::now", "thread::sleep"];

/// Atomic-ordering tokens audited by L3.
const L3_TOKENS: &[&str] = &["Ordering::Relaxed", "Ordering::SeqCst"];

/// How far back (in lines) L5 looks for a `MAX_…` bound check before a
/// dynamically-sized allocation.
const L5_LOOKBACK: usize = 40;

fn in_scope(rel: &str, scope: &[&str]) -> bool {
    scope.iter().any(|p| rel.starts_with(p))
}

/// Integration tests, benches, and build scripts are exempt from every rule
/// except L2 (`unsafe` needs a SAFETY story no matter where it lives).
fn is_test_path(rel: &str) -> bool {
    rel.contains("/tests/") || rel.contains("/benches/") || rel.ends_with("build.rs")
}

/// Check one file against all five rules, consulting the allowlist.
pub fn check_file(rel: &str, source: &str, allow: &Allowlist) -> FileReport {
    let lines = lex(source);
    let in_test = test_regions(&lines);
    let test_file = is_test_path(rel);
    let mut report = FileReport::default();

    let mut emit = |rule: &'static str, idx: usize, message: String, raw: &str| {
        if allow.waives(rule, rel, raw) {
            report.waived += 1;
        } else {
            report.violations.push(Violation {
                rule,
                path: rel.to_string(),
                line: idx + 1,
                message,
            });
        }
    };

    for (idx, line) in lines.iter().enumerate() {
        let live = !test_file && !in_test[idx];

        // L1: panic-capable calls in the serving stack.
        if live && in_scope(rel, L1_SCOPE) {
            for tok in L1_TOKENS {
                if find_token(&line.code, tok).is_some() && !is_inside_debug_assert(&line.code, tok)
                {
                    emit(
                        "L1",
                        idx,
                        format!(
                            "panic-capable `{tok}` in serving-stack code; return an error, \
                             or add a lint.allow entry stating the invariant that makes it \
                             unreachable"
                        ),
                        &line.raw,
                    );
                }
            }
        }

        // L2: unsafe without SAFETY. Applies everywhere, including tests.
        if let Some(pos) = find_token(&line.code, "unsafe") {
            let after = line.code[pos + "unsafe".len()..].trim_start();
            // `unsafe fn` declarations are the *obligation* side; their
            // bodies are policed by `deny(unsafe_op_in_unsafe_fn)`, which
            // forces inner `unsafe {}` blocks that L2 then covers.
            let is_fn_decl = after.starts_with("fn ") || after.starts_with("fn(");
            if !is_fn_decl && !has_safety_comment(&lines, idx) {
                emit(
                    "L2",
                    idx,
                    "`unsafe` without a `// SAFETY:` comment on the same line or in the \
                     contiguous comment block above"
                        .to_string(),
                    &line.raw,
                );
            }
        }

        // L3: atomic orderings are an audited resource.
        if live {
            for tok in L3_TOKENS {
                if find_token(&line.code, tok).is_some() {
                    let why = if *tok == "Ordering::Relaxed" {
                        "only pure counters may be Relaxed"
                    } else {
                        "SeqCst is never the answer without a written argument"
                    };
                    emit(
                        "L3",
                        idx,
                        format!("`{tok}` requires a justified lint.allow entry ({why})"),
                        &line.raw,
                    );
                }
            }
        }

        // L4: determinism of the engine crates.
        if live && in_scope(rel, L4_SCOPE) {
            for tok in L4_TOKENS {
                if find_token(&line.code, tok).is_some() {
                    emit(
                        "L4",
                        idx,
                        format!(
                            "nondeterministic `{tok}` in a deterministic engine crate; \
                             thread timing or wall-clock must not influence results"
                        ),
                        &line.raw,
                    );
                }
            }
        }

        // L5: untrusted-length allocation in the wire protocol.
        if live && rel.ends_with("protocol.rs") && rel.contains("/src/") {
            if let Some(site) = dynamic_alloc_site(&line.code) {
                let validated = lines[idx.saturating_sub(L5_LOOKBACK)..=idx]
                    .iter()
                    .any(|l| l.code.contains("MAX_"));
                if !validated {
                    emit(
                        "L5",
                        idx,
                        format!(
                            "allocation `{site}` is sized by a runtime value with no \
                             `MAX_…` bound check in the preceding {L5_LOOKBACK} lines — \
                             validate the length before allocating"
                        ),
                        &line.raw,
                    );
                }
            }
        }
    }

    report
}

/// `debug_assert!` and friends compile out of release builds; a `panic!`
/// inside one is not a serving-path panic. Crude but sufficient: the token
/// appears after a `debug_assert` on the same line.
fn is_inside_debug_assert(code: &str, tok: &str) -> bool {
    match (code.find("debug_assert"), find_token(code, tok)) {
        (Some(da), Some(at)) => da < at,
        _ => false,
    }
}

/// Does the `unsafe` at line `idx` carry a SAFETY comment? Accepts the same
/// line's trailing comment or a contiguous block of comment/attribute lines
/// directly above.
fn has_safety_comment(lines: &[SourceLine], idx: usize) -> bool {
    if lines[idx].comment.contains("SAFETY") {
        return true;
    }
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let l = &lines[j];
        let code = l.code.trim();
        let is_comment_or_attr = code.is_empty() || code.starts_with("#[");
        if !is_comment_or_attr {
            return false;
        }
        if l.comment.contains("SAFETY") {
            return true;
        }
        if code.is_empty() && l.comment.is_empty() {
            // A fully blank line ends the contiguous block.
            return false;
        }
    }
    false
}

/// If this line allocates with a runtime-dependent size, return the matched
/// token for the diagnostic. Literal sizes (`with_capacity(16)`,
/// `vec![0u8; 4]`) are fine; any identifier in the size expression makes it
/// dynamic. A size mentioning `MAX` is itself the bound, so it passes.
fn dynamic_alloc_site(code: &str) -> Option<&'static str> {
    for (tok, close, sep) in [
        ("with_capacity(", ')', None),
        (".reserve(", ')', None),
        ("vec![", ']', Some(';')),
    ] {
        if let Some(at) = code.find(tok) {
            let mut args = clip_to_close(&code[at + tok.len()..], close);
            if let Some(sep) = sep {
                // `vec![elem; len]` — only the length is a size; the list
                // form `vec![a, b]` has a static length.
                match args.find(sep) {
                    Some(p) => args = &args[p + 1..],
                    None => continue,
                }
            }
            if args.contains("MAX") {
                continue;
            }
            if has_dynamic_ident(args) {
                return Some(tok);
            }
        }
    }
    None
}

/// Truncate `rest` (the text just after an opening `(`/`[`) at its matching
/// close, so the rest of the line never leaks into the size expression.
/// Falls back to the whole remainder for multi-line calls.
fn clip_to_close(rest: &str, close: char) -> &str {
    let open = if close == ')' { '(' } else { '[' };
    let mut depth = 1i32;
    for (i, c) in rest.char_indices() {
        if c == open {
            depth += 1;
        } else if c == close {
            depth -= 1;
            if depth == 0 {
                return &rest[..i];
            }
        }
    }
    rest
}

/// Any maximal identifier run starting with a letter or `_` (so `0u8` and
/// `16` don't count) marks the expression as runtime-dependent.
fn has_dynamic_ident(expr: &str) -> bool {
    let mut chars = expr.chars().peekable();
    while let Some(c) = chars.next() {
        if c.is_alphabetic() || c == '_' {
            return true;
        }
        if c.is_ascii_digit() {
            // Swallow the rest of the numeric literal (incl. type suffix).
            while chars
                .peek()
                .is_some_and(|n| n.is_alphanumeric() || *n == '_')
            {
                chars.next();
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(rel: &str, src: &str) -> Vec<Violation> {
        check_file(rel, src, &Allowlist::empty()).violations
    }

    #[test]
    fn l1_fires_only_in_scope_and_outside_tests() {
        let src = "fn f() { x.unwrap(); }\n\
                   #[cfg(test)]\nmod tests { fn t() { y.unwrap(); } }\n";
        let v = check("crates/server/src/pool.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!((v[0].rule, v[0].line), ("L1", 1));
        assert!(
            check("crates/graph/src/lib.rs", src).is_empty(),
            "out of scope"
        );
        assert!(
            check("crates/server/tests/x.rs", src).is_empty(),
            "test file"
        );
    }

    #[test]
    fn l1_scope_covers_the_event_loop_front_end_modules() {
        // The connection front-end lives in files added long after the
        // scope was written (conn.rs, event.rs, cache.rs); the prefix
        // match must pick them up without anyone editing L1_SCOPE.
        let src = "fn f() { x.unwrap(); thread::sleep(d); }\n";
        for rel in [
            "crates/server/src/conn.rs",
            "crates/server/src/event.rs",
            "crates/server/src/cache.rs",
        ] {
            let v = check(rel, src);
            assert_eq!(v.len(), 1, "{rel}: {v:?}");
            assert_eq!(v[0].rule, "L1", "{rel} must sit inside L1 scope");
        }
        // Same source inside the engine crates trips L4 as well: the
        // server may sleep (its readiness backoff), the engine may not.
        let v = check("crates/search/src/newmod.rs", src);
        assert_eq!(v.len(), 2, "{v:?}");
    }

    #[test]
    fn l1_ignores_comments_strings_and_debug_asserts() {
        let src = "fn f() {\n\
                   // x.unwrap() would be wrong\n\
                   let s = \"panic!\";\n\
                   debug_assert!(ok, \"bad\");\n\
                   }\n";
        assert!(check("crates/server/src/lib.rs", src).is_empty());
        let src = "fn f() { debug_assert!(m.get(k).is_some()); m.get(k).unwrap(); }\n";
        // The unwrap is *outside* the debug_assert — crude heuristic keeps
        // it quiet only when the assert precedes it on the line.
        assert!(check("crates/server/src/lib.rs", src).is_empty());
    }

    #[test]
    fn l2_requires_safety_comments() {
        let bad = "fn f() { unsafe { do_it() } }\n";
        let v = check("crates/eval/src/alloc.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "L2");

        let same_line = "fn f() { unsafe { do_it() } } // SAFETY: ptr is live\n";
        assert!(check("crates/eval/src/alloc.rs", same_line).is_empty());

        let above = "// SAFETY: layout came from alloc\n\
                     // and is therefore valid here\n\
                     unsafe impl GlobalAlloc for X {}\n";
        assert!(check("crates/eval/src/alloc.rs", above).is_empty());

        let gap = "// SAFETY: stale\n\nfn other() {}\nunsafe impl Send for X {}\n";
        assert_eq!(check("crates/eval/src/alloc.rs", gap).len(), 1);
    }

    #[test]
    fn l2_skips_unsafe_fn_declarations() {
        let src = "unsafe fn alloc(&self) -> *mut u8 { inner() }\n";
        assert!(check("crates/eval/src/alloc.rs", src).is_empty());
    }

    #[test]
    fn l3_flags_relaxed_and_seqcst_everywhere() {
        let src = "fn f(c: &AtomicU64) {\n\
                   c.fetch_add(1, Ordering::Relaxed);\n\
                   c.load(Ordering::SeqCst);\n\
                   c.load(Ordering::Acquire);\n\
                   }\n";
        let v = check("crates/walk/src/lib.rs", src);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|x| x.rule == "L3"));
    }

    #[test]
    fn l3_waived_by_allowlist_and_entry_is_used() {
        let allow = Allowlist::parse(
            "L3 | crates/walk/src/lib.rs | Ordering::Relaxed | a pure counter with no ordering dependency\n",
        )
        .expect("parses");
        let r = check_file(
            "crates/walk/src/lib.rs",
            "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n",
            &allow,
        );
        assert!(r.violations.is_empty());
        assert_eq!(r.waived, 1);
        assert!(allow.unused().is_empty());
    }

    #[test]
    fn l4_fires_in_engine_crates_only() {
        let src = "fn f() { let t = Instant::now(); std::thread::sleep(d); }\n";
        assert_eq!(check("crates/search/src/cancel.rs", src).len(), 2);
        assert!(
            check("crates/server/src/lib.rs", src).is_empty(),
            "server may time"
        );
        assert!(
            check("crates/bench/src/harness.rs", src).is_empty(),
            "bench may time"
        );
    }

    #[test]
    fn l5_requires_bound_before_dynamic_alloc() {
        let bad = "fn read(len: usize) { let buf = vec![0u8; len]; }\n";
        let v = check("crates/server/src/protocol.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "L5");

        let good = "fn read(len: usize) {\n\
                    if len > MAX_FRAME_BYTES { return; }\n\
                    let buf = vec![0u8; len];\n\
                    let mut out = Vec::with_capacity(4 + len);\n\
                    }\n";
        assert!(check("crates/server/src/protocol.rs", good).is_empty());

        let static_sizes = "fn f() { let v = vec![0u8; 16]; let w = Vec::with_capacity(8); }\n";
        assert!(check("crates/server/src/protocol.rs", static_sizes).is_empty());

        // Other files are out of scope for L5.
        assert!(check("crates/server/src/cache.rs", bad).is_empty());
    }
}
