//! Cross-file contract rules: the workspace analyzed as a whole, over the
//! [`crate::extract`] item layer.
//!
//! - **L6 wire-contract drift** — every STATS key and Prometheus series
//!   the server emits must be pinned in the golden wire test and
//!   documented (in backticks) in README/DESIGN — and vice versa: a pinned
//!   name nothing emits is a dead wire key.
//! - **L7 taxonomy exhaustiveness** — every `StaleReason` variant has a
//!   kebab wire rendering, a parse arm, and a STATS counter; every
//!   `SearchError` variant has a `Display` rendering and a server-side
//!   mapping onto the ERR taxonomy; every literal handed to
//!   `Response::Err` starts with a declared taxonomy word, and each word
//!   is documented and counted.
//! - **L8 static lock-order** — the acquisition graph of the named locks
//!   (direct nesting plus an intra-crate call-graph approximation) must be
//!   acyclic and must not contradict the declared engine→cache order.
//!
//! The emitter/golden/doc locations below are themselves part of the
//! contract: if a named fn or const disappears, the rule reports the
//! absence instead of silently passing.

use crate::extract::{Acquisition, FileIndex};
use crate::lexer::find_token;
use crate::rules::Violation;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Functions whose string literals are the STATS wire keys.
const STATS_EMITTERS: &[(&str, &str)] = &[
    ("crates/server/src/metrics.rs", "snapshot"),
    ("crates/server/src/cache.rs", "snapshot"),
    ("crates/server/src/state.rs", "stats"),
];

/// Functions whose `pit_…` string literals are the Prometheus series.
const PROM_EMITTERS: &[(&str, &str)] = &[
    ("crates/server/src/metrics.rs", "render_prometheus"),
    ("crates/server/src/state.rs", "metrics_text"),
];

/// Where the wire registry is pinned.
const GOLDEN_FILE: &str = "crates/server/tests/golden_wire.rs";
const GOLDEN_STATS: &str = "STATS_KEYS";
const GOLDEN_METRICS: &str = "METRIC_NAMES";

/// The ERR reason taxonomy (first word of every `ERR` reply) and the
/// Metrics counter each class must bump. `shutting-down` is deliberately
/// uncounted: it is the server's own lifecycle, not an anomaly.
const ERR_TAXONOMY: &[(&str, Option<&str>)] = &[
    ("timeout", Some("timeouts")),
    ("overloaded", Some("shed")),
    ("malformed", Some("errors")),
    ("internal", Some("internal_errors")),
    ("shutting-down", None),
    ("reload-failed", Some("reload_failures")),
];

/// Where the taxonomy is documented: the protocol module's doc comments.
const TAXONOMY_DOC_FILE: &str = "crates/server/src/protocol.rs";

/// The declared lock order (DESIGN §10/§14): a thread holding the first
/// lock may take the second, never the reverse.
const DECLARED_LOCK_ORDER: &[(&str, &str)] = &[("server.state.engine", "server.cache.lru")];

/// Method names too generic to resolve through the call-graph
/// approximation: they collide with std container methods, so `map.get(…)`
/// must not be read as a call into a same-named lock-taking fn.
const UNRESOLVABLE_METHODS: &[&str] = &[
    "new",
    "default",
    "clone",
    "fmt",
    "eq",
    "cmp",
    "hash",
    "drop",
    "get",
    "insert",
    "remove",
    "len",
    "is_empty",
    "push",
    "pop",
    "clear",
    "join",
    "send",
    "recv",
    "next",
    "take",
    "contains",
    "iter",
    "drain",
    "extend",
    "write",
    "read",
    "lock",
    "push_front",
    "record",
    "top",
    "unlink",
];

/// Run every contract rule over the workspace. `docs` holds the prose
/// documents (`README.md`, `DESIGN.md`) the wire registry must appear in.
/// Vendored sources are out of contract scope.
pub fn check(files: &[FileIndex], docs: &[(String, String)]) -> Vec<Violation> {
    let files: Vec<&FileIndex> = files
        .iter()
        .filter(|f| !f.rel.starts_with("vendor/"))
        .collect();
    let mut out = Vec::new();
    let stats_keys = l6_wire_drift(&files, docs, &mut out);
    l7_taxonomy(&files, &stats_keys, &mut out);
    l8_lock_order(&files, &mut out);
    out
}

fn violation(rule: &'static str, file: &FileIndex, line0: usize, message: String) -> Violation {
    Violation {
        rule,
        path: file.rel.clone(),
        line: line0 + 1,
        raw: file
            .lines
            .get(line0)
            .map(|l| l.raw.clone())
            .unwrap_or_default(),
        message,
    }
}

fn find_file<'a>(files: &[&'a FileIndex], rel: &str) -> Option<&'a FileIndex> {
    files.iter().find(|f| f.rel == rel).copied()
}

/// A STATS wire key: `snake_case`, starting with a letter.
fn is_stats_key(s: &str) -> bool {
    s.starts_with(|c: char| c.is_ascii_lowercase())
        && s.chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

/// A Prometheus series of ours.
fn is_prom_name(s: &str) -> bool {
    s.starts_with("pit_") && is_stats_key(s)
}

/// Name → first emit/pin site, collected from the string literals inside
/// the named fns. Missing emitters are reported — a renamed fn must not
/// silently shrink the contract.
fn collect_names(
    files: &[&FileIndex],
    emitters: &[(&str, &str)],
    filter: fn(&str) -> bool,
    out: &mut Vec<Violation>,
) -> BTreeMap<String, (String, usize)> {
    let mut names = BTreeMap::new();
    for (rel, fn_name) in emitters {
        let Some(file) = find_file(files, rel) else {
            continue; // fixture workspaces carry only the files under test
        };
        let Some(span) = file.find_fn(fn_name) else {
            out.push(violation(
                "L6",
                file,
                0,
                format!(
                    "contract emitter `fn {fn_name}` not found in {rel} — renamed? \
                     update contracts.rs so the wire registry stays watched"
                ),
            ));
            continue;
        };
        for (s, line) in file.strings_in_span(span.start, span.end) {
            if filter(s) {
                names
                    .entry(s.to_string())
                    .or_insert_with(|| (file.rel.clone(), line));
            }
        }
    }
    names
}

/// The names pinned in a golden const's span.
fn collect_pinned(
    golden: &FileIndex,
    const_name: &str,
    filter: fn(&str) -> bool,
    out: &mut Vec<Violation>,
) -> BTreeMap<String, usize> {
    let Some(span) = golden.find_const(const_name) else {
        out.push(violation(
            "L6",
            golden,
            0,
            format!(
                "golden registry `const {const_name}` not found in {} — the wire \
                 contract has lost its pin",
                golden.rel
            ),
        ));
        return BTreeMap::new();
    };
    let mut pinned = BTreeMap::new();
    for (s, line) in golden.strings_in_span(span.start, span.end) {
        if filter(s) {
            pinned.entry(s.to_string()).or_insert(line);
        }
    }
    pinned
}

/// Is `name` documented — in backticks — in any of the docs?
fn documented(docs: &[(String, String)], name: &str) -> bool {
    let needle = format!("`{name}`");
    docs.iter().any(|(_, text)| text.contains(&needle))
}

/// L6: emitted ↔ pinned ↔ documented, both wire surfaces. Returns the
/// emitted STATS key set for L7's counter checks.
fn l6_wire_drift(
    files: &[&FileIndex],
    docs: &[(String, String)],
    out: &mut Vec<Violation>,
) -> BTreeSet<String> {
    let Some(golden) = find_file(files, GOLDEN_FILE) else {
        // Fixture workspaces without a golden file skip L6 entirely.
        return BTreeSet::new();
    };
    let doc_names: Vec<&str> = docs.iter().map(|(n, _)| n.as_str()).collect();
    #[allow(clippy::type_complexity)]
    let surfaces: [(&str, &[(&str, &str)], fn(&str) -> bool, &str); 2] = [
        ("STATS key", STATS_EMITTERS, is_stats_key, GOLDEN_STATS),
        (
            "Prometheus series",
            PROM_EMITTERS,
            is_prom_name,
            GOLDEN_METRICS,
        ),
    ];
    let mut stats_keys = BTreeSet::new();
    for (what, emitters, filter, golden_const) in surfaces {
        let emitted = collect_names(files, emitters, filter, out);
        let pinned = collect_pinned(golden, golden_const, filter, out);
        if what == "STATS key" {
            stats_keys = emitted.keys().cloned().collect();
        }
        if pinned.is_empty() {
            continue; // already reported the missing const
        }
        for (name, (rel, line)) in &emitted {
            if !pinned.contains_key(name) {
                let file = find_file(files, rel).expect("emitting file is in the set");
                out.push(violation(
                    "L6",
                    file,
                    *line,
                    format!(
                        "{what} `{name}` is emitted here but not pinned in \
                         {GOLDEN_FILE} ({golden_const}) — add it to the golden \
                         registry in the same change"
                    ),
                ));
            }
            if !documented(docs, name) {
                let file = find_file(files, rel).expect("emitting file is in the set");
                out.push(violation(
                    "L6",
                    file,
                    *line,
                    format!(
                        "{what} `{name}` is emitted here but documented in none of \
                         {doc_names:?} — operators read the docs, not the source"
                    ),
                ));
            }
        }
        for (name, line) in &pinned {
            if !emitted.contains_key(name) {
                out.push(violation(
                    "L6",
                    golden,
                    *line,
                    format!(
                        "{what} `{name}` is pinned in the golden registry but no \
                         emitter produces it — a dead wire key; delete the pin or \
                         restore the emitter"
                    ),
                ));
            }
        }
    }
    stats_keys
}

fn kebab_case(variant: &str) -> String {
    sep_case(variant, '-')
}

fn snake_case(variant: &str) -> String {
    sep_case(variant, '_')
}

fn sep_case(variant: &str, sep: char) -> String {
    let mut out = String::new();
    for (i, c) in variant.chars().enumerate() {
        if c.is_ascii_uppercase() && i > 0 {
            out.push(sep);
        }
        out.push(c.to_ascii_lowercase());
    }
    out
}

/// Does any non-test line of `file` within the fn `fn_name` contain the
/// string literal `lit`?
fn fn_span_has_literal(file: &FileIndex, fn_name: &str, lit: &str) -> bool {
    file.find_fn(fn_name)
        .map(|span| {
            file.strings_in_span(span.start, span.end)
                .iter()
                .any(|(s, _)| *s == lit)
        })
        .unwrap_or(false)
}

/// L7: taxonomy exhaustiveness for `StaleReason`, `SearchError`, and the
/// ERR word set.
fn l7_taxonomy(files: &[&FileIndex], stats_keys: &BTreeSet<String>, out: &mut Vec<Violation>) {
    l7_stale_reason(files, stats_keys, out);
    l7_search_error(files, out);
    l7_err_words(files, stats_keys, out);
}

fn l7_stale_reason(files: &[&FileIndex], stats_keys: &BTreeSet<String>, out: &mut Vec<Violation>) {
    const CACHE: &str = "crates/server/src/cache.rs";
    let Some(file) = find_file(files, CACHE) else {
        return;
    };
    let Some(en) = file.find_enum("StaleReason") else {
        out.push(violation(
            "L7",
            file,
            0,
            "enum StaleReason not found in cache.rs — renamed? update contracts.rs".into(),
        ));
        return;
    };
    let has_from_str = file.find_fn("from_str").is_some();
    if !has_from_str {
        out.push(violation(
            "L7",
            file,
            en.start,
            "StaleReason has no `from_str` parse arm — wire renderings must \
             round-trip (operator tooling parses the `reason` label back)"
                .into(),
        ));
    }
    for (variant, line) in &en.variants {
        let kebab = kebab_case(variant);
        if !fn_span_has_literal(file, "as_str", &kebab) {
            out.push(violation(
                "L7",
                file,
                *line,
                format!(
                    "StaleReason::{variant} has no wire rendering: expected literal \
                     `\"{kebab}\"` inside `fn as_str`"
                ),
            ));
        }
        if has_from_str && !fn_span_has_literal(file, "from_str", &kebab) {
            out.push(violation(
                "L7",
                file,
                *line,
                format!(
                    "StaleReason::{variant} has no parse arm: expected literal \
                     `\"{kebab}\"` inside `fn from_str`"
                ),
            ));
        }
        let counter = format!("cache_stale_{}", snake_case(variant));
        if !stats_keys.is_empty() && !stats_keys.contains(&counter) {
            out.push(violation(
                "L7",
                file,
                *line,
                format!(
                    "StaleReason::{variant} has no metrics counter: expected STATS \
                     key `{counter}` from the cache snapshot"
                ),
            ));
        }
    }
}

fn l7_search_error(files: &[&FileIndex], out: &mut Vec<Violation>) {
    const CANCEL: &str = "crates/search/src/cancel.rs";
    let Some(file) = find_file(files, CANCEL) else {
        return;
    };
    let Some(en) = file.find_enum("SearchError") else {
        out.push(violation(
            "L7",
            file,
            0,
            "enum SearchError not found in cancel.rs — renamed? update contracts.rs".into(),
        ));
        return;
    };
    for (variant, line) in &en.variants {
        let token = format!("SearchError::{variant}");
        let in_display = file.find_fn("fmt").is_some_and(|span| {
            (span.start..=span.end).any(|i| find_token(&file.lines[i].code, &token).is_some())
        });
        if !in_display {
            out.push(violation(
                "L7",
                file,
                *line,
                format!(
                    "SearchError::{variant} has no Display rendering: no `{token}` \
                     arm inside `fn fmt`"
                ),
            ));
        }
        let mapped = files.iter().any(|f| {
            f.rel.starts_with("crates/server/src/")
                && f.lines
                    .iter()
                    .enumerate()
                    .any(|(i, l)| !f.in_test[i] && find_token(&l.code, &token).is_some())
        });
        if !mapped {
            out.push(violation(
                "L7",
                file,
                *line,
                format!(
                    "SearchError::{variant} is never mapped by the server: no \
                     `{token}` match in crates/server/src — a new error variant \
                     must be translated onto the ERR taxonomy (and counted)"
                ),
            ));
        }
    }
}

/// The first string literal syntactically inside the `Response::Err(…)`
/// call starting on line `idx`, scanning at most 3 continuation lines.
fn err_literal(file: &FileIndex, idx: usize) -> Option<String> {
    let code = &file.lines[idx].code;
    let at = code.find("Response::Err(")? + "Response::Err(".len();
    let mut depth = 1i32;
    for (li, skip) in (idx..(idx + 4).min(file.lines.len())).map(|li| (li, li == idx)) {
        let l = &file.lines[li];
        let start = if skip { at } else { 0 };
        // Literal contents are blanked in `code`, so every '"' is a
        // delimiter; the k-th pair on the line is strings[k].
        let quotes_before = l.code[..start].matches('"').count();
        let mut quotes = quotes_before;
        for c in l.code[start..].chars() {
            match c {
                '"' => {
                    if quotes.is_multiple_of(2) {
                        return l.strings.get(quotes / 2).cloned();
                    }
                    quotes += 1;
                }
                '(' | '[' | '{' => depth += 1,
                ')' | ']' | '}' => {
                    depth -= 1;
                    if depth == 0 {
                        return None; // the argument was a variable
                    }
                }
                _ => {}
            }
        }
    }
    None
}

fn l7_err_words(files: &[&FileIndex], stats_keys: &BTreeSet<String>, out: &mut Vec<Violation>) {
    let server_files: Vec<&FileIndex> = files
        .iter()
        .copied()
        .filter(|f| f.rel.starts_with("crates/server/src/"))
        .collect();
    if server_files.is_empty() {
        return;
    }
    let words: Vec<&str> = ERR_TAXONOMY.iter().map(|(w, _)| *w).collect();

    // Direction 1: every literal handed to Response::Err starts with a
    // declared taxonomy word.
    for &f in &server_files {
        if crate::rules::is_test_path(&f.rel) {
            continue;
        }
        for idx in 0..f.lines.len() {
            if f.in_test[idx] {
                continue;
            }
            let Some(lit) = err_literal(f, idx) else {
                continue;
            };
            let word = lit
                .split(|c: char| c == ':' || c.is_whitespace())
                .next()
                .unwrap_or("");
            if !words.contains(&word) {
                out.push(violation(
                    "L7",
                    f,
                    idx,
                    format!(
                        "ERR reason `{lit}` starts with undeclared taxonomy word \
                         `{word}` — the wire contract admits only {words:?}; extend \
                         the taxonomy (docs + counter) or reuse an existing class"
                    ),
                ));
            }
        }
    }

    // Direction 2: every declared word is actually rendered somewhere, is
    // documented in the protocol module, and its counter is emitted.
    let taxonomy_doc = find_file(files, TAXONOMY_DOC_FILE);
    for (word, counter) in ERR_TAXONOMY {
        let rendered = server_files.iter().any(|f| {
            !crate::rules::is_test_path(&f.rel)
                && f.lines.iter().enumerate().any(|(i, l)| {
                    !f.in_test[i]
                        && l.strings.iter().any(|s| {
                            s == word
                                || s.starts_with(&format!("{word}:"))
                                || s.starts_with(&format!("{word} "))
                        })
                })
        });
        if !rendered {
            let f = server_files[0];
            out.push(violation(
                "L7",
                f,
                0,
                format!(
                    "taxonomy word `{word}` is declared but never rendered: no \
                     server-side string literal starts with it — dead error class?"
                ),
            ));
        }
        if let Some(doc) = taxonomy_doc {
            let in_comments = doc.lines.iter().any(|l| l.comment.contains(word));
            if !in_comments {
                out.push(violation(
                    "L7",
                    doc,
                    0,
                    format!(
                        "taxonomy word `{word}` is not documented in the protocol \
                         module's comments — the ERR taxonomy table must list it"
                    ),
                ));
            }
        }
        if let Some(counter) = counter {
            if !stats_keys.is_empty() && !stats_keys.contains(*counter) {
                let f = server_files[0];
                out.push(violation(
                    "L7",
                    f,
                    0,
                    format!(
                        "taxonomy word `{word}` maps to counter `{counter}`, which \
                         is not an emitted STATS key — errors of this class would \
                         be invisible to operators"
                    ),
                ));
            }
        }
    }
}

/// One lock-taking function, flattened for the L8 graph walk.
struct LockFn {
    crate_key: String,
    file_idx: usize,
    name: String,
    start: usize,
    end: usize,
    /// (lock name, line, col, live-until line) — acquisitions with a
    /// surviving guard are live to `live_end`; temporaries only on their
    /// own line (col-ordered).
    acqs: Vec<(String, usize, usize, usize)>,
    /// (callee fn name, line, col)
    calls: Vec<(String, usize, usize)>,
}

fn crate_key(rel: &str) -> String {
    let mut parts = rel.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(c)) => format!("crates/{c}"),
        _ => "root".to_string(),
    }
}

/// L8: build the acquisition graph and fail on cycles or declared-order
/// contradictions.
fn l8_lock_order(files: &[&FileIndex], out: &mut Vec<Violation>) {
    // Lock bindings are file-local: binding name → diagnostic lock name.
    let mut lock_fns: Vec<LockFn> = Vec::new();
    let mut fn_names: HashMap<String, HashMap<String, Vec<usize>>> = HashMap::new();
    for (file_idx, f) in files.iter().enumerate() {
        if crate::rules::is_test_path(&f.rel) {
            continue;
        }
        let bindings: HashMap<&str, &str> = f
            .locks
            .iter()
            .map(|l| (l.binding.as_str(), l.lock_name.as_str()))
            .collect();
        let ck = crate_key(&f.rel);
        for span in &f.fns {
            if f.in_test[span.start] {
                continue;
            }
            let acqs = span_acquisitions(f, span.start, span.end, &bindings);
            let id = lock_fns.len();
            lock_fns.push(LockFn {
                crate_key: ck.clone(),
                file_idx,
                name: span.name.clone(),
                start: span.start,
                end: span.end,
                acqs,
                calls: Vec::new(),
            });
            fn_names
                .entry(ck.clone())
                .or_default()
                .entry(span.name.clone())
                .or_default()
                .push(id);
        }
    }

    // Call sites, resolved intra-crate: bare calls prefer a same-file fn;
    // method calls resolve only when the name is crate-unique and not a
    // std-colliding method name.
    for id in 0..lock_fns.len() {
        let (ck, file_idx, start, end) = {
            let lf = &lock_fns[id];
            (lf.crate_key.clone(), lf.file_idx, lf.start, lf.end)
        };
        let f = files[file_idx];
        let names = &fn_names[&ck];
        let mut calls = Vec::new();
        for line in start..=end.min(f.lines.len() - 1) {
            if f.in_test[line] {
                continue;
            }
            for (callee, col, is_method) in call_sites_on_line(&f.lines[line].code) {
                let Some(candidates) = names.get(&callee) else {
                    continue;
                };
                let target_ok = if is_method {
                    candidates.len() == 1 && !UNRESOLVABLE_METHODS.contains(&callee.as_str())
                } else {
                    candidates.len() == 1
                        || candidates.iter().any(|c| lock_fns[*c].file_idx == file_idx)
                };
                if target_ok {
                    calls.push((callee, line, col));
                }
            }
        }
        lock_fns[id].calls = calls;
    }

    // Transitive lock sets per fn (what a call into it may acquire).
    let mut memo: Vec<Option<BTreeSet<String>>> = vec![None; lock_fns.len()];
    for id in 0..lock_fns.len() {
        trans_locks(id, &lock_fns, &fn_names, &mut memo, &mut Vec::new());
    }

    // Edges: lock A held → lock B acquired, with first provenance.
    let mut edges: BTreeMap<(String, String), (String, usize, String)> = BTreeMap::new();
    for lf in &lock_fns {
        let f = files[lf.file_idx];
        for (held, h_line, h_col, h_end) in &lf.acqs {
            let live_at = |line: usize, col: usize| {
                (line == *h_line && col > *h_col) || (line > *h_line && line <= *h_end)
            };
            for (later, l_line, l_col, _) in &lf.acqs {
                if later != held && live_at(*l_line, *l_col) {
                    edges.entry((held.clone(), later.clone())).or_insert((
                        f.rel.clone(),
                        *l_line,
                        format!("`{later}` acquired in `{}` while `{held}` is held", lf.name),
                    ));
                }
            }
            for (callee, c_line, c_col) in &lf.calls {
                if !live_at(*c_line, *c_col) {
                    continue;
                }
                let Some(resolved) =
                    resolve_call(&lf.crate_key, callee, lf.file_idx, &lock_fns, &fn_names)
                else {
                    continue;
                };
                if let Some(set) = &memo[resolved] {
                    for t in set {
                        if t != held {
                            edges.entry((held.clone(), t.clone())).or_insert((
                                f.rel.clone(),
                                *c_line,
                                format!(
                                    "call `{callee}(…)` in `{}` acquires `{t}` while \
                                     `{held}` is held",
                                    lf.name
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }

    // Declared-order contradictions.
    for (first, second) in DECLARED_LOCK_ORDER {
        if let Some((path, line, detail)) = edges.get(&(second.to_string(), first.to_string())) {
            let file = files.iter().find(|f| f.rel == *path).expect("edge file");
            out.push(violation(
                "L8",
                file,
                *line,
                format!(
                    "lock order contradicts DESIGN's declared `{first}` → `{second}`: \
                     {detail}"
                ),
            ));
        }
    }

    // Cycles.
    for cycle in find_cycles(&edges) {
        let (path, line, detail) = &edges[&(cycle[0].clone(), cycle[1].clone())];
        let file = files.iter().find(|f| f.rel == *path).expect("edge file");
        out.push(violation(
            "L8",
            file,
            *line,
            format!(
                "lock-order cycle {} — two threads interleaving these \
                 acquisitions deadlock; first edge: {detail}",
                cycle.join(" → ")
            ),
        ));
    }
}

/// Acquisitions inside a fn span, with guard liveness resolved: a named
/// guard lives until `drop(guard)` or the span end; a temporary lives only
/// on its own line.
fn span_acquisitions(
    f: &FileIndex,
    start: usize,
    end: usize,
    bindings: &HashMap<&str, &str>,
) -> Vec<(String, usize, usize, usize)> {
    let mut out = Vec::new();
    for a in &f.acquisitions {
        if a.line < start || a.line > end || f.in_test[a.line] {
            continue;
        }
        let Some(lock) = bindings.get(a.binding.as_str()) else {
            continue; // an unnamed lock, or not a lock at all
        };
        let live_end = match &a.guard {
            None => a.line,
            Some(g) => drop_line(f, a, g, end),
        };
        out.push((lock.to_string(), a.line, a.col, live_end));
    }
    out
}

/// The line a guard is dropped on, or the span end if it lives to scope
/// exit. Explicit `drop(g)` only — early scope ends inside the fn are not
/// modeled (over-approximation, documented in DESIGN §15).
fn drop_line(f: &FileIndex, a: &Acquisition, guard: &str, span_end: usize) -> usize {
    let needle = format!("drop({guard})");
    ((a.line + 1)..=span_end.min(f.lines.len() - 1))
        .find(|&i| {
            let squashed: String = f.lines[i]
                .code
                .chars()
                .filter(|c| !c.is_whitespace())
                .collect();
            squashed.contains(&needle)
        })
        .unwrap_or(span_end)
}

/// `(callee, col, is_method)` for each `ident(` on the line. Skips control
/// keywords and macro invocations (`ident!(`).
fn call_sites_on_line(code: &str) -> Vec<(String, usize, bool)> {
    const KEYWORDS: &[&str] = &[
        "if", "while", "match", "for", "loop", "return", "fn", "let", "in", "as", "move", "else",
    ];
    let chars: Vec<char> = code.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if !(chars[i].is_alphabetic() || chars[i] == '_') {
            i += 1;
            continue;
        }
        let start = i;
        while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
            i += 1;
        }
        let ident: String = chars[start..i].iter().collect();
        if chars.get(i) != Some(&'(') || KEYWORDS.contains(&ident.as_str()) {
            continue;
        }
        let is_method = start > 0 && chars[start - 1] == '.';
        // `Path::ident(` associated calls count as bare (same-crate item).
        out.push((ident, start, is_method));
    }
    out
}

fn resolve_call(
    ck: &str,
    callee: &str,
    caller_file: usize,
    lock_fns: &[LockFn],
    fn_names: &HashMap<String, HashMap<String, Vec<usize>>>,
) -> Option<usize> {
    let candidates = fn_names.get(ck)?.get(callee)?;
    candidates
        .iter()
        .find(|c| lock_fns[**c].file_idx == caller_file)
        .or_else(|| candidates.first())
        .copied()
}

/// All lock names a call into `id` may end up acquiring (direct plus
/// transitive through resolved calls). Cycle-safe.
fn trans_locks(
    id: usize,
    lock_fns: &[LockFn],
    fn_names: &HashMap<String, HashMap<String, Vec<usize>>>,
    memo: &mut Vec<Option<BTreeSet<String>>>,
    visiting: &mut Vec<usize>,
) -> BTreeSet<String> {
    if let Some(set) = &memo[id] {
        return set.clone();
    }
    if visiting.contains(&id) {
        return BTreeSet::new(); // recursion: the fixpoint is fine for reporting
    }
    visiting.push(id);
    let mut set: BTreeSet<String> = lock_fns[id].acqs.iter().map(|(l, ..)| l.clone()).collect();
    let calls = lock_fns[id].calls.clone();
    for (callee, ..) in &calls {
        if let Some(resolved) = resolve_call(
            &lock_fns[id].crate_key,
            callee,
            lock_fns[id].file_idx,
            lock_fns,
            fn_names,
        ) {
            set.extend(trans_locks(resolved, lock_fns, fn_names, memo, visiting));
        }
    }
    visiting.pop();
    memo[id] = Some(set.clone());
    set
}

/// Cycles in the edge graph, each reported once as a node path
/// `[a, b, …, a]`.
fn find_cycles(edges: &BTreeMap<(String, String), (String, usize, String)>) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a.as_str()).or_default().push(b.as_str());
    }
    let nodes: Vec<&str> = adj.keys().copied().collect();
    let mut cycles = Vec::new();
    for start in nodes {
        // DFS from `start`; a path closing back to `start` is a cycle.
        // Each cycle is reported once: from its smallest node.
        let mut stack = vec![(start, 0usize)];
        let mut path = vec![start];
        let mut seen: BTreeSet<&str> = std::iter::once(start).collect();
        while let Some(&(node, next)) = stack.last() {
            let nbrs: &[&str] = adj.get(node).map(Vec::as_slice).unwrap_or(&[]);
            if next >= nbrs.len() {
                stack.pop();
                path.pop();
                continue;
            }
            stack.last_mut().expect("nonempty").1 += 1;
            let nb = nbrs[next];
            if nb == start {
                if path.iter().all(|n| *n >= start) {
                    let mut cycle: Vec<String> = path.iter().map(|s| s.to_string()).collect();
                    cycle.push(start.to_string());
                    cycles.push(cycle);
                }
                continue;
            }
            if seen.insert(nb) {
                stack.push((nb, 0));
                path.push(nb);
            }
        }
    }
    cycles
}
