//! Item extraction on top of the line lexer — the "parser" the contract
//! rules (L6–L9) run on. Deliberately shallow: spans are found by keyword
//! token + brace matching over the comment-stripped, literal-blanked code,
//! which is exactly as much structure as the rules need. What this layer
//! can and cannot see is documented in DESIGN.md §15; the rules are written
//! so that blind spots fail loud (a renamed fn makes the contract check
//! report the *absence*, not silently pass).

use crate::lexer::{lex, test_regions, SourceLine};

/// A `fn` item: name plus 0-based inclusive line span of signature + body.
#[derive(Debug, Clone)]
pub struct FnSpan {
    pub name: String,
    pub start: usize,
    pub end: usize,
}

/// An `enum` item with its variant names and their 0-based lines.
#[derive(Debug, Clone)]
pub struct EnumSpan {
    pub name: String,
    pub start: usize,
    pub end: usize,
    pub variants: Vec<(String, usize)>,
}

/// A `const` item: name plus the line span through its terminating `;`
/// (so a const array's element literals all fall inside the span).
#[derive(Debug, Clone)]
pub struct ConstSpan {
    pub name: String,
    pub start: usize,
    pub end: usize,
}

/// A `Mutex::named(…)` / `RwLock::named(…)` construction site: the binding
/// (struct field or `let` name) the lock is stored under, and the
/// diagnostic name passed to `named`.
#[derive(Debug, Clone)]
pub struct LockCtor {
    pub binding: String,
    pub lock_name: String,
    pub line: usize,
}

/// A lock acquisition: `<binding>.lock()` / `.read()` / `.write()`.
/// `guard` is the `let` binding holding the guard when the statement is
/// exactly `let g = <recv>.lock();` — i.e. the guard outlives the line.
/// Acquisitions inside larger expressions are treated as line-scoped
/// temporaries.
#[derive(Debug, Clone)]
pub struct Acquisition {
    pub binding: String,
    pub guard: Option<String>,
    pub line: usize,
    /// Column (char offset into the line's code) of the acquisition token,
    /// for ordering acquisitions and calls on the same line.
    pub col: usize,
}

/// Everything the contract rules need to know about one file.
#[derive(Debug)]
pub struct FileIndex {
    /// Workspace-relative path, forward slashes.
    pub rel: String,
    pub lines: Vec<SourceLine>,
    /// Per-line: inside a `#[cfg(test)]` / `#[test]` region.
    pub in_test: Vec<bool>,
    pub fns: Vec<FnSpan>,
    pub enums: Vec<EnumSpan>,
    pub consts: Vec<ConstSpan>,
    pub locks: Vec<LockCtor>,
    pub acquisitions: Vec<Acquisition>,
}

impl FileIndex {
    /// Lex and extract `source`. Total: any input produces an index.
    pub fn build(rel: &str, source: &str) -> FileIndex {
        let lines = lex(source);
        let in_test = test_regions(&lines);
        let map = CodeMap::build(&lines);
        let fns = find_fns(&map);
        let enums = find_enums(&map);
        let consts = find_consts(&map);
        let (locks, acquisitions) = find_locks(&lines);
        FileIndex {
            rel: rel.to_string(),
            lines,
            in_test,
            fns,
            enums,
            consts,
            locks,
            acquisitions,
        }
    }

    /// All string literals on non-test lines within `[start, end]`, with
    /// their 0-based lines.
    pub fn strings_in_span(&self, start: usize, end: usize) -> Vec<(&str, usize)> {
        let mut out = Vec::new();
        for idx in start..=end.min(self.lines.len().saturating_sub(1)) {
            if self.in_test[idx] {
                continue;
            }
            for s in &self.lines[idx].strings {
                out.push((s.as_str(), idx));
            }
        }
        out
    }

    /// The first non-test `fn` with this name, if any.
    pub fn find_fn(&self, name: &str) -> Option<&FnSpan> {
        self.fns
            .iter()
            .find(|f| f.name == name && !self.in_test[f.start])
    }

    /// The first non-test `const` with this name, if any.
    pub fn find_const(&self, name: &str) -> Option<&ConstSpan> {
        self.consts
            .iter()
            .find(|c| c.name == name && !self.in_test[c.start])
    }

    /// The first non-test `enum` with this name, if any.
    pub fn find_enum(&self, name: &str) -> Option<&EnumSpan> {
        self.enums
            .iter()
            .find(|e| e.name == name && !self.in_test[e.start])
    }
}

/// Concatenated per-line `code` with char→line bookkeeping, the same
/// representation `lexer::test_regions` matches braces over.
struct CodeMap {
    chars: Vec<char>,
    line_of: Vec<usize>,
}

impl CodeMap {
    fn build(lines: &[SourceLine]) -> CodeMap {
        let mut chars = Vec::new();
        let mut line_of = Vec::new();
        for (idx, l) in lines.iter().enumerate() {
            for c in l.code.chars() {
                chars.push(c);
                line_of.push(idx);
            }
            chars.push('\n');
            line_of.push(idx);
        }
        CodeMap { chars, line_of }
    }

    fn line_at(&self, pos: usize) -> usize {
        self.line_of
            .get(pos)
            .copied()
            .unwrap_or(self.line_of.last().copied().unwrap_or(0))
    }
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Positions where `tok` occurs as a whole word in `chars`.
fn keyword_positions(chars: &[char], tok: &str) -> Vec<usize> {
    let tok: Vec<char> = tok.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i + tok.len() <= chars.len() {
        if chars[i..i + tok.len()] == tok[..] {
            let before_ok = i == 0 || !is_ident(chars[i - 1]);
            let after_ok = chars.get(i + tok.len()).is_none_or(|c| !is_ident(*c));
            if before_ok && after_ok {
                out.push(i);
            }
        }
        i += 1;
    }
    out
}

/// Read the identifier starting at the first ident char at/after `from`,
/// skipping leading whitespace only.
fn ident_after(chars: &[char], from: usize) -> Option<(String, usize)> {
    let mut j = from;
    while chars.get(j).is_some_and(|c| c.is_whitespace()) {
        j += 1;
    }
    let start = j;
    let mut name = String::new();
    while chars.get(j).is_some_and(|c| is_ident(*c)) {
        name.push(chars[j]);
        j += 1;
    }
    (!name.is_empty() && !name.starts_with(|c: char| c.is_ascii_digit())).then_some((name, start))
}

/// From `from`, find the body-opening `{` (before any `;`), then its
/// matching `}`. Returns (open, close) char positions.
fn body_span(chars: &[char], from: usize) -> Option<(usize, usize)> {
    let mut j = from;
    let mut paren = 0i32;
    let open = loop {
        match chars.get(j)? {
            '(' | '[' => paren += 1,
            ')' | ']' => paren -= 1,
            '{' if paren == 0 => break j,
            ';' if paren == 0 => return None,
            _ => {}
        }
        j += 1;
    };
    let mut depth = 0i32;
    let mut k = open;
    loop {
        match chars.get(k) {
            None => return Some((open, k.saturating_sub(1))),
            Some('{') => depth += 1,
            Some('}') => {
                depth -= 1;
                if depth == 0 {
                    return Some((open, k));
                }
            }
            _ => {}
        }
        k += 1;
    }
}

fn find_fns(map: &CodeMap) -> Vec<FnSpan> {
    let mut out = Vec::new();
    for p in keyword_positions(&map.chars, "fn") {
        let Some((name, name_at)) = ident_after(&map.chars, p + 2) else {
            continue; // `fn(` — a fn-pointer type, not an item.
        };
        let Some((_, close)) = body_span(&map.chars, name_at) else {
            continue; // trait method declaration without a body
        };
        out.push(FnSpan {
            name,
            start: map.line_at(p),
            end: map.line_at(close),
        });
    }
    out
}

fn find_enums(map: &CodeMap) -> Vec<EnumSpan> {
    let mut out = Vec::new();
    for p in keyword_positions(&map.chars, "enum") {
        let Some((name, name_at)) = ident_after(&map.chars, p + 4) else {
            continue;
        };
        let Some((open, close)) = body_span(&map.chars, name_at) else {
            continue;
        };
        out.push(EnumSpan {
            variants: enum_variants(map, open, close),
            name,
            start: map.line_at(p),
            end: map.line_at(close),
        });
    }
    out
}

/// Variant names at brace depth 1 inside an enum body. Skips `#[…]`
/// attributes; skips past each variant's payload (`(…)` / `{…}` / `= …`)
/// to the separating comma.
fn enum_variants(map: &CodeMap, open: usize, close: usize) -> Vec<(String, usize)> {
    let chars = &map.chars;
    let mut out = Vec::new();
    let mut j = open + 1;
    while j < close {
        let c = chars[j];
        if c.is_whitespace() || c == ',' {
            j += 1;
            continue;
        }
        if c == '#' {
            // Attribute: skip to its matching `]`.
            let mut depth = 0i32;
            while j < close {
                match chars[j] {
                    '[' => depth += 1,
                    ']' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            j += 1;
            continue;
        }
        let Some((name, at)) = ident_after(chars, j) else {
            break;
        };
        out.push((name.clone(), map.line_at(at)));
        // Skip the payload to the next depth-0 comma (or the close).
        let mut k = at + name.len();
        let mut depth = 0i32;
        while k < close {
            match chars[k] {
                '(' | '{' | '[' => depth += 1,
                ')' | '}' | ']' => depth -= 1,
                ',' if depth == 0 => break,
                _ => {}
            }
            k += 1;
        }
        j = k + 1;
    }
    out
}

fn find_consts(map: &CodeMap) -> Vec<ConstSpan> {
    let mut out = Vec::new();
    for p in keyword_positions(&map.chars, "const") {
        let Some((name, name_at)) = ident_after(&map.chars, p + 5) else {
            continue;
        };
        // Span through the terminating `;` at bracket depth 0.
        let mut depth = 0i32;
        let mut k = name_at;
        let end = loop {
            match map.chars.get(k) {
                None => break k.saturating_sub(1),
                Some('(') | Some('[') | Some('{') => depth += 1,
                Some(')') | Some(']') | Some('}') => depth -= 1,
                Some(';') if depth == 0 => break k,
                _ => {}
            }
            k += 1;
        };
        out.push(ConstSpan {
            name,
            start: map.line_at(p),
            end: map.line_at(end),
        });
    }
    out
}

/// Named-lock constructions and `.lock()`/`.read()`/`.write()` acquisitions,
/// line by line.
fn find_locks(lines: &[SourceLine]) -> (Vec<LockCtor>, Vec<Acquisition>) {
    let mut ctors = Vec::new();
    let mut acqs = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        for ctor_tok in ["Mutex::named(", "RwLock::named("] {
            let Some(pos) = line.code.find(ctor_tok) else {
                continue;
            };
            let Some(binding) = binding_before(&line.code[..pos]) else {
                continue;
            };
            // The diagnostic name is the first string literal at or shortly
            // after the ctor (multi-line ctors put it on the next line).
            let lock_name = lines[idx..(idx + 4).min(lines.len())]
                .iter()
                .flat_map(|l| l.strings.iter())
                .next()
                .cloned();
            if let Some(lock_name) = lock_name {
                ctors.push(LockCtor {
                    binding,
                    lock_name,
                    line: idx,
                });
            }
        }
        for acq_tok in [".lock()", ".read()", ".write()"] {
            let mut from = 0;
            while let Some(p) = line.code[from..].find(acq_tok) {
                let col = from + p;
                from = col + acq_tok.len();
                let Some(binding) = trailing_ident(&line.code[..col]) else {
                    continue;
                };
                acqs.push(Acquisition {
                    guard: guard_binding(&line.code, col + acq_tok.len()),
                    binding,
                    line: idx,
                    col,
                });
            }
        }
    }
    (ctors, acqs)
}

/// The binding a lock ctor is stored under: the trailing identifier of the
/// code before it, after stripping a `:` (struct field / struct literal) or
/// `=` (let binding).
fn binding_before(prefix: &str) -> Option<String> {
    let p = prefix.trim_end();
    let p = p
        .strip_suffix(':')
        .or_else(|| p.strip_suffix('='))
        .unwrap_or(p);
    trailing_ident(p)
}

/// The maximal identifier ending `s` (ignoring trailing whitespace).
fn trailing_ident(s: &str) -> Option<String> {
    let s = s.trim_end();
    let tail: String = s
        .chars()
        .rev()
        .take_while(|c| is_ident(*c))
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    (!tail.is_empty() && !tail.starts_with(|c: char| c.is_ascii_digit())).then_some(tail)
}

/// If the statement is exactly `let g = <recv>.lock();` — the acquisition
/// ends the line (modulo `;` and whitespace) and the line starts with
/// `let` — the guard `g` outlives the statement. Anything else (a method
/// chained onto the guard, an acquisition inside a larger expression) is a
/// line-scoped temporary.
fn guard_binding(code: &str, after: usize) -> Option<String> {
    if !code[after..].trim_end().trim_end_matches(';').is_empty() {
        return None;
    }
    let t = code.trim_start();
    let rest = t.strip_prefix("let ")?;
    let rest = rest.trim_start().strip_prefix("mut ").unwrap_or(rest);
    let name: String = rest
        .trim_start()
        .chars()
        .take_while(|c| is_ident(*c))
        .collect();
    (!name.is_empty()).then_some(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_spans_cover_signature_and_body() {
        let src =
            "fn one() {\n  body();\n}\n\nimpl X {\n  pub fn two(&self) -> u32 {\n    3\n  }\n}\n";
        let idx = FileIndex::build("x.rs", src);
        let names: Vec<_> = idx.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["one", "two"]);
        assert_eq!((idx.fns[0].start, idx.fns[0].end), (0, 2));
        assert_eq!((idx.fns[1].start, idx.fns[1].end), (5, 7));
    }

    #[test]
    fn fn_pointer_types_and_trait_decls_are_not_items() {
        let src = "type F = fn(u32) -> u32;\ntrait T { fn decl(&self); }\n";
        let idx = FileIndex::build("x.rs", src);
        assert!(idx.fns.is_empty(), "{:?}", idx.fns);
    }

    #[test]
    fn enum_variants_with_payloads_and_attributes() {
        let src = "#[derive(Debug)]\npub enum E {\n  #[default]\n  Plain,\n  Tuple(u32, String),\n  Struct {\n    field: usize,\n  },\n}\n";
        let idx = FileIndex::build("x.rs", src);
        assert_eq!(idx.enums.len(), 1);
        let v: Vec<_> = idx.enums[0]
            .variants
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert_eq!(v, vec!["Plain", "Tuple", "Struct"]);
    }

    #[test]
    fn const_spans_reach_the_terminating_semicolon() {
        let src = "const KEYS: &[&str] = &[\n  \"alpha\",\n  \"beta\",\n];\nfn f() {}\n";
        let idx = FileIndex::build("x.rs", src);
        let c = idx.find_const("KEYS").expect("found");
        assert_eq!((c.start, c.end), (0, 3));
        let strings: Vec<_> = idx
            .strings_in_span(c.start, c.end)
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        assert_eq!(strings, vec!["alpha", "beta"]);
    }

    #[test]
    fn lock_ctors_capture_binding_and_name_across_lines() {
        let src = "Self {\n  engine: RwLock::named(\n    \"server.state.engine\",\n    initial,\n  ),\n  staged: Mutex::named(\"server.state.staged\", None),\n}\n";
        let idx = FileIndex::build("x.rs", src);
        assert_eq!(idx.locks.len(), 2);
        assert_eq!(idx.locks[0].binding, "engine");
        assert_eq!(idx.locks[0].lock_name, "server.state.engine");
        assert_eq!(idx.locks[1].binding, "staged");
        assert_eq!(idx.locks[1].lock_name, "server.state.staged");
    }

    #[test]
    fn acquisitions_distinguish_guards_from_temporaries() {
        let src = "fn f(&self) {\n  let mut slot = self.engine.write();\n  let taken = self.staged.lock().take();\n  self.inner.lock().hot.record(k);\n}\n";
        let idx = FileIndex::build("x.rs", src);
        assert_eq!(idx.acquisitions.len(), 3);
        assert_eq!(idx.acquisitions[0].binding, "engine");
        assert_eq!(idx.acquisitions[0].guard.as_deref(), Some("slot"));
        assert_eq!(idx.acquisitions[1].binding, "staged");
        assert_eq!(
            idx.acquisitions[1].guard, None,
            "chained .take() is a temporary"
        );
        assert_eq!(idx.acquisitions[2].binding, "inner");
        assert_eq!(idx.acquisitions[2].guard, None);
    }

    #[test]
    fn test_region_fns_are_excluded_from_find_fn() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn live() {}\n}\n";
        let idx = FileIndex::build("x.rs", src);
        let f = idx.find_fn("live").expect("found");
        assert_eq!(f.start, 0);
    }
}
