//! Counting global allocator for space-cost experiments (Figures 13–14).
//!
//! The `repro` binary installs [`CountingAllocator`] as its global allocator;
//! an experiment then brackets the code under measurement with
//! [`reset_peak`] / [`peak_bytes`] to obtain the real transient heap high-
//! water mark, rather than an estimate. Counting is a pair of relaxed
//! atomics — negligible overhead next to the allocations themselves.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// A `System`-backed allocator that tracks live and peak heap bytes.
pub struct CountingAllocator;

// SAFETY: delegates allocation to `System` verbatim; only bookkeeping added.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            track_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
            track_alloc(new_size);
        }
        p
    }
}

fn track_alloc(size: usize) {
    let now = CURRENT.fetch_add(size, Ordering::Relaxed) + size;
    // Racy max-update is fine for measurement purposes: a lost update can
    // only under-report by one allocation's worth in a pathological race.
    let mut peak = PEAK.load(Ordering::Relaxed);
    while now > peak {
        match PEAK.compare_exchange_weak(peak, now, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(p) => peak = p,
        }
    }
}

/// Live heap bytes right now (as seen by the counting allocator).
pub fn current_bytes() -> usize {
    CURRENT.load(Ordering::Relaxed)
}

/// Peak heap bytes since the last [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Reset the peak to the current live size, starting a new measurement
/// bracket. Returns the live size at the reset point.
pub fn reset_peak() -> usize {
    let now = CURRENT.load(Ordering::Relaxed);
    PEAK.store(now, Ordering::Relaxed);
    now
}

/// Measure the peak *additional* heap used while running `f`: the high-water
/// mark relative to the live size when the bracket opened.
pub fn measure_peak_delta<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let base = reset_peak();
    let out = f();
    let peak = peak_bytes();
    (out, peak.saturating_sub(base))
}

#[cfg(test)]
mod tests {
    use super::*;

    // NOTE: the allocator is only *installed* in the repro binary; these
    // tests exercise the bookkeeping functions directly.
    #[test]
    fn tracking_math() {
        let before = current_bytes();
        track_alloc(1000);
        assert_eq!(current_bytes(), before + 1000);
        assert!(peak_bytes() >= before + 1000);
        CURRENT.fetch_sub(1000, Ordering::Relaxed);
    }

    #[test]
    fn reset_and_delta() {
        let base = reset_peak();
        assert_eq!(peak_bytes(), base);
        track_alloc(512);
        assert!(peak_bytes() >= base + 512);
        CURRENT.fetch_sub(512, Ordering::Relaxed);
        let (val, delta) = measure_peak_delta(|| {
            track_alloc(2048);
            CURRENT.fetch_sub(2048, Ordering::Relaxed);
            7
        });
        assert_eq!(val, 7);
        assert!(delta >= 2048, "delta = {delta}");
    }
}
