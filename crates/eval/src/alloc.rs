//! Counting global allocator for space-cost experiments (Figures 13–14).
//!
//! The `repro` binary installs [`CountingAllocator`] as its global allocator;
//! an experiment then brackets the code under measurement with
//! [`reset_peak`] / [`peak_bytes`] to obtain the real transient heap high-
//! water mark, rather than an estimate. Counting is a pair of relaxed
//! atomics — negligible overhead next to the allocations themselves.
//!
//! Accounting is *saturating*: a dealloc that is not matched by a tracked
//! alloc (memory handed out before the allocator was installed, or a
//! mismatched test-side adjustment) clamps the live counter at zero instead
//! of wrapping `usize` — a wrapped counter would poison every subsequent
//! peak measurement with a ~2^64 baseline.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);
static CALLS: AtomicUsize = AtomicUsize::new(0);

/// A `System`-backed allocator that tracks live and peak heap bytes.
pub struct CountingAllocator;

// SAFETY: delegates allocation to `System` verbatim; only bookkeeping added.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // SAFETY: caller upholds `GlobalAlloc::alloc`'s contract (non-zero
        // layout); we forward it unchanged to the system allocator.
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            track_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: caller guarantees `ptr` was allocated by this allocator
        // with this `layout`; we forward both unchanged.
        unsafe { System.dealloc(ptr, layout) };
        track_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // SAFETY: caller guarantees `ptr`/`layout` describe a live block
        // from this allocator and `new_size` is non-zero; forwarded as-is.
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            track_dealloc(layout.size());
            track_alloc(new_size);
        }
        p
    }
}

fn track_alloc(size: usize) {
    CALLS.fetch_add(1, Ordering::Relaxed);
    let now = CURRENT.fetch_add(size, Ordering::Relaxed) + size;
    // Racy max-update is fine for measurement purposes: a lost update can
    // only under-report by one allocation's worth in a pathological race.
    let mut peak = PEAK.load(Ordering::Relaxed);
    while now > peak {
        match PEAK.compare_exchange_weak(peak, now, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(p) => peak = p,
        }
    }
}

/// Saturating decrement of the live counter. A plain `fetch_sub` would wrap
/// on the first dealloc of a block that predates installation (the libc
/// startup allocations), pinning `CURRENT` near `usize::MAX` forever.
fn track_dealloc(size: usize) {
    let mut cur = CURRENT.load(Ordering::Relaxed);
    loop {
        let next = cur.saturating_sub(size);
        match CURRENT.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(c) => cur = c,
        }
    }
}

/// Live heap bytes right now (as seen by the counting allocator).
pub fn current_bytes() -> usize {
    CURRENT.load(Ordering::Relaxed)
}

/// Total allocation calls (alloc + grow-side of realloc) since process
/// start. Allocation-freedom tests bracket a code region and assert the
/// delta is zero — a byte-based measure can miss alloc/free churn that
/// nets out to nothing but still costs allocator round-trips.
pub fn alloc_calls() -> usize {
    CALLS.load(Ordering::Relaxed)
}

/// Peak heap bytes since the last [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Reset the peak to the current live size, starting a new measurement
/// bracket. Returns the live size at the reset point.
pub fn reset_peak() -> usize {
    let now = CURRENT.load(Ordering::Relaxed);
    PEAK.store(now, Ordering::Relaxed);
    now
}

/// Measure the peak *additional* heap used while running `f`: the high-water
/// mark relative to the live size when the bracket opened.
pub fn measure_peak_delta<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let base = reset_peak();
    let out = f();
    let peak = peak_bytes();
    (out, peak.saturating_sub(base))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard, PoisonError};

    // NOTE: the allocator is only *installed* in the repro binary; these
    // tests exercise the bookkeeping functions directly. They share the
    // global counters, so they serialize on one lock.
    fn serial() -> MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn tracking_math() {
        let _g = serial();
        let before = current_bytes();
        track_alloc(1000);
        assert_eq!(current_bytes(), before + 1000);
        assert!(peak_bytes() >= before + 1000);
        track_dealloc(1000);
        assert_eq!(current_bytes(), before);
    }

    #[test]
    fn reset_and_delta() {
        let _g = serial();
        let base = reset_peak();
        assert_eq!(peak_bytes(), base);
        track_alloc(512);
        assert!(peak_bytes() >= base + 512);
        track_dealloc(512);
        let (val, delta) = measure_peak_delta(|| {
            track_alloc(2048);
            track_dealloc(2048);
            7
        });
        assert_eq!(val, 7);
        assert!(delta >= 2048, "delta = {delta}");
    }

    /// Regression: an unmatched dealloc (more bytes freed than were ever
    /// tracked) must clamp at zero, not wrap to ~usize::MAX. Before the
    /// saturating fix this left `CURRENT` pinned astronomically high and
    /// every later peak-delta measurement meaningless.
    #[test]
    fn unmatched_dealloc_saturates_instead_of_wrapping() {
        let _g = serial();
        let live = current_bytes();
        track_dealloc(live + 10_000);
        assert_eq!(current_bytes(), 0, "saturated, not wrapped");
        // Accounting still works after the clamp.
        track_alloc(64);
        assert_eq!(current_bytes(), 64);
        track_dealloc(64);
        assert_eq!(current_bytes(), 0);
        // Leave the counters in a sane state for the other tests.
        track_alloc(live);
        assert_eq!(current_bytes(), live);
    }
}
