//! Repeated-run wall-clock measurement.

use std::time::{Duration, Instant};

/// Aggregate of repeated timed runs.
#[derive(Clone, Copy, Debug)]
pub struct Measurement {
    /// Number of runs measured.
    pub runs: usize,
    /// Total elapsed time.
    pub total: Duration,
    /// Mean per-run time.
    pub mean: Duration,
    /// Fastest run.
    pub min: Duration,
    /// Slowest run.
    pub max: Duration,
}

impl Measurement {
    /// Mean time in milliseconds (the unit the paper's figures report).
    pub fn mean_ms(&self) -> f64 {
        self.mean.as_secs_f64() * 1e3
    }

    /// Mean time in microseconds.
    pub fn mean_us(&self) -> f64 {
        self.mean.as_secs_f64() * 1e6
    }
}

/// Run `f` `runs` times and aggregate the wall-clock timings. The closure's
/// return value is passed through `std::hint::black_box` so the work cannot
/// be optimized away.
pub fn measure<T>(runs: usize, mut f: impl FnMut() -> T) -> Measurement {
    assert!(runs >= 1, "need at least one run");
    let mut total = Duration::ZERO;
    let mut min = Duration::MAX;
    let mut max = Duration::ZERO;
    for _ in 0..runs {
        let start = Instant::now();
        std::hint::black_box(f());
        let dt = start.elapsed();
        total += dt;
        min = min.min(dt);
        max = max.max(dt);
    }
    Measurement {
        runs,
        total,
        mean: total / runs as u32,
        min,
        max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_are_consistent() {
        let m = measure(5, || {
            std::thread::sleep(Duration::from_millis(1));
            42
        });
        assert_eq!(m.runs, 5);
        assert!(m.min <= m.mean && m.mean <= m.max);
        assert!(m.total >= Duration::from_millis(5));
        assert!(m.mean_ms() >= 1.0);
        assert!(m.mean_us() >= 1000.0);
    }

    #[test]
    fn single_run() {
        let m = measure(1, || ());
        assert_eq!(m.runs, 1);
        assert_eq!(m.total, m.mean);
        assert_eq!(m.min, m.max);
    }

    #[test]
    #[should_panic]
    fn zero_runs_rejected() {
        let _ = measure(0, || ());
    }
}
