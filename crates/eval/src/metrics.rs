//! Ranking-quality metrics.

use self::sorted::contains_sorted;
use pit_graph::TopicId;

/// Precision@k as the paper uses it (Section 6.4): the fraction of the
/// method's top-k that also appears in the ground truth's top-k, as **sets**
/// (order within the top-k is not graded).
///
/// Both slices are truncated to `k`; an empty ground truth yields 1.0 when
/// the result is empty too, else 0.0.
pub fn precision_at_k(result: &[TopicId], truth: &[TopicId], k: usize) -> f64 {
    let result = &result[..result.len().min(k)];
    let truth = &truth[..truth.len().min(k)];
    if result.is_empty() {
        return if truth.is_empty() { 1.0 } else { 0.0 };
    }
    let mut truth_sorted: Vec<TopicId> = truth.to_vec();
    truth_sorted.sort_unstable();
    let hits = result
        .iter()
        .filter(|&&t| contains_sorted(&truth_sorted, t))
        .count();
    hits as f64 / result.len() as f64
}

/// Jaccard similarity of two top-k sets.
pub fn jaccard(a: &[TopicId], b: &[TopicId]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let mut sa: Vec<TopicId> = a.to_vec();
    sa.sort_unstable();
    sa.dedup();
    let mut sb: Vec<TopicId> = b.to_vec();
    sb.sort_unstable();
    sb.dedup();
    let inter = sa.iter().filter(|&&t| contains_sorted(&sb, t)).count();
    let union = sa.len() + sb.len() - inter;
    inter as f64 / union as f64
}

/// Recall@k: the fraction of the ground truth's top-k that the result's
/// top-k recovers. With both lists truncated to the same `k` this equals
/// precision@k whenever both lists are full-length; they diverge when the
/// result returns fewer than `k` items.
pub fn recall_at_k(result: &[TopicId], truth: &[TopicId], k: usize) -> f64 {
    let result = &result[..result.len().min(k)];
    let truth = &truth[..truth.len().min(k)];
    if truth.is_empty() {
        return 1.0;
    }
    let mut result_sorted: Vec<TopicId> = result.to_vec();
    result_sorted.sort_unstable();
    let hits = truth
        .iter()
        .filter(|&&t| contains_sorted(&result_sorted, t))
        .count();
    hits as f64 / truth.len() as f64
}

/// NDCG@k with binary relevance against the ground truth's top-k *set*:
/// an item of the truth set at result rank `i` (0-based) contributes
/// `1 / log2(i + 2)`, normalized by the ideal DCG. Equals 1.0 exactly when
/// the result packs the truth items into the leading positions (their order
/// among themselves does not matter under binary relevance) and 0.0 when the
/// sets are disjoint.
pub fn ndcg_at_k(result: &[TopicId], truth: &[TopicId], k: usize) -> f64 {
    let result = &result[..result.len().min(k)];
    let truth = &truth[..truth.len().min(k)];
    if truth.is_empty() {
        return if result.is_empty() { 1.0 } else { 0.0 };
    }
    let mut truth_sorted: Vec<TopicId> = truth.to_vec();
    truth_sorted.sort_unstable();
    let dcg: f64 = result
        .iter()
        .enumerate()
        .filter(|(_, &t)| contains_sorted(&truth_sorted, t))
        .map(|(i, _)| 1.0 / ((i + 2) as f64).log2())
        .sum();
    let ideal: f64 = (0..truth.len())
        .map(|i| 1.0 / ((i + 2) as f64).log2())
        .sum();
    dcg / ideal
}

/// Kendall rank-correlation (tau-a) between two rankings restricted to their
/// common items. Returns 1.0 for identical order, −1.0 for reversed, and
/// `None` when fewer than two common items exist.
pub fn kendall_tau(a: &[TopicId], b: &[TopicId]) -> Option<f64> {
    // Positions in b for items present in both.
    let pos_b = |t: TopicId| b.iter().position(|&x| x == t);
    let common: Vec<usize> = a.iter().filter_map(|&t| pos_b(t)).collect();
    let n = common.len();
    if n < 2 {
        return None;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            if common[i] < common[j] {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }
    let pairs = (n * (n - 1) / 2) as f64;
    Some((concordant - discordant) as f64 / pairs)
}

/// Minimal helper namespace so the metric code reads declaratively without
/// pulling a hash crate into this lightweight module.
mod sorted {
    use pit_graph::TopicId;

    /// Binary search membership in a sorted slice.
    pub fn contains_sorted(sorted: &[TopicId], t: TopicId) -> bool {
        sorted.binary_search(&t).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ids: &[u32]) -> Vec<TopicId> {
        ids.iter().map(|&i| TopicId(i)).collect()
    }

    #[test]
    fn precision_basics() {
        assert_eq!(precision_at_k(&t(&[1, 2, 3]), &t(&[1, 2, 3]), 3), 1.0);
        assert_eq!(precision_at_k(&t(&[1, 2, 3]), &t(&[3, 2, 1]), 3), 1.0);
        assert_eq!(precision_at_k(&t(&[1, 2, 4]), &t(&[1, 2, 3]), 3), 2.0 / 3.0);
        assert_eq!(precision_at_k(&t(&[9, 8]), &t(&[1, 2]), 2), 0.0);
    }

    #[test]
    fn precision_truncates_to_k() {
        // Only the first 2 of each list count.
        assert_eq!(precision_at_k(&t(&[1, 2, 99]), &t(&[2, 1, 98]), 2), 1.0);
        assert_eq!(precision_at_k(&t(&[1, 99, 2]), &t(&[1, 2, 99]), 2), 0.5);
    }

    #[test]
    fn precision_empty_cases() {
        assert_eq!(precision_at_k(&[], &[], 5), 1.0);
        assert_eq!(precision_at_k(&[], &t(&[1]), 5), 0.0);
        assert_eq!(precision_at_k(&t(&[1]), &[], 5), 0.0);
    }

    #[test]
    fn jaccard_basics() {
        assert_eq!(jaccard(&t(&[1, 2]), &t(&[2, 1])), 1.0);
        assert_eq!(jaccard(&t(&[1, 2]), &t(&[3, 4])), 0.0);
        assert_eq!(jaccard(&t(&[1, 2, 3]), &t(&[2, 3, 4])), 0.5);
        assert_eq!(jaccard(&[], &[]), 1.0);
    }

    #[test]
    fn kendall_basics() {
        assert_eq!(kendall_tau(&t(&[1, 2, 3]), &t(&[1, 2, 3])), Some(1.0));
        assert_eq!(kendall_tau(&t(&[1, 2, 3]), &t(&[3, 2, 1])), Some(-1.0));
        assert_eq!(kendall_tau(&t(&[1]), &t(&[1])), None);
        assert_eq!(kendall_tau(&t(&[1, 2]), &t(&[3, 4])), None);
        // Partial overlap: common = {1, 3} in both orders.
        assert_eq!(kendall_tau(&t(&[1, 9, 3]), &t(&[1, 3, 8])), Some(1.0));
    }

    #[test]
    fn recall_basics() {
        assert_eq!(recall_at_k(&t(&[1, 2, 3]), &t(&[3, 2, 1]), 3), 1.0);
        assert_eq!(recall_at_k(&t(&[1]), &t(&[1, 2]), 2), 0.5);
        assert_eq!(recall_at_k(&[], &t(&[1, 2]), 2), 0.0);
        assert_eq!(recall_at_k(&t(&[9]), &[], 2), 1.0);
        // Short result vs full truth: recall < precision.
        let r = t(&[1]);
        let tr = t(&[1, 2, 3]);
        assert_eq!(precision_at_k(&r, &tr, 3), 1.0);
        assert_eq!(recall_at_k(&r, &tr, 3), 1.0 / 3.0);
    }

    #[test]
    fn ndcg_basics() {
        // Perfect match = 1.
        assert!((ndcg_at_k(&t(&[1, 2, 3]), &t(&[1, 2, 3]), 3) - 1.0).abs() < 1e-12);
        // Set match in any order is still 1 (binary relevance, full prefix).
        assert!((ndcg_at_k(&t(&[3, 1, 2]), &t(&[1, 2, 3]), 3) - 1.0).abs() < 1e-12);
        // No overlap = 0.
        assert_eq!(ndcg_at_k(&t(&[7, 8]), &t(&[1, 2]), 2), 0.0);
        // A relevant item placed late scores less than placed first.
        let early = ndcg_at_k(&t(&[1, 8, 9]), &t(&[1, 2, 3]), 3);
        let late = ndcg_at_k(&t(&[8, 9, 1]), &t(&[1, 2, 3]), 3);
        assert!(early > late && late > 0.0);
        // Bounded.
        assert!((0.0..=1.0).contains(&early));
    }

    #[test]
    fn metrics_are_bounded() {
        let a = t(&[5, 1, 9, 7]);
        let b = t(&[9, 5, 2, 7]);
        let p = precision_at_k(&a, &b, 4);
        assert!((0.0..=1.0).contains(&p));
        let j = jaccard(&a, &b);
        assert!((0.0..=1.0).contains(&j));
        let k = kendall_tau(&a, &b).unwrap();
        assert!((-1.0..=1.0).contains(&k));
    }
}
