//! Fixed-width text tables for paper-style experiment output.

use std::fmt::Write as _;

/// A simple left-aligned text table.
///
/// ```
/// use pit_eval::Table;
/// let mut t = Table::new(&["method", "k=10", "k=100"]);
/// t.row(&["LRW-A", "20 ms", "21 ms"]);
/// let s = t.render();
/// assert!(s.contains("LRW-A"));
/// assert!(s.lines().count() >= 3);
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; missing cells render empty, extra cells are kept and
    /// widen the table.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Append a row of already-owned strings (convenient with `format!`).
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with a separator line under the headers.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        let consider = |cells: &[String], widths: &mut [usize]| {
            for (i, c) in cells.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        };
        consider(&self.headers, &mut widths);
        for r in &self.rows {
            consider(r, &mut widths);
        }

        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String], widths: &[usize]| {
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let _ = write!(out, "{cell:<w$}");
                if i + 1 < widths.len() {
                    out.push_str("  ");
                }
            }
            // No trailing spaces.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers, &widths);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            write_row(&mut out, r, &widths);
        }
        out
    }
}

/// Format a byte count with a binary-prefix unit.
pub fn human_bytes(bytes: usize) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit + 1 < UNITS.len() {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{v:.1} {}", UNITS[unit])
    }
}

/// Format a millisecond value adaptively (µs under 1 ms, seconds over 10 s).
pub fn human_ms(ms: f64) -> String {
    if ms < 1.0 {
        format!("{:.0} µs", ms * 1000.0)
    } else if ms < 10_000.0 {
        format!("{ms:.1} ms")
    } else {
        format!("{:.1} s", ms / 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row(&["xxxx", "y"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        // Header and row share column offsets.
        assert!(lines[0].starts_with("a"));
        assert!(lines[2].starts_with("xxxx"));
        assert_eq!(
            lines[1].chars().filter(|&c| c == '-').count(),
            lines[1].len()
        );
    }

    #[test]
    fn ragged_rows_are_tolerated() {
        let mut t = Table::new(&["a"]);
        t.row(&["1", "2", "3"]);
        t.row(&[]);
        let s = t.render();
        assert_eq!(s.lines().count(), 4);
        assert!(s.contains('3'));
    }

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.0 KiB");
        assert_eq!(human_bytes(3 * 1024 * 1024), "3.0 MiB");
        assert!(human_bytes(5 * 1024 * 1024 * 1024).contains("GiB"));
    }

    #[test]
    fn human_ms_units() {
        assert_eq!(human_ms(0.25), "250 µs");
        assert_eq!(human_ms(12.34), "12.3 ms");
        assert_eq!(human_ms(25_000.0), "25.0 s");
    }
}
