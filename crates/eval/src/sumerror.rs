//! The Definition-1 summarization objective.
//!
//! `error(t) = Σ_{v ∈ V} |I(t, v) − I*(t, v)|` where `I` propagates the
//! uniform topic-node weights and `I*` propagates the representative weights
//! — both through the same matrix engine, so the comparison isolates the
//! quality of the summarization itself (which nodes were chosen and how the
//! local influence was migrated onto them).

use pit_baselines::BaseMatrix;
use pit_graph::TopicId;
use pit_summarize::RepresentativeSet;

/// Total absolute influence deviation of the summary from the exact topic
/// influence, over all nodes. Lower is better; 0 means the representatives
/// reproduce the topic's influence field exactly.
pub fn summarization_error(
    matrix: &BaseMatrix<'_>,
    topic: TopicId,
    reps: &RepresentativeSet,
) -> f64 {
    let exact = matrix.influence_vector(topic);
    let n = exact.len();
    let mut x0 = vec![0.0f64; n];
    for (node, w) in reps.iter() {
        x0[node.index()] += w;
    }
    let approx = matrix.propagate_vector(x0);
    exact
        .iter()
        .zip(approx.iter())
        .map(|(a, b)| (a - b).abs())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pit_graph::{fixtures, NodeId, TermId};
    use pit_topics::TopicSpaceBuilder;

    fn fig1() -> (pit_graph::CsrGraph, pit_topics::TopicSpace) {
        let g = fixtures::figure1_graph();
        let mut b = TopicSpaceBuilder::new(g.node_count(), 1);
        for nodes in &fixtures::figure1_topics() {
            let t = b.add_topic(vec![TermId(0)]);
            for &n in nodes {
                b.assign(n, t);
            }
        }
        (g, b.build())
    }

    #[test]
    fn perfect_summary_has_zero_error() {
        // Representatives = the topic nodes themselves with uniform weights.
        let (g, space) = fig1();
        let m = BaseMatrix::new(&g, &space);
        let t = TopicId(0);
        let vt = space.topic_nodes(t);
        let reps =
            RepresentativeSet::new(t, vt.iter().map(|&n| (n, 1.0 / vt.len() as f64)).collect());
        let err = summarization_error(&m, t, &reps);
        assert!(err < 1e-12, "error = {err}");
    }

    #[test]
    fn empty_summary_error_equals_total_influence() {
        let (g, space) = fig1();
        let m = BaseMatrix::new(&g, &space);
        let t = TopicId(0);
        let reps = RepresentativeSet::new(t, vec![]);
        let err = summarization_error(&m, t, &reps);
        let total: f64 = m.influence_vector(t).iter().sum();
        assert!((err - total).abs() < 1e-12);
        assert!(err > 0.0);
    }

    #[test]
    fn closer_summary_scores_better() {
        let (g, space) = fig1();
        let m = BaseMatrix::new(&g, &space);
        let t = TopicId(0);
        let vt = space.topic_nodes(t);
        // Summary A: two actual topic nodes at weight 1/|V_t| each.
        let good = RepresentativeSet::new(
            t,
            vt.iter()
                .take(2)
                .map(|&n| (n, 1.0 / vt.len() as f64))
                .collect(),
        );
        // Summary B: one unrelated node carrying everything.
        let bad = RepresentativeSet::new(t, vec![(NodeId(10), 1.0)]);
        let ge = summarization_error(&m, t, &good);
        let be = summarization_error(&m, t, &bad);
        assert!(ge < be, "good {ge} >= bad {be}");
    }
}
