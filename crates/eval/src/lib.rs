//! # pit-eval
//!
//! Shared evaluation machinery for regenerating the paper's Section-6
//! experiments:
//!
//! * [`metrics`] — precision@k against a ground-truth ranking (the paper's
//!   effectiveness measure, Figures 10–12) and rank-correlation extras;
//! * [`timing`] — repeated-run wall-clock measurement with mean/min/max;
//! * [`alloc`] — a counting global allocator for real peak-heap measurements
//!   (Figures 13–14); installed by the `repro` binary;
//! * [`sumerror`] — the Definition-1 summarization objective
//!   `Σ_v |I(t,v) − I*(t,v)|`, measured by propagating the representative
//!   weights through the same matrix engine as the ground truth;
//! * [`table`] — fixed-width text tables for paper-style output.

// The only unsafe in the workspace lives in `alloc`; force every unsafe
// operation inside those `unsafe fn`s into an explicit, SAFETY-commented
// block (pit-lint rule L2 checks the comments).
#![deny(unsafe_op_in_unsafe_fn)]

pub mod alloc;
pub mod metrics;
pub mod sumerror;
pub mod table;
pub mod timing;

pub use metrics::{jaccard, kendall_tau, ndcg_at_k, precision_at_k, recall_at_k};
pub use sumerror::summarization_error;
pub use table::Table;
pub use timing::{measure, Measurement};
