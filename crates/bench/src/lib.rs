//! # pit-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's Section 6, at a configurable scale factor (DESIGN.md §3 maps each
//! figure to its module here). The `repro` binary drives it:
//!
//! ```text
//! repro --figure 5            # one figure
//! repro --figure all          # everything
//! repro --scale 30 --figure 8 # cheaper datasets (divide paper sizes by 30)
//! ```
//!
//! Scaled runs reproduce the *shape* of each result (method ordering, growth
//! trends, crossovers), not the paper's absolute numbers — see
//! EXPERIMENTS.md for the recorded comparison.

#![forbid(unsafe_code)]

pub mod figures;
pub mod harness;

pub use harness::{Env, EnvCache, EnvConfig, Method, MethodSet};
