//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro --figure 5          # one figure
//! repro --figure all        # the full Section-6 suite
//! repro --scale 30          # dataset scale divisor (default 30)
//! repro --terms 5 --users 10 --reps 66 --walk-r 32 --walk-l 5 --theta 0.05
//! ```
//!
//! Installs the counting global allocator so the space figures (13–14)
//! report real peak transient heap.

use pit_bench::figures::ablation::{run_ablation, ALL_ABLATIONS};
use pit_bench::figures::{run_figure, ALL_FIGURES};
use pit_bench::{EnvCache, EnvConfig};

#[global_allocator]
static ALLOC: pit_eval::alloc::CountingAllocator = pit_eval::alloc::CountingAllocator;

fn usage() -> ! {
    eprintln!(
        "usage: repro [--figure N|all] [--scale S] [--terms T] [--users U] \
         [--ablation NAME|all] [--reps R] [--walk-l L] [--walk-r R] [--theta F] [--seed S]\n\
         figures: {ALL_FIGURES:?} (4 = dataset table, 5-9 timing, 10-12 precision, \
         13-14 space, 15-16 construction)"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut figures: Vec<u32> = Vec::new();
    let mut ablations: Vec<String> = Vec::new();
    let mut cfg = EnvConfig::default();
    let mut explicit_reps = false;

    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = |i: usize| -> &str {
            args.get(i + 1)
                .map(String::as_str)
                .unwrap_or_else(|| usage())
        };
        match flag {
            "--figure" | "-f" => {
                let v = value(i);
                if v == "all" {
                    figures.extend_from_slice(&ALL_FIGURES);
                } else {
                    figures.push(v.parse().unwrap_or_else(|_| usage()));
                }
                i += 2;
            }
            "--ablation" | "-a" => {
                let v = value(i);
                if v == "all" {
                    ablations.extend(ALL_ABLATIONS.iter().map(|s| s.to_string()));
                } else {
                    ablations.push(v.to_string());
                }
                i += 2;
            }
            "--scale" => {
                cfg.scale = value(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--terms" => {
                cfg.n_query_terms = value(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--users" => {
                cfg.n_query_users = value(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--reps" => {
                cfg.rep_target = value(i).parse().unwrap_or_else(|_| usage());
                explicit_reps = true;
                i += 2;
            }
            "--walk-l" => {
                cfg.walk_l = value(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--walk-r" => {
                cfg.walk_r = value(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--lambda" => {
                cfg.lambda = value(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--theta" => {
                cfg.theta = value(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--seed" => {
                cfg.seed = value(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if figures.is_empty() && ablations.is_empty() {
        figures.extend_from_slice(&ALL_FIGURES);
    }
    if !explicit_reps {
        // Default the materialized representative target to the paper's
        // 2000-per-topic divided by the scale (Figure 9's setting), so the
        // 1000-rep figures can truncate downward.
        cfg.rep_target = (2000 / cfg.scale).max(4);
    }

    eprintln!(
        "[repro] scale={} terms={} users={} reps/topic={} L={} R={} θ={} λ={}",
        cfg.scale,
        cfg.n_query_terms,
        cfg.n_query_users,
        cfg.rep_target,
        cfg.walk_l,
        cfg.walk_r,
        cfg.theta,
        cfg.lambda
    );
    let mut cache = EnvCache::new(cfg);
    for f in figures {
        let start = std::time::Instant::now();
        let out = run_figure(&mut cache, f);
        println!("{out}");
        eprintln!(
            "[repro] figure {f} took {:.1}s\n",
            start.elapsed().as_secs_f64()
        );
    }
    for a in ablations {
        let start = std::time::Instant::now();
        let out = run_ablation(&mut cache, &a);
        println!("{out}");
        eprintln!(
            "[repro] ablation {a} took {:.1}s\n",
            start.elapsed().as_secs_f64()
        );
    }
}
