//! Shared experiment environment: datasets, indexes, workloads, runners.

use pit_baselines::{rank_top_k, BaseDijkstra, BaseMatrix, BasePropagation};
use pit_datasets::{generate, paper_specs, Dataset, DatasetSpec};
use pit_eval::timing::Measurement;
use pit_graph::TopicId;
use pit_index::{PropIndexConfig, PropagationIndex};
use pit_search_core::{PersonalizedSearcher, SearchConfig, TopicRepIndex};
use pit_summarize::{LrwConfig, LrwSummarizer, RclConfig, RclSummarizer, SummarizeContext};
use pit_topics::{KeywordQuery, QueryWorkload};
use pit_walk::{WalkConfig, WalkIndex, WalkIndexParts};
use std::time::{Duration, Instant};

/// The five systems under comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Method {
    /// Ground-truth matrix propagation.
    BaseMatrix,
    /// Shortest paths + alternatives.
    BaseDijkstra,
    /// Exact lookups over the propagation index, no summarization.
    BasePropagation,
    /// Random-clustering summarization + top-k search.
    RclA,
    /// L-length random-walk summarization + top-k search.
    LrwA,
}

impl Method {
    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Method::BaseMatrix => "BaseMatrix",
            Method::BaseDijkstra => "BaseDijkstra",
            Method::BasePropagation => "BasePropagation",
            Method::RclA => "RCL-A",
            Method::LrwA => "LRW-A",
        }
    }
}

/// Which methods an environment must be able to run (controls which offline
/// artifacts get built).
#[derive(Clone, Copy, Debug)]
pub struct MethodSet {
    /// Include BaseMatrix (only sensible on the small dataset).
    pub matrix: bool,
    /// Include BaseDijkstra.
    pub dijkstra: bool,
    /// Include BasePropagation.
    pub propagation: bool,
    /// Include RCL-A (requires the walk reach index).
    pub rcl: bool,
    /// Include LRW-A.
    pub lrw: bool,
}

impl MethodSet {
    /// Every method (the data_2k configuration of Figure 5).
    pub const ALL: MethodSet = MethodSet {
        matrix: true,
        dijkstra: true,
        propagation: true,
        rcl: true,
        lrw: true,
    };
    /// Everything except BaseMatrix (the large-dataset configuration).
    pub const NO_MATRIX: MethodSet = MethodSet {
        matrix: false,
        dijkstra: true,
        propagation: true,
        rcl: true,
        lrw: true,
    };
    /// Just the two summarization methods.
    pub const SUMMARIZED: MethodSet = MethodSet {
        matrix: false,
        dijkstra: false,
        propagation: false,
        rcl: true,
        lrw: true,
    };

    /// The methods as a list.
    pub fn methods(&self) -> Vec<Method> {
        let mut out = Vec::new();
        if self.matrix {
            out.push(Method::BaseMatrix);
        }
        if self.dijkstra {
            out.push(Method::BaseDijkstra);
        }
        if self.propagation {
            out.push(Method::BasePropagation);
        }
        if self.rcl {
            out.push(Method::RclA);
        }
        if self.lrw {
            out.push(Method::LrwA);
        }
        out
    }
}

/// Harness-wide knobs. `Default` is tuned for a single-core laptop run of
/// the full figure suite; the paper-shape runs recorded in EXPERIMENTS.md
/// use these defaults.
#[derive(Clone, Copy, Debug)]
pub struct EnvConfig {
    /// Dataset scale divisor (paper sizes / scale; data_2k is never scaled).
    pub scale: usize,
    /// Number of query keywords sampled (paper: 100).
    pub n_query_terms: usize,
    /// Number of query users sampled (paper: 50).
    pub n_query_users: usize,
    /// Walk length `L`.
    pub walk_l: usize,
    /// Walk samples per node `R`.
    pub walk_r: usize,
    /// Propagation-index threshold `θ`.
    pub theta: f64,
    /// Representatives materialized per topic (paper: 1000 at 3 M nodes;
    /// scale this with `scale`).
    pub rep_target: usize,
    /// LRW-A damping λ (Equation 5).
    pub lambda: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for EnvConfig {
    fn default() -> Self {
        EnvConfig {
            scale: 30,
            n_query_terms: 5,
            n_query_users: 10,
            walk_l: 5,
            walk_r: 32,
            // Small enough that the weighted-cascade probabilities (1/indeg)
            // survive a few hops; 0.05 empties most Γ(v) tables on hubs.
            theta: 0.01,
            rep_target: 33, // 1000 / scale
            lambda: 0.85,
            seed: 0xE41,
        }
    }
}

impl EnvConfig {
    /// The representative target adjusted to a requested paper-scale count
    /// (e.g. the 1000/2000/4000/6000 sweep of Figures 7 and 12).
    pub fn scaled_reps(&self, paper_count: usize) -> usize {
        (paper_count / self.scale).max(2)
    }

    /// A result size `k` adjusted from the paper's large-dataset sweeps
    /// (k = 100..500 against ~3000 candidate topics): dividing by the scale
    /// factor preserves the paper's selectivity against the scaled
    /// candidate-set sizes. Only used on the scaled datasets — data_2k keeps
    /// the paper's query statistics and its k values unscaled.
    pub fn scaled_k(&self, paper_k: usize) -> usize {
        (paper_k / self.scale).max(2)
    }
}

/// A fully built experiment environment over one dataset.
pub struct Env {
    /// The generated dataset.
    pub dataset: Dataset,
    /// The sampled-walk index.
    pub walks: WalkIndex,
    /// The personalized propagation index.
    pub prop: PropagationIndex,
    /// The query workload (terms × users).
    pub workload: QueryWorkload,
    /// Union of q-related topics over the workload's terms.
    pub workload_topics: Vec<TopicId>,
    /// LRW-A representative sets (workload topics only), when built.
    pub lrw_reps: Option<TopicRepIndex>,
    /// RCL-A representative sets (workload topics only), when built.
    pub rcl_reps: Option<TopicRepIndex>,
    /// Offline build times, for reporting.
    pub build_times: BuildTimes,
    config: EnvConfig,
}

/// Offline-stage wall-clock costs of an environment.
#[derive(Clone, Copy, Debug, Default)]
pub struct BuildTimes {
    /// Walk-index construction.
    pub walks: Duration,
    /// Propagation-index construction.
    pub prop: Duration,
    /// LRW-A summarization over the workload topics.
    pub lrw: Duration,
    /// RCL-A summarization over the workload topics.
    pub rcl: Duration,
}

impl Env {
    /// Build an environment for `spec`, materializing exactly what
    /// `methods` needs.
    pub fn build(spec: &DatasetSpec, cfg: &EnvConfig, methods: MethodSet) -> Env {
        let dataset = generate(spec);
        let parts = if methods.rcl {
            WalkIndexParts::ALL
        } else {
            WalkIndexParts::FOR_LRW
        };
        let t0 = Instant::now();
        let walks = WalkIndex::build_parts(
            &dataset.graph,
            WalkConfig::new(cfg.walk_l, cfg.walk_r).with_seed(cfg.seed),
            parts,
        );
        let walks_time = t0.elapsed();

        let t0 = Instant::now();
        let prop = PropagationIndex::build(&dataset.graph, PropIndexConfig::with_theta(cfg.theta));
        let prop_time = t0.elapsed();

        let workload = QueryWorkload::sample(
            &dataset.space,
            dataset.graph.node_count(),
            dataset.spec.topics.query_term_count,
            cfg.n_query_terms,
            cfg.n_query_users,
            cfg.seed ^ 0x0F,
        );
        let mut workload_topics: Vec<TopicId> = workload
            .terms
            .iter()
            .flat_map(|&t| dataset.space.topics_for_term(t).to_vec())
            .collect();
        workload_topics.sort_unstable();
        workload_topics.dedup();

        let ctx = SummarizeContext {
            graph: &dataset.graph,
            space: &dataset.space,
            walks: &walks,
        };
        let mut build_times = BuildTimes {
            walks: walks_time,
            prop: prop_time,
            ..BuildTimes::default()
        };
        let lrw_reps = methods.lrw.then(|| {
            let t0 = Instant::now();
            let idx = TopicRepIndex::build_for_topics(
                &ctx,
                &LrwSummarizer::new(LrwConfig {
                    rep_count: Some(cfg.rep_target),
                    lambda: cfg.lambda,
                    ..LrwConfig::default()
                }),
                &workload_topics,
            );
            build_times.lrw = t0.elapsed();
            idx
        });
        let rcl_reps = methods.rcl.then(|| {
            let t0 = Instant::now();
            let idx = TopicRepIndex::build_for_topics(
                &ctx,
                &RclSummarizer::new(RclConfig {
                    c_size: cfg.rep_target,
                    ..RclConfig::default()
                }),
                &workload_topics,
            );
            build_times.rcl = t0.elapsed();
            // RCL-A can produce more clusters than C_Size when the grouping
            // splits aggressively; the paper fixes the *materialized* count
            // per topic, so both methods are truncated to the same target.
            idx.truncated(cfg.rep_target)
        });

        Env {
            dataset,
            walks,
            prop,
            workload,
            workload_topics,
            lrw_reps,
            rcl_reps,
            build_times,
            config: *cfg,
        }
    }

    /// The harness configuration this environment was built with.
    pub fn config(&self) -> &EnvConfig {
        &self.config
    }

    /// Run one query under `method`, returning the ranked topic ids and the
    /// elapsed wall-clock time. `reps_override` substitutes a truncated
    /// representative index (Figures 7/12).
    pub fn run_query(
        &self,
        method: Method,
        query: &KeywordQuery,
        k: usize,
        reps_override: Option<&TopicRepIndex>,
    ) -> (Vec<TopicId>, Duration) {
        let space = &self.dataset.space;
        let start = Instant::now();
        let ranked: Vec<TopicId> = match method {
            Method::BaseMatrix => {
                let engine = BaseMatrix::new(&self.dataset.graph, space);
                rank_top_k(&engine, space, query, k)
                    .into_iter()
                    .map(|r| r.topic)
                    .collect()
            }
            Method::BaseDijkstra => {
                let engine = BaseDijkstra::new(&self.dataset.graph, space);
                let topics = query.related_topics(space);
                let scores = engine.score_topics(&topics, query.user);
                rank_scored(topics, scores, k)
            }
            Method::BasePropagation => {
                let engine = BasePropagation::new(space, &self.prop);
                rank_top_k(&engine, space, query, k)
                    .into_iter()
                    .map(|r| r.topic)
                    .collect()
            }
            Method::RclA | Method::LrwA => {
                let reps = reps_override.unwrap_or_else(|| self.reps_for(method));
                let searcher =
                    PersonalizedSearcher::new(space, &self.prop, reps, SearchConfig::top(k));
                searcher
                    .search(query)
                    .top_k
                    .into_iter()
                    .map(|s| s.topic)
                    .collect()
            }
        };
        (ranked, start.elapsed())
    }

    /// The representative index backing a summarized method.
    ///
    /// # Panics
    /// Panics if the method's index was not built for this environment.
    pub fn reps_for(&self, method: Method) -> &TopicRepIndex {
        match method {
            Method::RclA => self.rcl_reps.as_ref().expect("RCL-A index not built"),
            Method::LrwA => self.lrw_reps.as_ref().expect("LRW-A index not built"),
            _ => panic!("{} has no representative index", method.name()),
        }
    }

    /// Build a fresh representative index for `method` over the workload
    /// topics with an explicit per-topic representative target (the
    /// materialized-size sweeps of Figures 7 and 12 build the largest target
    /// once and truncate downward).
    pub fn build_reps(&self, method: Method, rep_target: usize) -> TopicRepIndex {
        let ctx = SummarizeContext {
            graph: &self.dataset.graph,
            space: &self.dataset.space,
            walks: &self.walks,
        };
        match method {
            Method::LrwA => TopicRepIndex::build_for_topics(
                &ctx,
                &LrwSummarizer::new(LrwConfig {
                    rep_count: Some(rep_target),
                    lambda: self.config.lambda,
                    ..LrwConfig::default()
                }),
                &self.workload_topics,
            ),
            Method::RclA => TopicRepIndex::build_for_topics(
                &ctx,
                &RclSummarizer::new(RclConfig {
                    c_size: rep_target,
                    ..RclConfig::default()
                }),
                &self.workload_topics,
            ),
            other => panic!("{} has no representative index", other.name()),
        }
    }

    /// Average a method's query time over (a capped prefix of) the workload.
    pub fn mean_query_time(
        &self,
        method: Method,
        k: usize,
        max_queries: usize,
        reps_override: Option<&TopicRepIndex>,
    ) -> Measurement {
        let queries: Vec<KeywordQuery> = self.workload.queries().take(max_queries).collect();
        assert!(!queries.is_empty(), "empty workload");
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        for q in &queries {
            let (_, dt) = self.run_query(method, q, k, reps_override);
            total += dt;
            min = min.min(dt);
            max = max.max(dt);
        }
        let runs = queries.len();
        Measurement {
            runs,
            total,
            mean: total / runs as u32,
            min,
            max,
        }
    }

    /// Mean precision@k and NDCG@k of `method` against `truth_method` over
    /// the capped workload.
    pub fn mean_quality(
        &self,
        method: Method,
        truth_method: Method,
        k: usize,
        max_queries: usize,
        reps_override: Option<&TopicRepIndex>,
    ) -> (f64, f64) {
        let queries: Vec<KeywordQuery> = self.workload.queries().take(max_queries).collect();
        assert!(!queries.is_empty(), "empty workload");
        let (mut p, mut n) = (0.0, 0.0);
        for q in &queries {
            let (got, _) = self.run_query(method, q, k, reps_override);
            let (truth, _) = self.run_query(truth_method, q, k, None);
            p += pit_eval::precision_at_k(&got, &truth, k);
            n += pit_eval::ndcg_at_k(&got, &truth, k);
        }
        (p / queries.len() as f64, n / queries.len() as f64)
    }

    /// Mean precision@k of `method` against `truth_method` over the capped
    /// workload (the Figures 10–12 protocol).
    pub fn mean_precision(
        &self,
        method: Method,
        truth_method: Method,
        k: usize,
        max_queries: usize,
        reps_override: Option<&TopicRepIndex>,
    ) -> f64 {
        let queries: Vec<KeywordQuery> = self.workload.queries().take(max_queries).collect();
        assert!(!queries.is_empty(), "empty workload");
        let mut acc = 0.0;
        for q in &queries {
            let (got, _) = self.run_query(method, q, k, reps_override);
            let (truth, _) = self.run_query(truth_method, q, k, None);
            acc += pit_eval::precision_at_k(&got, &truth, k);
        }
        acc / queries.len() as f64
    }
}

fn rank_scored(topics: Vec<TopicId>, scores: Vec<f64>, k: usize) -> Vec<TopicId> {
    let mut paired: Vec<(TopicId, f64)> = topics.into_iter().zip(scores).collect();
    paired.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    paired.truncate(k);
    paired.into_iter().map(|(t, _)| t).collect()
}

/// Lazily built, memoized environments keyed by Figure-4 dataset index, so a
/// `repro --figure all` run builds each dataset once.
pub struct EnvCache {
    cfg: EnvConfig,
    specs: Vec<DatasetSpec>,
    slots: Vec<Option<Env>>,
}

/// Indexes into [`pit_datasets::paper_specs`].
pub const DATA_2K: usize = 0;
/// data_350k (scaled).
pub const DATA_350K: usize = 1;
/// data_1.2m (scaled).
pub const DATA_1_2M: usize = 2;
/// data_3m (scaled).
pub const DATA_3M: usize = 3;

impl EnvCache {
    /// Create an empty cache for the given harness configuration, using the
    /// Figure-4 dataset specs at the configured scale.
    pub fn new(cfg: EnvConfig) -> Self {
        Self::with_specs(cfg, paper_specs(cfg.scale))
    }

    /// Create a cache over custom dataset specs (must be 4, in Figure-4
    /// order). Used by the harness self-tests to run the figure code on
    /// miniature datasets.
    pub fn with_specs(cfg: EnvConfig, specs: Vec<DatasetSpec>) -> Self {
        assert_eq!(specs.len(), 4, "expected the four Figure-4 dataset specs");
        EnvCache {
            cfg,
            specs,
            slots: (0..4).map(|_| None).collect(),
        }
    }

    /// The harness configuration.
    pub fn config(&self) -> &EnvConfig {
        &self.cfg
    }

    /// Get (building if needed) the environment for dataset `idx`
    /// (`DATA_2K` … `DATA_3M`). The method set is fixed per dataset: all
    /// five on data_2k, everything but BaseMatrix elsewhere.
    pub fn env(&mut self, idx: usize) -> &Env {
        if self.slots[idx].is_none() {
            let spec = &self.specs[idx];
            let methods = if idx == DATA_2K {
                MethodSet::ALL
            } else {
                MethodSet::NO_MATRIX
            };
            eprintln!("[env] building {} ({} nodes)…", spec.name, spec.nodes);
            let env = Env::build(spec, &self.cfg, methods);
            eprintln!(
                "[env] {} ready: |V|={}, |E|={}, topics={}, workload topics={}",
                env.dataset.spec.name,
                env.dataset.graph.node_count(),
                env.dataset.graph.edge_count(),
                env.dataset.space.topic_count(),
                env.workload_topics.len()
            );
            self.slots[idx] = Some(env);
        }
        self.slots[idx].as_ref().expect("just built")
    }
}

/// A miniature cache for the in-crate figure tests: four 600–1200-node specs
/// with small topic spaces, so every figure function runs in well under a
/// second.
#[cfg(test)]
pub fn tiny_test_cache() -> EnvCache {
    use pit_datasets::spec::scaled_topic_config;
    use pit_datasets::DatasetKind;
    let cfg = EnvConfig {
        scale: 3000,
        n_query_terms: 2,
        n_query_users: 2,
        walk_l: 3,
        walk_r: 4,
        theta: 0.05,
        rep_target: 4,
        lambda: 0.85,
        seed: 5,
    };
    let mk = |name: &str, nodes: usize, kind: DatasetKind, seed: u64| DatasetSpec {
        name: name.into(),
        nodes,
        kind,
        topics: scaled_topic_config(nodes, seed),
        seed,
    };
    let specs = vec![
        mk(
            "data_2k",
            800,
            DatasetKind::PowerLaw { edges_per_node: 3 },
            1,
        ),
        mk(
            "data_350k",
            600,
            DatasetKind::DegreeBand { lo: 2, hi: 5 },
            2,
        ),
        mk(
            "data_1.2m",
            700,
            DatasetKind::DegreeBand { lo: 3, hi: 8 },
            3,
        ),
        mk(
            "data_3m",
            1_200,
            DatasetKind::PowerLaw { edges_per_node: 3 },
            4,
        ),
    ];
    EnvCache::with_specs(cfg, specs)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny configuration for harness self-tests.
    pub fn tiny_cfg() -> EnvConfig {
        EnvConfig {
            scale: 1500, // data_350k → 1000 nodes etc.
            n_query_terms: 2,
            n_query_users: 3,
            walk_l: 3,
            walk_r: 8,
            theta: 0.05,
            rep_target: 5,
            lambda: 0.85,
            seed: 11,
        }
    }

    /// A small power-law spec with a small topic space (the paper-faithful
    /// data_2k spec carries 4000 topics, far too heavy for unit tests).
    fn tiny_spec() -> DatasetSpec {
        DatasetSpec {
            name: "tiny".into(),
            nodes: 900,
            kind: pit_datasets::DatasetKind::PowerLaw { edges_per_node: 3 },
            topics: pit_datasets::spec::scaled_topic_config(900, 11),
            seed: 11,
        }
    }

    #[test]
    fn env_builds_and_answers_queries() {
        let cfg = tiny_cfg();
        let spec = tiny_spec();
        let env = Env::build(&spec, &cfg, MethodSet::ALL);
        assert!(!env.workload_topics.is_empty());
        let q: KeywordQuery = env.workload.queries().next().unwrap();
        for m in MethodSet::ALL.methods() {
            let (topk, dt) = env.run_query(m, &q, 5, None);
            assert!(topk.len() <= 5, "{}: {topk:?}", m.name());
            assert!(dt.as_nanos() > 0);
        }
    }

    #[test]
    fn mean_time_and_precision_run() {
        let cfg = tiny_cfg();
        let spec = tiny_spec();
        let env = Env::build(&spec, &cfg, MethodSet::ALL);
        let m = env.mean_query_time(Method::LrwA, 5, 3, None);
        assert_eq!(m.runs, 3);
        let p = env.mean_precision(Method::LrwA, Method::BaseMatrix, 5, 3, None);
        assert!((0.0..=1.0).contains(&p), "precision {p}");
    }

    #[test]
    fn summarized_methods_beat_matrix_on_time() {
        let cfg = tiny_cfg();
        let spec = tiny_spec();
        let env = Env::build(&spec, &cfg, MethodSet::ALL);
        let lrw = env.mean_query_time(Method::LrwA, 5, 5, None);
        let mat = env.mean_query_time(Method::BaseMatrix, 5, 5, None);
        assert!(
            lrw.mean < mat.mean,
            "LRW-A {:?} not faster than BaseMatrix {:?}",
            lrw.mean,
            mat.mean
        );
    }

    #[test]
    fn truncated_reps_override_works() {
        let cfg = tiny_cfg();
        let spec = tiny_spec();
        let env = Env::build(&spec, &cfg, MethodSet::SUMMARIZED);
        let cut = env.reps_for(Method::LrwA).truncated(1);
        let q: KeywordQuery = env.workload.queries().next().unwrap();
        let (topk, _) = env.run_query(Method::LrwA, &q, 3, Some(&cut));
        assert!(topk.len() <= 3);
    }
}
