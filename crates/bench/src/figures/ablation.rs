//! Ablation experiments for the design choices DESIGN.md calls out.
//!
//! Not figures from the paper — these justify (a) the upper-bound pruning
//! rule of Algorithm 10, (b) the topic-rooted PageRank initialization
//! (DESIGN.md §8 divergence 2), and (c) the walk next-hop policy.

use crate::harness::{EnvCache, Method, DATA_3M};
use pit_eval::table::{human_ms, Table};
use pit_search_core::{PersonalizedSearcher, SearchConfig, TopicRepIndex};
use pit_summarize::{LrwConfig, LrwSummarizer, PageRankInit, SummarizeContext};
use pit_topics::KeywordQuery;
use pit_walk::{WalkConfig, WalkIndex, WalkIndexParts, WalkPolicy};
use std::time::Instant;

const QUERY_CAP: usize = 8;

/// Run one ablation by name.
///
/// # Panics
/// Panics on an unknown name (supported: `prune`, `init`, `policy`).
pub fn run_ablation(cache: &mut EnvCache, name: &str) -> String {
    match name {
        "prune" => ablate_pruning(cache),
        "init" => ablate_pagerank_init(cache),
        "policy" => ablate_walk_policy(cache),
        "refine" => ablate_centroid_refinement(cache),
        other => panic!("unknown ablation {other} (supported: prune, init, policy, refine)"),
    }
}

/// All ablation names.
pub const ALL_ABLATIONS: [&str; 4] = ["prune", "init", "policy", "refine"];

/// (d) RCL-A centroid hill-climbing (the paper's optional Section-3.2
/// refinement): precision and per-topic cost with and without it.
fn ablate_centroid_refinement(cache: &mut EnvCache) -> String {
    use pit_summarize::{RclConfig, RclSummarizer};
    let cfg = *cache.config();
    let env = cache.env(DATA_3M);
    let k = cfg.scaled_k(300);
    let ctx = SummarizeContext {
        graph: &env.dataset.graph,
        space: &env.dataset.space,
        walks: &env.walks,
    };
    let mut table = Table::new(&[
        "centroid refinement",
        "precision vs BasePropagation",
        "summarize time (all workload topics)",
    ]);
    for (label, refine) in [("off (Algorithm 4)", false), ("hill-climb (opt. 2)", true)] {
        let t0 = Instant::now();
        let reps = TopicRepIndex::build_for_topics(
            &ctx,
            &RclSummarizer::new(RclConfig {
                c_size: cfg.rep_target,
                refine_centroids: refine,
                ..RclConfig::default()
            }),
            &env.workload_topics,
        )
        .truncated(cfg.rep_target);
        let build = t0.elapsed();
        let p = env.mean_precision(
            Method::RclA,
            Method::BasePropagation,
            k,
            QUERY_CAP,
            Some(&reps),
        );
        table.row_owned(vec![
            label.to_string(),
            format!("{p:.3}"),
            human_ms(build.as_secs_f64() * 1e3),
        ]);
    }
    format!(
        "Ablation `refine`: RCL-A centroid hill-climbing on data_3m/scale (k = {k})\n{}",
        table.render()
    )
}

/// (a) Pruning: same results, less work.
fn ablate_pruning(cache: &mut EnvCache) -> String {
    let cfg = *cache.config();
    let env = cache.env(DATA_3M);
    // The smallest paper k — the most contested top-k and therefore the most
    // expansion work for pruning to save.
    let k = cfg.scaled_k(100);
    let reps = env.reps_for(Method::LrwA);
    let queries: Vec<KeywordQuery> = env.workload.queries().take(QUERY_CAP).collect();

    let mut table = Table::new(&[
        "pruning",
        "mean time",
        "mean probed tables",
        "mean pruned topics",
        "top-k identical",
    ]);
    let mut reference: Vec<Vec<pit_graph::TopicId>> = Vec::new();
    for prune in [false, true] {
        let searcher = PersonalizedSearcher::new(
            &env.dataset.space,
            &env.prop,
            reps,
            SearchConfig {
                k,
                max_expand_rounds: 4,
                prune,
            },
        );
        let mut probed = 0usize;
        let mut pruned = 0usize;
        let mut identical = true;
        let start = Instant::now();
        for (i, q) in queries.iter().enumerate() {
            let out = searcher.search(q);
            probed += out.probed_tables;
            pruned += out.pruned_topics;
            let topics: Vec<_> = out.top_k.iter().map(|s| s.topic).collect();
            if prune {
                identical &= topics == reference[i];
            } else {
                reference.push(topics);
            }
        }
        let mean_ms = start.elapsed().as_secs_f64() * 1e3 / queries.len() as f64;
        table.row_owned(vec![
            if prune { "on" } else { "off" }.to_string(),
            human_ms(mean_ms),
            format!("{:.1}", probed as f64 / queries.len() as f64),
            format!("{:.1}", pruned as f64 / queries.len() as f64),
            if prune {
                identical.to_string()
            } else {
                "(reference)".to_string()
            },
        ]);
    }
    format!(
        "Ablation `prune`: Algorithm-10 upper-bound pruning on data_3m/scale \
         (k = {k}, {QUERY_CAP} queries)\n{}",
        table.render()
    )
}

/// (b) Topic-rooted vs. all-ones PageRank initialization (DESIGN.md §8.2):
/// precision against BasePropagation.
fn ablate_pagerank_init(cache: &mut EnvCache) -> String {
    let cfg = *cache.config();
    let env = cache.env(DATA_3M);
    let k = cfg.scaled_k(300);
    let ctx = SummarizeContext {
        graph: &env.dataset.graph,
        space: &env.dataset.space,
        walks: &env.walks,
    };
    let mut table = Table::new(&["PageRank init", "precision vs BasePropagation"]);
    for (label, init) in [
        ("topic-rooted (ours)", PageRankInit::TopicPrior),
        ("all-ones (Algorithm 7 as printed)", PageRankInit::AllOnes),
    ] {
        let reps = TopicRepIndex::build_for_topics(
            &ctx,
            &LrwSummarizer::new(LrwConfig {
                rep_count: Some(cfg.rep_target),
                init,
                ..LrwConfig::default()
            }),
            &env.workload_topics,
        );
        let p = env.mean_precision(
            Method::LrwA,
            Method::BasePropagation,
            k,
            QUERY_CAP,
            Some(&reps),
        );
        table.row_owned(vec![label.to_string(), format!("{p:.3}")]);
    }
    format!(
        "Ablation `init`: LRW-A PageRank initialization on data_3m/scale (k = {k})\n{}",
        table.render()
    )
}

/// (c) Uniform vs. transition-weighted walks feeding LRW-A.
fn ablate_walk_policy(cache: &mut EnvCache) -> String {
    let cfg = *cache.config();
    let env = cache.env(DATA_3M);
    let k = cfg.scaled_k(300);
    let mut table = Table::new(&["walk policy", "precision vs BasePropagation"]);
    for (label, policy) in [
        (
            "uniform neighbor (Algorithm 6)",
            WalkPolicy::UniformNeighbor,
        ),
        ("transition-weighted", WalkPolicy::TransitionWeighted),
    ] {
        let walks = WalkIndex::build_parts(
            &env.dataset.graph,
            WalkConfig::new(cfg.walk_l, cfg.walk_r)
                .with_seed(cfg.seed)
                .with_policy(policy),
            WalkIndexParts::FOR_LRW,
        );
        let ctx = SummarizeContext {
            graph: &env.dataset.graph,
            space: &env.dataset.space,
            walks: &walks,
        };
        let reps = TopicRepIndex::build_for_topics(
            &ctx,
            &LrwSummarizer::new(LrwConfig {
                rep_count: Some(cfg.rep_target),
                ..LrwConfig::default()
            }),
            &env.workload_topics,
        );
        let p = env.mean_precision(
            Method::LrwA,
            Method::BasePropagation,
            k,
            QUERY_CAP,
            Some(&reps),
        );
        table.row_owned(vec![label.to_string(), format!("{p:.3}")]);
    }
    format!(
        "Ablation `policy`: walk next-hop policy feeding LRW-A on data_3m/scale (k = {k})\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ablations_render() {
        let mut cache = crate::harness::tiny_test_cache();
        for name in ALL_ABLATIONS {
            let out = run_ablation(&mut cache, name);
            assert!(out.contains("Ablation"), "{name}:\n{out}");
        }
    }

    #[test]
    #[should_panic]
    fn unknown_ablation_panics() {
        let mut cache = crate::harness::tiny_test_cache();
        let _ = run_ablation(&mut cache, "nope");
    }
}
