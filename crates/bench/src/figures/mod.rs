//! One module per Section-6 experiment family; every public `figNN` function
//! renders the corresponding paper table/figure as text.

pub mod ablation;
pub mod construction;
pub mod datasets;
pub mod quality;
pub mod space;
pub mod timing;

use crate::harness::EnvCache;

/// Run one figure by number, returning its rendered output.
///
/// # Panics
/// Panics on a figure number outside 4–16 (1–3 are worked examples covered
/// by unit tests, not benchmarks).
pub fn run_figure(cache: &mut EnvCache, figure: u32) -> String {
    match figure {
        4 => datasets::fig04(cache),
        5 => timing::fig05(cache),
        6 => timing::fig06(cache),
        7 => timing::fig07(cache),
        8 => timing::fig08(cache),
        9 => timing::fig09(cache),
        10 => quality::fig10(cache),
        11 => quality::fig11(cache),
        12 => quality::fig12(cache),
        13 => space::fig13(cache),
        14 => space::fig14(cache),
        15 => construction::fig15(cache),
        16 => construction::fig16(cache),
        other => panic!(
            "figure {other} is not an experiment (supported: 4-16; figures 1-3 \
             are worked examples verified by unit tests)"
        ),
    }
}

/// All experiment figure numbers in order.
pub const ALL_FIGURES: [u32; 13] = [4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16];
