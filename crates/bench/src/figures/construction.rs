//! Figures 15–16 — offline index-construction cost.

use crate::harness::{EnvCache, DATA_3M};
use pit_eval::table::{human_bytes, human_ms, Table};
use pit_graph::TopicId;
use pit_summarize::{
    LrwConfig, LrwSummarizer, RclConfig, RclSummarizer, SummarizeContext, Summarizer,
};
use pit_walk::{WalkConfig, WalkIndex, WalkIndexParts};
use std::time::Instant;

/// Topics measured per cell (the paper reports per-topic averages).
const TOPICS_PER_CELL: usize = 3;

/// Pick representative topics for per-topic cost measurements: the median
/// |V_t| entries of the workload topics, so one monster head topic doesn't
/// dominate the averages.
fn sample_topics(env: &crate::harness::Env) -> Vec<TopicId> {
    let mut by_size: Vec<(usize, TopicId)> = env
        .workload_topics
        .iter()
        .map(|&t| (env.dataset.space.topic_nodes(t).len(), t))
        .collect();
    by_size.sort_unstable();
    let mid = by_size.len() / 2;
    by_size
        .iter()
        .skip(mid.saturating_sub(TOPICS_PER_CELL / 2))
        .take(TOPICS_PER_CELL)
        .map(|&(_, t)| t)
        .collect()
}

fn mean_per_topic_ms<S: Summarizer>(
    ctx: &SummarizeContext<'_>,
    summarizer: &S,
    topics: &[TopicId],
) -> f64 {
    let start = Instant::now();
    for &t in topics {
        std::hint::black_box(summarizer.summarize(ctx, t));
    }
    start.elapsed().as_secs_f64() * 1e3 / topics.len() as f64
}

/// Figure 15 — per-topic summarization cost vs. the RCL-A probe sample rate
/// (1 %, 5 %, 10 %) and the LRW-A walk sample count `R`. The paper's table
/// reports time and space per topic; space here is the dominant resident
/// structure (the walk index) plus the graph.
pub fn fig15(cache: &mut EnvCache) -> String {
    let cfg = *cache.config();
    let env = cache.env(DATA_3M);
    let topics = sample_topics(env);
    let ctx = SummarizeContext {
        graph: &env.dataset.graph,
        space: &env.dataset.space,
        walks: &env.walks,
    };

    let mut rcl_table = Table::new(&["|V'|/|V| in RCL-A", "1%", "5%", "10%"]);
    let mut time_row = vec!["Time / topic".to_string()];
    for rate in [0.01f64, 0.05, 0.10] {
        let s = RclSummarizer::new(RclConfig {
            c_size: cfg.rep_target.max(2),
            sample_rate: rate,
            ..RclConfig::default()
        });
        time_row.push(human_ms(mean_per_topic_ms(&ctx, &s, &topics)));
    }
    rcl_table.row_owned(time_row);
    let space = human_bytes(env.walks.heap_size_bytes() + env.dataset.graph.heap_size_bytes());
    rcl_table.row_owned(vec![
        "Space (walk index + graph)".to_string(),
        space.clone(),
        space.clone(),
        space,
    ]);

    // LRW-A: R sweep needs a walk index per R. Paper values 100/200/300 are
    // divided by ~3 to keep a single-core full-suite run tractable; the
    // claim under test (time insensitive to R, space growing with R)
    // is shape-level.
    let r_values = [16usize, 32, 64];
    let mut lrw_table = Table::new(&["R in LRW-A", "R=16", "R=32", "R=64"]);
    let mut time_row = vec!["Time / topic".to_string()];
    let mut space_row = vec!["Space (walk index)".to_string()];
    for &r in &r_values {
        let walks = WalkIndex::build_parts(
            &env.dataset.graph,
            WalkConfig::new(cfg.walk_l, r).with_seed(cfg.seed),
            WalkIndexParts::FOR_LRW,
        );
        let ctx_r = SummarizeContext {
            graph: &env.dataset.graph,
            space: &env.dataset.space,
            walks: &walks,
        };
        let s = LrwSummarizer::new(LrwConfig {
            rep_count: Some(cfg.rep_target.max(2)),
            ..LrwConfig::default()
        });
        time_row.push(human_ms(mean_per_topic_ms(&ctx_r, &s, &topics)));
        space_row.push(human_bytes(walks.heap_size_bytes()));
    }
    lrw_table.row_owned(time_row);
    lrw_table.row_owned(space_row);

    format!(
        "Figure 15: Effect of sample rate on per-topic summarization (data_3m/scale, \
         {TOPICS_PER_CELL} median topics per cell)\n{}\n{}",
        rcl_table.render(),
        lrw_table.render()
    )
}

/// Figure 16 — per-topic index-construction time as the walk length `L`
/// varies, for RCL-A vs. LRW-A.
pub fn fig16(cache: &mut EnvCache) -> String {
    let cfg = *cache.config();
    let env = cache.env(DATA_3M);
    let topics = sample_topics(env);
    let ls = [2usize, 3, 4, 5];
    let mut table = Table::new(&["method", "L=2", "L=3", "L=4", "L=5"]);
    let mut rcl_row = vec!["RCL-A".to_string()];
    let mut lrw_row = vec!["LRW-A".to_string()];
    for &l in &ls {
        let walks = WalkIndex::build_parts(
            &env.dataset.graph,
            WalkConfig::new(l, cfg.walk_r).with_seed(cfg.seed),
            WalkIndexParts::ALL,
        );
        let ctx = SummarizeContext {
            graph: &env.dataset.graph,
            space: &env.dataset.space,
            walks: &walks,
        };
        let rcl = RclSummarizer::new(RclConfig {
            c_size: cfg.rep_target.max(2),
            ..RclConfig::default()
        });
        rcl_row.push(human_ms(mean_per_topic_ms(&ctx, &rcl, &topics)));
        let lrw = LrwSummarizer::new(LrwConfig {
            rep_count: Some(cfg.rep_target.max(2)),
            ..LrwConfig::default()
        });
        lrw_row.push(human_ms(mean_per_topic_ms(&ctx, &lrw, &topics)));
    }
    table.row_owned(rcl_row);
    table.row_owned(lrw_row);
    format!(
        "Figure 16: Per-topic construction time vs walk length L (data_3m/scale, \
         {TOPICS_PER_CELL} median topics per cell)\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cache() -> EnvCache {
        crate::harness::tiny_test_cache()
    }

    #[test]
    fn fig15_renders_both_tables() {
        let out = fig15(&mut tiny_cache());
        assert!(out.contains("RCL-A"));
        assert!(out.contains("R=64"));
        assert!(out.contains("Space"));
    }

    #[test]
    fn fig16_renders_l_sweep() {
        let out = fig16(&mut tiny_cache());
        assert!(out.contains("L=5"));
        assert!(out.contains("LRW-A"));
    }
}
