//! Figures 10–12 — PIT-Search effectiveness (precision against a ground
//! truth).

use crate::harness::{EnvCache, Method, DATA_2K, DATA_3M};
use pit_eval::Table;

const SMALL_QUERY_CAP: usize = 20;
const LARGE_QUERY_CAP: usize = 16;

/// Figure 10 — precision on data_2k against the BaseMatrix ground truth,
/// k ∈ {10, 20, 50, 100}.
pub fn fig10(cache: &mut EnvCache) -> String {
    let env = cache.env(DATA_2K);
    let ks = [10usize, 20, 50, 100];
    let mut table = Table::new(&["method", "k=10", "k=20", "k=50", "k=100"]);
    let mut ndcg_table = Table::new(&["method", "k=10", "k=20", "k=50", "k=100"]);
    for m in [
        Method::BaseDijkstra,
        Method::BasePropagation,
        Method::RclA,
        Method::LrwA,
    ] {
        let mut cells = vec![m.name().to_string()];
        let mut ndcg_cells = vec![m.name().to_string()];
        for &k in &ks {
            let (p, n) = env.mean_quality(m, Method::BaseMatrix, k, SMALL_QUERY_CAP, None);
            cells.push(format!("{p:.3}"));
            ndcg_cells.push(format!("{n:.3}"));
        }
        table.row_owned(cells);
        ndcg_table.row_owned(ndcg_cells);
    }
    format!(
        "Figure 10: Effectiveness on data_2k (precision vs BaseMatrix ground truth, \
         {SMALL_QUERY_CAP} queries)\n{}\nFigure 10 (supplementary): NDCG@k on the same runs\n{}",
        table.render(),
        ndcg_table.render()
    )
}

/// Figure 11 — precision on data_3m (scaled) against BasePropagation
/// (BaseMatrix is infeasible there, as in the paper), k ∈ {100…500}.
pub fn fig11(cache: &mut EnvCache) -> String {
    let cfg = *cache.config();
    let env = cache.env(DATA_3M);
    let ks: Vec<usize> = [100usize, 200, 300, 500]
        .iter()
        .map(|&k| cfg.scaled_k(k))
        .collect();
    let mut table = Table::new(&["method", "k=100", "k=200", "k=300", "k=500"]);
    for m in [Method::BaseDijkstra, Method::RclA, Method::LrwA] {
        let mut cells = vec![m.name().to_string()];
        for &k in &ks {
            let p = env.mean_precision(m, Method::BasePropagation, k, LARGE_QUERY_CAP, None);
            cells.push(format!("{p:.3}"));
        }
        table.row_owned(cells);
    }
    format!(
        "Figure 11: Effectiveness on data_3m/scale (precision vs BasePropagation, \
         {LARGE_QUERY_CAP} queries; paper k shown, actual k = {ks:?})\n{}",
        table.render()
    )
}

/// Figure 12 — precision at k = 100 vs. the materialized representative-set
/// size (paper sweep 1000–6000, scaled).
pub fn fig12(cache: &mut EnvCache) -> String {
    let paper_sizes = [1000usize, 2000, 4000, 6000];
    let cfg = *cache.config();
    let scaled: Vec<usize> = paper_sizes.iter().map(|&s| cfg.scaled_reps(s)).collect();
    let env = cache.env(DATA_3M);
    let k = cfg.scaled_k(100);
    let mut table = Table::new(&["method", "reps=1000", "reps=2000", "reps=4000", "reps=6000"]);
    for m in [Method::RclA, Method::LrwA] {
        let full = env.build_reps(m, *scaled.last().expect("non-empty sweep"));
        let mut cells = vec![m.name().to_string()];
        for &target in &scaled {
            let cut = full.truncated(target);
            let p = env.mean_precision(m, Method::BasePropagation, k, LARGE_QUERY_CAP, Some(&cut));
            cells.push(format!("{p:.3}"));
        }
        table.row_owned(cells);
    }
    format!(
        "Figure 12: Effectiveness vs representative-set size on data_3m/scale \
         (paper k = 100, actual k = {k}, actual sizes = {scaled:?})\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cache() -> EnvCache {
        crate::harness::tiny_test_cache()
    }

    #[test]
    fn fig10_values_are_probabilities() {
        let out = fig10(&mut tiny_cache());
        assert!(out.contains("LRW-A"));
        // Every numeric cell parses as a probability.
        for tok in out.split_whitespace() {
            if let Ok(v) = tok.parse::<f64>() {
                if tok.contains('.') {
                    assert!((0.0..=1.0).contains(&v), "{v} out of range:\n{out}");
                }
            }
        }
    }

    #[test]
    fn fig11_and_12_render() {
        let mut cache = tiny_cache();
        assert!(fig11(&mut cache).contains("BaseDijkstra"));
        let out = fig12(&mut cache);
        assert!(out.contains("RCL-A") && out.contains("reps=6000"));
    }
}
