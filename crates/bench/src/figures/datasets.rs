//! Figure 4 — the dataset summary table.

use crate::harness::{EnvCache, DATA_1_2M, DATA_2K, DATA_350K, DATA_3M};
use pit_eval::Table;

/// Regenerate the Figure-4 table ("Summary of Datasets Used") for the
/// scaled datasets, with measured degree ranges.
pub fn fig04(cache: &mut EnvCache) -> String {
    let mut table = Table::new(&["Dataset", "Size", "Node Degree", "Type", "|E|", "Topics"]);
    for idx in [DATA_3M, DATA_1_2M, DATA_350K, DATA_2K] {
        let env = cache.env(idx);
        let (name, size, degrees, kind) = env.dataset.figure4_row();
        table.row_owned(vec![
            name,
            size.to_string(),
            degrees,
            kind.to_string(),
            env.dataset.graph.edge_count().to_string(),
            env.dataset.space.topic_count().to_string(),
        ]);
    }
    format!(
        "Figure 4: Summary of Datasets Used (paper sizes / scale {})\n{}",
        cache.config().scale,
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig04_renders_all_rows() {
        let mut cache = crate::harness::tiny_test_cache();
        let out = fig04(&mut cache);
        for name in ["data_2k", "data_350k", "data_1.2m", "data_3m"] {
            assert!(out.contains(name), "missing {name} in:\n{out}");
        }
    }
}
