//! Figures 13–14 — transient space cost of a top-100 search.
//!
//! Measured with the counting global allocator that the `repro` binary
//! installs (`pit_eval::alloc`): each cell is the peak *additional* heap
//! while answering a batch of queries. Under `cargo test` the allocator is
//! not installed and the deltas read 0 — the tests only check table shape.

use crate::harness::{EnvCache, Method, MethodSet, DATA_1_2M, DATA_2K, DATA_350K, DATA_3M};
use pit_baselines::BaseMatrix;
use pit_eval::alloc::measure_peak_delta;
use pit_eval::table::{human_bytes, Table};

const QUERY_CAP: usize = 5;

/// Figure 13 — space with 1000 (scaled) representatives per topic.
pub fn fig13(cache: &mut EnvCache) -> String {
    space_figure(cache, 1000, "Figure 13")
}

/// Figure 14 — space with 2000 (scaled) representatives per topic.
pub fn fig14(cache: &mut EnvCache) -> String {
    space_figure(cache, 2000, "Figure 14")
}

fn space_figure(cache: &mut EnvCache, paper_reps: usize, label: &str) -> String {
    let cfg = *cache.config();
    let target = cfg.scaled_reps(paper_reps);
    let mut table = Table::new(&["method", "data_2k", "data_350k", "data_1.2m", "data_3m"]);
    let mut rows: Vec<Vec<String>> = MethodSet::ALL
        .methods()
        .iter()
        .map(|m| vec![m.name().to_string()])
        .collect();
    for idx in [DATA_2K, DATA_350K, DATA_1_2M, DATA_3M] {
        let env = cache.env(idx);
        for (row, &m) in rows.iter_mut().zip(MethodSet::ALL.methods().iter()) {
            if m == Method::BaseMatrix && idx != DATA_2K {
                // The paper reports BaseMatrix as infeasible beyond data_2k
                // (120 GB); we report the analytic working set instead.
                let est =
                    BaseMatrix::new(&env.dataset.graph, &env.dataset.space).working_set_bytes();
                row.push(format!("{} (est)", human_bytes(est)));
                continue;
            }
            let over;
            let reps_override = match m {
                Method::RclA | Method::LrwA => {
                    over = env.reps_for(m).truncated(target);
                    Some(&over)
                }
                _ => None,
            };
            let queries: Vec<_> = env.workload.queries().take(QUERY_CAP).collect();
            let (_, peak) = measure_peak_delta(|| {
                let mut sink = 0usize;
                for q in &queries {
                    let (topk, _) = env.run_query(m, q, 100, reps_override);
                    sink += topk.len();
                }
                sink
            });
            row.push(human_bytes(peak));
        }
    }
    for row in rows {
        table.row_owned(row);
    }
    format!(
        "{label}: Peak transient heap during top-100 search, {paper_reps} (paper) = {target} \
         (scaled) representatives per topic ({QUERY_CAP} queries per cell; requires the \
         counting allocator of the repro binary)\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig13_renders_with_estimates() {
        let mut cache = crate::harness::tiny_test_cache();
        let out = fig13(&mut cache);
        assert!(out.contains("BaseMatrix"));
        assert!(out.contains("(est)"), "BaseMatrix estimate rows:\n{out}");
        assert!(out.contains("data_1.2m"));
    }
}
