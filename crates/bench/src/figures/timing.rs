//! Figures 5–9 — PIT-Search efficiency and scalability.

use crate::harness::{EnvCache, Method, MethodSet, DATA_1_2M, DATA_2K, DATA_350K, DATA_3M};
use pit_eval::table::{human_ms, Table};

/// Queries per (method, k) cell; keeps BaseMatrix/BaseDijkstra cells from
/// dominating a full-suite run on one core.
const SMALL_QUERY_CAP: usize = 25;
const LARGE_QUERY_CAP: usize = 8;

/// Figure 5 — query time on data_2k, five methods, k ∈ {10, 20, 50, 100}.
pub fn fig05(cache: &mut EnvCache) -> String {
    let env = cache.env(DATA_2K);
    let ks = [10usize, 20, 50, 100];
    let mut table = Table::new(&["method", "k=10", "k=20", "k=50", "k=100"]);
    for m in MethodSet::ALL.methods() {
        let mut cells = vec![m.name().to_string()];
        for &k in &ks {
            let t = env.mean_query_time(m, k, SMALL_QUERY_CAP, None);
            cells.push(human_ms(t.mean_ms()));
        }
        table.row_owned(cells);
    }
    format!(
        "Figure 5: Time Cost of PIT-Search using data_2k (mean over {SMALL_QUERY_CAP} queries)\n{}",
        table.render()
    )
}

/// Figure 6 — query time on data_3m (scaled), k ∈ {100, 200, 300, 500},
/// without BaseMatrix (as in the paper).
pub fn fig06(cache: &mut EnvCache) -> String {
    let cfg = *cache.config();
    let env = cache.env(DATA_3M);
    let ks: Vec<usize> = [100usize, 200, 300, 500]
        .iter()
        .map(|&k| cfg.scaled_k(k))
        .collect();
    let mut table = Table::new(&["method", "k=100", "k=200", "k=300", "k=500"]);
    for m in MethodSet::NO_MATRIX.methods() {
        let mut cells = vec![m.name().to_string()];
        for &k in &ks {
            let t = env.mean_query_time(m, k, LARGE_QUERY_CAP, None);
            cells.push(human_ms(t.mean_ms()));
        }
        table.row_owned(cells);
    }
    format!(
        "Figure 6: Time Cost of PIT-Search using data_3m/scale (mean over {LARGE_QUERY_CAP} \
         queries; paper k shown, actual k = {ks:?})\n{}",
        table.render()
    )
}

/// Figure 7 — top-100 query time vs. the materialized representative-set
/// size (paper sweep 1000–6000, divided by the scale factor). Baselines are
/// insensitive to the knob and shown once for reference.
pub fn fig07(cache: &mut EnvCache) -> String {
    let paper_sizes = [1000usize, 2000, 4000, 6000];
    let cfg = *cache.config();
    let scaled: Vec<usize> = paper_sizes.iter().map(|&s| cfg.scaled_reps(s)).collect();
    let env = cache.env(DATA_3M);
    let k = cfg.scaled_k(100);

    let mut table = Table::new(&["method", "reps=1000", "reps=2000", "reps=4000", "reps=6000"]);
    for m in [Method::RclA, Method::LrwA] {
        // Build the largest target once, truncate downward.
        let full = env.build_reps(m, *scaled.last().expect("non-empty sweep"));
        let mut cells = vec![m.name().to_string()];
        for &target in &scaled {
            let cut = full.truncated(target);
            let t = env.mean_query_time(m, k, LARGE_QUERY_CAP, Some(&cut));
            cells.push(human_ms(t.mean_ms()));
        }
        table.row_owned(cells);
    }
    for m in [Method::BaseDijkstra, Method::BasePropagation] {
        let t = env.mean_query_time(m, k, LARGE_QUERY_CAP, None);
        let cell = human_ms(t.mean_ms());
        table.row_owned(vec![
            format!("{} (flat)", m.name()),
            cell.clone(),
            cell.clone(),
            cell.clone(),
            cell,
        ]);
    }
    format!(
        "Figure 7: Top-100 time vs representative-set size on data_3m/scale \
         (paper sizes shown; actual = size/scale = {scaled:?})\n{}",
        table.render()
    )
}

/// Figure 8 — scalability across all four datasets at 1000 (scaled)
/// representatives, k = 100.
pub fn fig08(cache: &mut EnvCache) -> String {
    scalability(cache, 1000, "Figure 8")
}

/// Figure 9 — the same sweep at 2000 (scaled) representatives.
pub fn fig09(cache: &mut EnvCache) -> String {
    scalability(cache, 2000, "Figure 9")
}

fn scalability(cache: &mut EnvCache, paper_reps: usize, label: &str) -> String {
    let cfg = *cache.config();
    let target = cfg.scaled_reps(paper_reps);
    let mut table = Table::new(&["method", "data_2k", "data_350k", "data_1.2m", "data_3m"]);
    let mut rows: Vec<Vec<String>> = MethodSet::ALL
        .methods()
        .iter()
        .map(|m| vec![m.name().to_string()])
        .collect();
    for idx in [DATA_2K, DATA_350K, DATA_1_2M, DATA_3M] {
        let env = cache.env(idx);
        let cap = if idx == DATA_2K {
            SMALL_QUERY_CAP
        } else {
            LARGE_QUERY_CAP
        };
        for (row, &m) in rows.iter_mut().zip(MethodSet::ALL.methods().iter()) {
            if m == Method::BaseMatrix && idx != DATA_2K {
                row.push("—".to_string()); // paper also omits BaseMatrix here
                continue;
            }
            let over;
            let reps_override = match m {
                Method::RclA | Method::LrwA => {
                    over = env.reps_for(m).truncated(target);
                    Some(&over)
                }
                _ => None,
            };
            let t = env.mean_query_time(m, 100, cap, reps_override);
            row.push(human_ms(t.mean_ms()));
        }
    }
    for row in rows {
        table.row_owned(row);
    }
    format!(
        "{label}: Scalability of top-100 PIT-Search, {paper_reps} (paper) = {target} (scaled) \
         representatives per topic\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cache() -> EnvCache {
        crate::harness::tiny_test_cache()
    }

    #[test]
    fn fig05_has_all_methods() {
        let out = fig05(&mut tiny_cache());
        for m in [
            "BaseMatrix",
            "BaseDijkstra",
            "BasePropagation",
            "RCL-A",
            "LRW-A",
        ] {
            assert!(out.contains(m), "missing {m}:\n{out}");
        }
    }

    #[test]
    fn fig06_excludes_matrix() {
        let out = fig06(&mut tiny_cache());
        assert!(!out.contains("BaseMatrix"));
        assert!(out.contains("LRW-A"));
    }

    #[test]
    fn fig07_and_scalability_render() {
        let mut cache = tiny_cache();
        let out = fig07(&mut cache);
        assert!(out.contains("reps=6000"));
        let out = fig08(&mut cache);
        assert!(out.contains("data_350k"));
        assert!(
            out.contains("—"),
            "BaseMatrix must be omitted on large sets"
        );
    }
}
