//! Cold-start benchmarks: how fast a serving process goes from "snapshot on
//! disk" to "first query answered". This is the number the flat snapshot
//! format exists to improve — the owned loader deep-copies and re-validates
//! every index array, while the flat loaders map `engine.pitf` read-only and
//! borrow the arrays in place, so array load cost is O(sections), not
//! O(bytes).
//!
//! Two snapshot shapes are measured, because the flat format only removes
//! the *array* cost (CSR, walks, Γ); the topic-space and vocabulary blobs
//! are still decoded into owned nested structures by every loader:
//! * `paper` — `scaled_topic_config` (64 topics/node): topic decode is a
//!   shared floor under both loaders, so the flat win is bounded by it;
//! * `arrays` — topic-light, θ = 0.01 (large Γ): the snapshot is almost
//!   entirely arrays, the shape a production reload is dominated by, and
//!   the flat loaders win by an order of magnitude.
//!
//! Three load tiers are measured, matching the production call sites:
//! * `load_owned` — deep copy + deep validation (the conservative path);
//! * `load_flat_verified` — mapped, full checksum pass (initial start);
//! * `load_flat_fast` — mapped, structural validation only (RELOAD from the
//!   server's own staged save, where checksums were verified at write time).
//!
//! `first_query_*` adds one uncached query on top of the load, i.e. the
//! end-to-end cold-start latency a RELOAD imposes on the next caller.
//!
//! Results are recorded in `crates/bench/BENCH.md`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pit::{store, PitEngine};
use pit_graph::{NodeId, TermId};
use pit_topics::SyntheticTopicConfig;
use std::path::PathBuf;

/// Build an engine snapshot on disk and return its directory and file size.
fn snapshot_dir(tag: &str, topics: SyntheticTopicConfig) -> (PathBuf, usize) {
    let spec = pit_datasets::DatasetSpec {
        name: format!("coldstart-{tag}"),
        nodes: 10_000,
        kind: pit_datasets::DatasetKind::PowerLaw { edges_per_node: 4 },
        topics,
        seed: 0xC01D,
    };
    let ds = pit_datasets::generate(&spec);
    // Serving-shaped index parameters (the EXPERIMENTS environment): L = 5,
    // R = 32, θ = 0.01. Low θ makes the Γ tables — the arrays the flat
    // format maps instead of copying — the dominant snapshot payload, as
    // they are at production scale.
    let engine = PitEngine::builder()
        .walk(pit_walk::WalkConfig::new(5, 32).with_seed(1))
        .propagation(pit_index::PropIndexConfig::with_theta(0.01))
        .build_with_vocab(ds.graph, ds.space, Some(ds.vocab));
    let dir =
        std::env::temp_dir().join(format!("pit-coldstart-bench-{tag}-{}", std::process::id()));
    store::save_engine(&dir, &engine).expect("save snapshot");
    let bytes = std::fs::metadata(dir.join(store::FLAT_FILE))
        .expect("snapshot written")
        .len() as usize;
    (dir, bytes)
}

fn first_query(engine: &PitEngine) {
    let out = engine.search_user_term(NodeId(1), TermId(0), 10);
    black_box(out.top_k.len());
}

fn bench_shape(c: &mut Criterion, tag: &str, topics: SyntheticTopicConfig) {
    let (dir, bytes) = snapshot_dir(tag, topics);
    let mut group = c.benchmark_group(format!("coldstart_{tag}"));
    group.sample_size(20);
    println!("{tag}: snapshot {bytes} bytes (engine.pitf)");

    group.bench_function("load_owned", |b| {
        b.iter(|| store::load_engine_owned(&dir).expect("owned load"));
    });
    group.bench_function("load_flat_verified", |b| {
        b.iter(|| store::load_engine(&dir).expect("verified load"));
    });
    group.bench_function("load_flat_fast", |b| {
        b.iter(|| store::load_engine_fast(&dir).expect("fast load"));
    });

    group.bench_function("first_query_owned", |b| {
        b.iter(|| {
            let engine = store::load_engine_owned(&dir).expect("owned load");
            first_query(&engine);
        });
    });
    group.bench_function("first_query_flat_fast", |b| {
        b.iter(|| {
            let engine = store::load_engine_fast(&dir).expect("fast load");
            first_query(&engine);
        });
    });

    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

fn coldstart(c: &mut Criterion) {
    // Paper-shaped topic density: the topic blob decode is the shared floor.
    bench_shape(
        c,
        "paper",
        pit_datasets::spec::scaled_topic_config(10_000, 0xC01D),
    );
    // Array-dominated: few small topics, so the snapshot is CSR/walk/Γ and
    // the flat mapping's O(sections) load shows its full margin.
    bench_shape(
        c,
        "arrays",
        SyntheticTopicConfig {
            topic_count: 200,
            query_term_count: 8,
            tail_term_count: 200,
            terms_per_topic: 4,
            topics_per_node_mean: 2.0,
            zipf_exponent: 0.9,
            seed: 0xC01D,
        },
    );
}

criterion_group!(benches, coldstart);
criterion_main!(benches);
