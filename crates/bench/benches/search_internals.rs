//! Micro-benchmarks for the online searcher's cost centers: loading the
//! per-query representative map and the Γ-table absorb step, measured
//! through full searches at contrasting candidate-set sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pit_bench::{Env, EnvConfig, Method, MethodSet};
use pit_datasets::paper_specs;
use pit_topics::KeywordQuery;

fn search_internals(c: &mut Criterion) {
    let cfg = EnvConfig {
        scale: 1500,
        n_query_terms: 3,
        n_query_users: 5,
        walk_l: 4,
        walk_r: 16,
        theta: 0.01,
        rep_target: 16,
        lambda: 0.85,
        seed: 0x51AC,
    };
    let spec = &paper_specs(cfg.scale)[0]; // data_2k (4000 topics)
    let env = Env::build(spec, &cfg, MethodSet::SUMMARIZED);
    let query: KeywordQuery = env.workload.queries().next().expect("workload non-empty");

    let mut group = c.benchmark_group("search_internals");
    group.sample_size(20);

    // Contrast the load+probe cost across materialized set sizes: k is held
    // constant, only the per-topic representative count varies.
    for reps in [4usize, 16, 64] {
        let cut = env.reps_for(Method::LrwA).truncated(reps);
        group.bench_with_input(
            BenchmarkId::new("search_by_rep_count", reps),
            &reps,
            |b, _| {
                b.iter(|| env.run_query(Method::LrwA, &query, 10, Some(&cut)));
            },
        );
    }

    // Contrast across k (pruning pressure).
    for k in [1usize, 10, 100] {
        group.bench_with_input(BenchmarkId::new("search_by_k", k), &k, |b, &k| {
            b.iter(|| env.run_query(Method::LrwA, &query, k, None));
        });
    }
    group.finish();
}

criterion_group!(benches, search_internals);
criterion_main!(benches);
