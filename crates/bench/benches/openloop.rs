//! Open-loop load generator for the serving stack: latency vs *offered* QPS.
//!
//! Closed-loop benchmarks (like `serve.rs`) wait for each reply before
//! sending the next request, so a slow server quietly throttles its own
//! load and the numbers hide queueing — the coordinated-omission trap. This
//! harness instead fixes an absolute send schedule per connection and
//! measures every reply against its *scheduled* send time: if the server
//! falls behind, the backlog shows up in the tail percentiles instead of
//! disappearing from the offered rate.
//!
//! Four connections share the offered rate round-robin (interleaved
//! schedules), mirroring the event-loop front-end's expectation of few
//! sockets carrying many requests. The sweep prints one line per rate;
//! the knee where p99 detaches from p50 is the stack's capacity.
//!
//! Run with `cargo bench -p pit-bench --bench openloop`.

use pit::{PitEngine, SummarizerKind};
use pit_server::protocol::{read_frame, write_frame};
use pit_server::{ServerConfig, ServerState};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Connections sharing the offered rate.
const CONNS: usize = 4;

/// Measurement window per offered rate.
const WINDOW: Duration = Duration::from_secs(2);

/// Offered rates to sweep (queries per second across all connections).
const RATES: [u64; 3] = [100, 400, 1200];

fn engine() -> Arc<PitEngine> {
    let spec = pit_datasets::DatasetSpec {
        name: "openloop-bench".to_string(),
        nodes: 1_500,
        kind: pit_datasets::DatasetKind::PowerLaw { edges_per_node: 4 },
        topics: pit_datasets::spec::scaled_topic_config(1_500, 0xBE7C),
        seed: 0xBE7C,
    };
    let ds = pit_datasets::generate(&spec);
    Arc::new(
        PitEngine::builder()
            .walk(pit_walk::WalkConfig::new(4, 16).with_seed(1))
            .propagation(pit_index::PropIndexConfig::with_theta(0.05))
            .summarizer(SummarizerKind::Lrw(pit_summarize::LrwConfig {
                rep_count: Some(16),
                ..pit_summarize::LrwConfig::default()
            }))
            .build_with_vocab(ds.graph, ds.space, Some(ds.vocab)),
    )
}

/// Drive one rate: every connection follows its own absolute schedule and
/// sends on schedule *even when behind* (the open-loop property). Returns
/// all latencies, measured from scheduled send time, sorted ascending.
fn sweep(addr: SocketAddr, qps: u64) -> Vec<u64> {
    let interval = Duration::from_secs_f64(CONNS as f64 / qps as f64);
    // A common epoch slightly in the future so every thread's first tick
    // is scheduled, not late.
    let epoch = Instant::now() + Duration::from_millis(100);
    let handles: Vec<_> = (0..CONNS)
        .map(|c| {
            thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                stream.set_nodelay(true).expect("nodelay");
                stream
                    .set_read_timeout(Some(Duration::from_secs(30)))
                    .expect("read timeout");
                // Interleave the CONNS schedules across the interval.
                let offset = interval.mul_f64(c as f64 / CONNS as f64);
                let mut lats = Vec::new();
                let mut tick = 0u32;
                loop {
                    let due = epoch + offset + interval * tick;
                    if due.duration_since(epoch) >= WINDOW {
                        break;
                    }
                    let now = Instant::now();
                    if due > now {
                        thread::sleep(due - now);
                    }
                    // Rotate users so the LRU cannot absorb the sweep.
                    let user = (c as u32 * 383 + tick) % 1_000;
                    write_frame(&mut stream, &format!("QUERY {user} 10 query-0")).expect("send");
                    let reply = read_frame(&mut stream).expect("recv").expect("reply");
                    assert!(reply.starts_with("TOPICS"), "unexpected reply: {reply}");
                    // Latency from the *scheduled* instant: queueing caused
                    // by running behind is charged to the server, not hidden.
                    lats.push(due.elapsed().as_micros() as u64);
                    tick += 1;
                }
                lats
            })
        })
        .collect();
    let mut all: Vec<u64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("load thread"))
        .collect();
    all.sort_unstable();
    all
}

/// Nearest-rank percentile over an ascending slice.
fn pct(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn main() {
    // `cargo bench` passes filter/--bench args; this harness ignores them.
    let engine = engine();
    let state = Arc::new(ServerState::new(
        engine,
        ServerConfig {
            workers: 2,
            cache_capacity: 0,
            query_budget: Duration::from_secs(10),
            ..ServerConfig::default()
        },
    ));
    let server = pit_server::serve(state, "127.0.0.1:0").expect("start server");
    let addr = server.addr();

    println!(
        "open-loop sweep: {CONNS} connections, {}s per rate, cold queries, \
         latency measured from scheduled send time",
        WINDOW.as_secs()
    );
    println!(
        "{:>12} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "offered_qps", "sent", "p50_us", "p90_us", "p99_us", "max_us"
    );
    for qps in RATES {
        let lats = sweep(addr, qps);
        println!(
            "{:>12} {:>8} {:>10} {:>10} {:>10} {:>10}",
            qps,
            lats.len(),
            pct(&lats, 50.0),
            pct(&lats, 90.0),
            pct(&lats, 99.0),
            lats.last().copied().unwrap_or(0)
        );
    }

    server.shutdown();
    server.join();
}
