//! Scatter-gather overhead: the same query answered by a single-node
//! engine and by in-process sharded fleets of 2 and 4. Both paths run the
//! identical search state machine over the identical Γ tables — the delta
//! is pure router coordination (probe partitioning, per-shard scatter
//! threads, reply re-ordering), which is exactly the cost a fleet pays per
//! expansion round before the wire is even involved.

use criterion::{criterion_group, criterion_main, Criterion};
use pit::{PitEngine, SummarizerKind};
use pit_graph::{NodeId, TermId};
use pit_router::ShardedEngine;
use pit_search_core::{CancelToken, NoTracer, SearchScratch};
use pit_server::{LocalServeEngine, ServeEngine};
use pit_topics::KeywordQuery;
use std::sync::Arc;

fn engine() -> Arc<PitEngine> {
    let spec = pit_datasets::DatasetSpec {
        name: "router-bench".to_string(),
        nodes: 1_500,
        kind: pit_datasets::DatasetKind::PowerLaw { edges_per_node: 4 },
        topics: pit_datasets::spec::scaled_topic_config(1_500, 0xBE7C),
        seed: 0xBE7C,
    };
    let ds = pit_datasets::generate(&spec);
    Arc::new(
        PitEngine::builder()
            .walk(pit_walk::WalkConfig::new(4, 16).with_seed(1))
            .propagation(pit_index::PropIndexConfig::with_theta(0.05))
            .summarizer(SummarizerKind::Lrw(pit_summarize::LrwConfig {
                rep_count: Some(16),
                ..pit_summarize::LrwConfig::default()
            }))
            .build_with_vocab(ds.graph, ds.space, Some(ds.vocab)),
    )
}

fn run(e: &dyn ServeEngine, user: u32, term: TermId) {
    let q = KeywordQuery::new(NodeId(user), vec![term]);
    let out = e
        .try_search(
            &q,
            10,
            &CancelToken::none(),
            &mut NoTracer,
            &mut SearchScratch::new(),
        )
        .expect("bench query");
    assert!(out.partial.is_empty(), "healthy fleet answered partial");
}

fn scatter_gather(c: &mut Criterion) {
    let engine = engine();
    let term = TermId(0);
    let single = LocalServeEngine::full(Arc::clone(&engine));
    let sharded2 = ShardedEngine::split(&engine, 2);
    let sharded4 = ShardedEngine::split(&engine, 4);

    let mut group = c.benchmark_group("router_scatter");
    group.sample_size(20);
    let mut user = 0u32;
    group.bench_function("single_node", |b| {
        b.iter(|| {
            user = (user + 1) % 1_000;
            run(&single, user, term);
        });
    });
    let mut user2 = 0u32;
    group.bench_function("sharded_2", |b| {
        b.iter(|| {
            user2 = (user2 + 1) % 1_000;
            run(&sharded2, user2, term);
        });
    });
    let mut user4 = 0u32;
    group.bench_function("sharded_4", |b| {
        b.iter(|| {
            user4 = (user4 + 1) % 1_000;
            run(&sharded4, user4, term);
        });
    });
    group.finish();
}

criterion_group!(benches, scatter_gather);
criterion_main!(benches);
