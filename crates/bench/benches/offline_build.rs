//! Criterion benchmarks for offline index construction: the sampled-walk
//! index (Algorithm 6) and the personalized propagation index (Section 5.1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pit_datasets::{generate, paper_specs};
use pit_index::{PropIndexConfig, PropagationIndex};
use pit_walk::{WalkConfig, WalkIndex, WalkIndexParts};

fn offline_build(c: &mut Criterion) {
    let spec = &paper_specs(1500)[0]; // data_2k
    let ds = generate(spec);

    let mut group = c.benchmark_group("offline_build_data2k");
    group.sample_size(10);

    for r in [8usize, 32] {
        group.bench_with_input(BenchmarkId::new("walk_index", r), &r, |b, &r| {
            b.iter(|| {
                WalkIndex::build_parts(&ds.graph, WalkConfig::new(4, r), WalkIndexParts::ALL)
            });
        });
    }

    for theta in [0.1f64, 0.05, 0.01] {
        group.bench_with_input(
            BenchmarkId::new("propagation_index", format!("theta_{theta}")),
            &theta,
            |b, &theta| {
                b.iter(|| PropagationIndex::build(&ds.graph, PropIndexConfig::with_theta(theta)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, offline_build);
criterion_main!(benches);
