//! Criterion micro-benchmarks for the online search path (Figure-5
//! methods on a data_2k-sized environment).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pit_bench::{Env, EnvConfig, Method, MethodSet};
use pit_datasets::paper_specs;
use pit_topics::KeywordQuery;

fn bench_cfg() -> EnvConfig {
    EnvConfig {
        scale: 1500, // large datasets shrink to 1000 nodes; data_2k stays 2000
        n_query_terms: 3,
        n_query_users: 5,
        walk_l: 4,
        walk_r: 16,
        theta: 0.05,
        rep_target: 16,
        lambda: 0.85,
        seed: 0xBE7C,
    }
}

fn online_search(c: &mut Criterion) {
    let cfg = bench_cfg();
    let spec = &paper_specs(cfg.scale)[0]; // data_2k
    let env = Env::build(spec, &cfg, MethodSet::ALL);
    let query: KeywordQuery = env.workload.queries().next().expect("workload non-empty");

    let mut group = c.benchmark_group("online_search_data2k");
    group.sample_size(20);
    for method in [
        Method::LrwA,
        Method::RclA,
        Method::BasePropagation,
        Method::BaseDijkstra,
        Method::BaseMatrix,
    ] {
        for k in [10usize, 100] {
            group.bench_with_input(BenchmarkId::new(method.name(), k), &k, |b, &k| {
                b.iter(|| env.run_query(method, &query, k, None));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, online_search);
criterion_main!(benches);
