//! Serving-path benchmarks: full TCP round-trips against a live `pit-server`
//! worker pool, separating the cold path (every query computed) from the
//! cached path (LRU hit), plus the cold path with every query traced
//! (`--trace-sample 1`) so the overhead of span recording is visible
//! against the untraced baseline (`cold`, where tracing is off and each
//! hook is a single branch).

use criterion::{criterion_group, criterion_main, Criterion};
use pit::{PitEngine, SummarizerKind};
use pit_server::protocol::{read_frame, write_frame};
use pit_server::{ServerConfig, ServerState};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn engine() -> Arc<PitEngine> {
    let spec = pit_datasets::DatasetSpec {
        name: "serve-bench".to_string(),
        nodes: 1_500,
        kind: pit_datasets::DatasetKind::PowerLaw { edges_per_node: 4 },
        topics: pit_datasets::spec::scaled_topic_config(1_500, 0xBE7C),
        seed: 0xBE7C,
    };
    let ds = pit_datasets::generate(&spec);
    Arc::new(
        PitEngine::builder()
            .walk(pit_walk::WalkConfig::new(4, 16).with_seed(1))
            .propagation(pit_index::PropIndexConfig::with_theta(0.05))
            .summarizer(SummarizerKind::Lrw(pit_summarize::LrwConfig {
                rep_count: Some(16),
                ..pit_summarize::LrwConfig::default()
            }))
            .build_with_vocab(ds.graph, ds.space, Some(ds.vocab)),
    )
}

fn roundtrip(stream: &mut TcpStream, line: &str) {
    write_frame(stream, line).expect("send");
    let reply = read_frame(stream).expect("recv").expect("reply");
    assert!(reply.starts_with("TOPICS"), "unexpected reply: {reply}");
}

fn served_queries(c: &mut Criterion) {
    let engine = engine();
    let budget = Duration::from_secs(30);

    // Cold server: caching disabled, so every round-trip runs the searcher.
    let cold_state = Arc::new(ServerState::new(
        Arc::clone(&engine),
        ServerConfig {
            workers: 2,
            cache_capacity: 0,
            query_budget: budget,
            ..ServerConfig::default()
        },
    ));
    let cold = pit_server::serve(cold_state, "127.0.0.1:0").expect("start cold server");

    // Cached server: one hot key, primed before measurement.
    let cached_state = Arc::new(ServerState::new(
        Arc::clone(&engine),
        ServerConfig {
            workers: 2,
            cache_capacity: 1024,
            query_budget: budget,
            ..ServerConfig::default()
        },
    ));
    let cached = pit_server::serve(cached_state, "127.0.0.1:0").expect("start cached server");

    // Traced server: cold path again, but every query records spans.
    let traced_state = Arc::new(ServerState::new(
        Arc::clone(&engine),
        ServerConfig {
            workers: 2,
            cache_capacity: 0,
            query_budget: budget,
            trace_sample: 1,
            ..ServerConfig::default()
        },
    ));
    let traced = pit_server::serve(traced_state, "127.0.0.1:0").expect("start traced server");

    let mut cold_conn = TcpStream::connect(cold.addr()).expect("connect cold");
    cold_conn.set_nodelay(true).unwrap();
    let mut cached_conn = TcpStream::connect(cached.addr()).expect("connect cached");
    cached_conn.set_nodelay(true).unwrap();
    let mut traced_conn = TcpStream::connect(traced.addr()).expect("connect traced");
    traced_conn.set_nodelay(true).unwrap();
    roundtrip(&mut cached_conn, "QUERY 7 10 query-0"); // prime the cache

    let mut group = c.benchmark_group("served_query");
    group.sample_size(20);
    let mut user = 0u32;
    group.bench_function("cold", |b| {
        b.iter(|| {
            // Rotate users so even a future default cache could not hide
            // the compute path.
            user = (user + 1) % 1_000;
            roundtrip(&mut cold_conn, &format!("QUERY {user} 10 query-0"));
        });
    });
    group.bench_function("cached", |b| {
        b.iter(|| roundtrip(&mut cached_conn, "QUERY 7 10 query-0"));
    });
    let mut traced_user = 0u32;
    group.bench_function("cold_traced", |b| {
        b.iter(|| {
            traced_user = (traced_user + 1) % 1_000;
            roundtrip(&mut traced_conn, &format!("QUERY {traced_user} 10 query-0"));
        });
    });
    group.finish();

    drop(cold_conn);
    drop(cached_conn);
    drop(traced_conn);
    cold.shutdown();
    cached.shutdown();
    traced.shutdown();
    cold.join();
    cached.join();
    traced.join();
}

criterion_group!(benches, served_queries);
criterion_main!(benches);
