//! Criterion benchmarks for per-topic summarization (the Figure-15/16
//! cost centers): RCL-A clustering + centroid selection vs. LRW-A
//! diversified PageRank + absorbing migration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pit_datasets::{generate, paper_specs};
use pit_graph::TopicId;
use pit_summarize::{
    LrwConfig, LrwSummarizer, RclConfig, RclSummarizer, SummarizeContext, Summarizer,
};
use pit_walk::{WalkConfig, WalkIndex, WalkIndexParts};

fn summarizers(c: &mut Criterion) {
    let spec = &paper_specs(1500)[0]; // data_2k
    let ds = generate(spec);
    let walks = WalkIndex::build_parts(&ds.graph, WalkConfig::new(4, 16), WalkIndexParts::ALL);
    let ctx = SummarizeContext {
        graph: &ds.graph,
        space: &ds.space,
        walks: &walks,
    };
    // A mid-popularity topic: head topics have thousands of nodes and are
    // RCL-A's worst case, measured separately.
    let mut by_size: Vec<(usize, TopicId)> = ds
        .space
        .topics()
        .map(|t| (ds.space.topic_nodes(t).len(), t))
        .collect();
    by_size.sort_unstable();
    let median_topic = by_size[by_size.len() / 2].1;
    let head_topic = by_size.last().expect("topics exist").1;

    let mut group = c.benchmark_group("summarize_per_topic_data2k");
    group.sample_size(10);
    for (label, topic) in [("median", median_topic), ("head", head_topic)] {
        group.bench_with_input(BenchmarkId::new("LRW-A", label), &topic, |b, &topic| {
            let s = LrwSummarizer::new(LrwConfig {
                rep_count: Some(16),
                ..LrwConfig::default()
            });
            b.iter(|| s.summarize(&ctx, topic));
        });
        group.bench_with_input(BenchmarkId::new("RCL-A", label), &topic, |b, &topic| {
            let s = RclSummarizer::new(RclConfig {
                c_size: 16,
                ..RclConfig::default()
            });
            b.iter(|| s.summarize(&ctx, topic));
        });
    }
    group.finish();
}

criterion_group!(benches, summarizers);
criterion_main!(benches);
