//! The container checksum: FNV-1a 64 folded over 8-byte little-endian words.
//!
//! Word-at-a-time FNV keeps the full-file `verify_checksums` pass cheap
//! enough to be the default load path while still catching every single-bit
//! flip (FNV-1a has no colliding single-bit deltas within a word, and the
//! avalanche across the multiply propagates word-to-word). The tail is
//! zero-padded into a final word, and the total byte length is folded in
//! last so payloads that differ only by trailing zeros hash differently.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64 over `bytes`, consumed as little-endian 8-byte words plus a
/// zero-padded tail, with the byte length folded in at the end.
pub fn fnv64_words(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let mut word = [0u8; 8];
        word.copy_from_slice(chunk);
        hash = fold(hash, u64::from_le_bytes(word));
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut word = [0u8; 8];
        word[..rem.len()].copy_from_slice(rem);
        hash = fold(hash, u64::from_le_bytes(word));
    }
    fold(hash, bytes.len() as u64)
}

fn fold(hash: u64, word: u64) -> u64 {
    (hash ^ word).wrapping_mul(FNV_PRIME)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_is_stable_and_distinct_from_zero_word() {
        assert_eq!(fnv64_words(b""), fnv64_words(b""));
        assert_ne!(fnv64_words(b""), fnv64_words(&[0u8; 8]));
    }

    #[test]
    fn trailing_zeros_change_the_sum() {
        // The length fold distinguishes payloads the zero-padded tail alone
        // would conflate.
        assert_ne!(fnv64_words(&[1, 2, 3]), fnv64_words(&[1, 2, 3, 0]));
        assert_ne!(fnv64_words(&[]), fnv64_words(&[0]));
    }

    #[test]
    fn every_single_bit_flip_changes_the_sum() {
        let base: Vec<u8> = (0..37u8).collect();
        let h0 = fnv64_words(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(fnv64_words(&flipped), h0, "flip at {byte}:{bit}");
            }
        }
    }
}
