//! # pit-store
//!
//! The flat snapshot container for PIT-Search: a single sectioned,
//! checksummed, alignment-validated file that the engine's big per-node
//! arrays (CSR adjacency, walk tables, Γ propagation indexes) can be viewed
//! from **without copying** — `load_engine` becomes O(validate) instead of
//! O(copy), and N co-hosted shards share the page cache for their common
//! sections.
//!
//! Three layers, bottom up:
//!
//! * [`Mapping`] — a read-only file mapping (`mmap` on unix, an aligned
//!   read-into-memory fallback elsewhere), reference-counted so borrowed
//!   views keep the bytes alive.
//! * [`Sect`] — a typed array that is either `Owned(Vec<T>)` (built in
//!   memory or deep-copied from disk) or `Mapped` (a borrowed window of a
//!   [`Mapping`]). Derefs to `&[T]` either way, so index structures store
//!   `Sect<T>` fields and the rest of the workspace keeps slicing.
//! * [`FlatFile`] / [`FlatWriter`] — the container format: a fixed header,
//!   a checksummed section table (kind, element type, offset, count,
//!   checksum per entry; payload 16-byte aligned, little-endian), and
//!   validation split into two tiers — *structural* (O(sections): header,
//!   table checksum, bounds, alignment, overlap) at open, and *payload
//!   checksums* (one zero-copy FNV pass over every section) on demand.
//!
//! What goes **in** the sections is the caller's business: the root `pit`
//! crate composes the engine snapshot out of typed arrays (via [`Pod`]) and
//! opaque blobs (the legacy per-crate codecs for small artifacts). Every
//! corruption — truncation, bit flip, misaligned offset, overlapping or
//! out-of-order table entries, a wrong checksum — surfaces as a typed
//! [`FlatError`], never a panic.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod error;
pub mod flat;
pub mod mmap;
pub mod pod;
pub mod reader;
pub mod sect;
pub mod sum;

pub use error::FlatError;
pub use flat::{FlatFile, FlatWriter, SectionInfo, FLAT_MAGIC, FLAT_VERSION, MAX_SECTIONS};
pub use mmap::Mapping;
pub use pod::{ElemType, Pod};
pub use reader::ByteReader;
pub use sect::Sect;
pub use sum::fnv64_words;
