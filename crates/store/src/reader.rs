//! Bounds-checked sequential reads over a byte region.
//!
//! Every multi-byte field the store parses — header fields, table entries,
//! the META blob's config scalars — goes through this reader, so a
//! truncated or lying length can only ever surface as a typed
//! [`FlatError::Truncated`], never an out-of-bounds slice panic.

use crate::error::FlatError;

/// A cursor over `bytes` whose every read is bounds-checked.
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Region name used in `Truncated` errors ("header", "meta", ...).
    what: &'static str,
}

impl<'a> ByteReader<'a> {
    pub fn new(bytes: &'a [u8], what: &'static str) -> Self {
        ByteReader {
            bytes,
            pos: 0,
            what,
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len().saturating_sub(self.pos)
    }

    /// Current cursor position.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Take the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], FlatError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let out = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(out)
            }
            None => Err(self.truncated()),
        }
    }

    pub fn read_u8(&mut self) -> Result<u8, FlatError> {
        Ok(self.take(1)?[0])
    }

    pub fn read_u16(&mut self) -> Result<u16, FlatError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    pub fn read_u32(&mut self) -> Result<u32, FlatError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn read_u64(&mut self) -> Result<u64, FlatError> {
        let b = self.take(8)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(b);
        Ok(u64::from_le_bytes(raw))
    }

    pub fn read_f64(&mut self) -> Result<f64, FlatError> {
        Ok(f64::from_bits(self.read_u64()?))
    }

    /// A `u64` that must fit in `usize` (offsets, counts on this machine).
    pub fn read_len(&mut self) -> Result<usize, FlatError> {
        let v = self.read_u64()?;
        usize::try_from(v).map_err(|_| FlatError::LimitExceeded {
            what: format!("{} length {v}", self.what),
        })
    }

    fn truncated(&self) -> FlatError {
        FlatError::Truncated {
            what: format!("{} (at byte {})", self.what, self.pos),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_are_sequential_and_little_endian() {
        let bytes = [0x01, 0x02, 0x00, 0x03, 0x00, 0x00, 0x00];
        let mut r = ByteReader::new(&bytes, "test");
        assert_eq!(r.read_u8().unwrap(), 1);
        assert_eq!(r.read_u16().unwrap(), 2);
        assert_eq!(r.read_u32().unwrap(), 3);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn overrun_is_a_typed_truncation() {
        let mut r = ByteReader::new(&[0u8; 3], "meta");
        match r.read_u32() {
            Err(FlatError::Truncated { what }) => assert!(what.contains("meta")),
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn take_never_wraps_on_huge_n() {
        let mut r = ByteReader::new(&[0u8; 4], "hdr");
        assert!(r.take(usize::MAX).is_err());
        // Cursor unchanged after a failed read.
        assert_eq!(r.take(4).unwrap(), &[0u8; 4]);
    }
}
