//! The flat container: header + checksummed section table + aligned
//! little-endian payloads.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset 0   header, 32 bytes:
//!              magic           [u8; 4]   "PITF"
//!              version         u16
//!              section_count   u16
//!              file_len        u64       total bytes, must equal the file
//!              table_checksum  u64       fnv64_words over the table bytes
//!              reserved        u64       zero
//! offset 32  section table, 32 bytes per entry:
//!              kind            u16       caller-defined section id (0 reserved)
//!              elem            u8        ElemType code
//!              reserved        u8        zero
//!              reserved        u32       zero
//!              offset          u64       payload start, 16-byte aligned
//!              count           u64       element count (bytes for blobs)
//!              checksum        u64       fnv64_words over the payload bytes
//! then       payloads, each padded to a 16-byte boundary, sorted by offset
//! ```
//!
//! Validation is two-tier. [`FlatFile::open`] does the *structural* tier in
//! O(sections): magic, version, counts, recorded-vs-actual length, the table
//! checksum (so a flipped bit in any table entry is caught even when payload
//! checksums are skipped), and per-entry element-code / alignment /
//! bounds / order / overlap / duplicate checks. [`FlatFile::verify_checksums`]
//! is the *payload* tier: one zero-copy FNV pass per section. Inter-section
//! padding and any trailing bytes are outside every checksum — loaders that
//! skip `verify_checksums` trade bit-flip detection in payloads for O(1)
//! opens, which is exactly the RELOAD fast path's bargain.

use crate::error::FlatError;
use crate::mmap::Mapping;
use crate::pod::{ElemType, Pod};
use crate::reader::ByteReader;
use crate::sect::Sect;
use crate::sum::fnv64_words;
use std::path::Path;
use std::sync::Arc;

/// First four bytes of every flat snapshot.
pub const FLAT_MAGIC: [u8; 4] = *b"PITF";
/// The container version this build writes and reads.
pub const FLAT_VERSION: u16 = 1;
/// Upper bound on table entries — far above the engine's ~21 sections, low
/// enough that a corrupt count can't make `open` do size-proportional work.
pub const MAX_SECTIONS: usize = 64;

const HEADER_LEN: usize = 32;
const ENTRY_LEN: usize = 32;
const ALIGN: usize = 16;

/// A validated section-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionInfo {
    pub kind: u16,
    pub elem: ElemType,
    /// Payload start in bytes from the file head.
    pub offset: usize,
    /// Element count (`elem.size()`-sized elements; bytes for blobs).
    pub count: usize,
    /// Payload length in bytes (`count * elem.size()`).
    pub byte_len: usize,
    /// `fnv64_words` over the payload bytes.
    pub checksum: u64,
}

/// Builds a flat container in memory, then writes it in one shot.
///
/// Sections are laid out in push order; the caller owns kind assignment.
/// Arrays are encoded element-by-element through [`Pod::put_le`], so the
/// writer is byte-identical across host endianness.
#[derive(Default)]
pub struct FlatWriter {
    sections: Vec<(u16, ElemType, Vec<u8>, u64)>,
}

impl FlatWriter {
    pub fn new() -> Self {
        FlatWriter::default()
    }

    /// Append a typed array section.
    pub fn push_array<T: Pod>(&mut self, kind: u16, data: &[T]) {
        let mut bytes = Vec::with_capacity(data.len().saturating_mul(std::mem::size_of::<T>()));
        for &x in data {
            x.put_le(&mut bytes);
        }
        self.sections
            .push((kind, T::ELEM, bytes, data.len() as u64));
    }

    /// Append an opaque blob section (decoded by its own codec).
    pub fn push_blob(&mut self, kind: u16, bytes: &[u8]) {
        let count = bytes.len() as u64;
        self.sections
            .push((kind, ElemType::U8, bytes.to_vec(), count));
    }

    /// Assemble the container bytes.
    pub fn to_bytes(&self) -> Result<Vec<u8>, FlatError> {
        if self.sections.len() > MAX_SECTIONS {
            return Err(FlatError::LimitExceeded {
                what: format!("section count {}", self.sections.len()),
            });
        }
        for (i, (kind, ..)) in self.sections.iter().enumerate() {
            if self.sections[..i].iter().any(|(k, ..)| k == kind) {
                return Err(FlatError::DuplicateSection { kind: *kind });
            }
        }

        let table_len =
            self.sections
                .len()
                .checked_mul(ENTRY_LEN)
                .ok_or_else(|| FlatError::LimitExceeded {
                    what: "section table size".to_string(),
                })?;
        // HEADER_LEN and ENTRY_LEN are both multiples of ALIGN, so the
        // first payload needs no leading pad.
        let mut offset = HEADER_LEN + table_len;
        let mut entries = Vec::with_capacity(self.sections.len());
        for (kind, elem, bytes, count) in &self.sections {
            entries.push((*kind, *elem, offset as u64, *count, fnv64_words(bytes)));
            offset = offset
                .checked_add(bytes.len())
                .and_then(|o| o.checked_add(ALIGN - 1))
                .map(|o| o / ALIGN * ALIGN)
                .ok_or_else(|| FlatError::LimitExceeded {
                    what: "container size".to_string(),
                })?;
        }
        // The file ends at the last payload's padded boundary, so file_len
        // is itself ALIGN-aligned (or header+table for an empty container).
        let file_len = offset;

        let mut table = Vec::with_capacity(table_len);
        for (kind, elem, off, count, sum) in &entries {
            table.extend_from_slice(&kind.to_le_bytes());
            table.push(*elem as u8);
            table.push(0);
            table.extend_from_slice(&0u32.to_le_bytes());
            table.extend_from_slice(&off.to_le_bytes());
            table.extend_from_slice(&count.to_le_bytes());
            table.extend_from_slice(&sum.to_le_bytes());
        }

        let mut out = Vec::with_capacity(file_len);
        out.extend_from_slice(&FLAT_MAGIC);
        out.extend_from_slice(&FLAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u16).to_le_bytes());
        out.extend_from_slice(&(file_len as u64).to_le_bytes());
        out.extend_from_slice(&fnv64_words(&table).to_le_bytes());
        out.extend_from_slice(&0u64.to_le_bytes());
        out.extend_from_slice(&table);
        for ((_, _, bytes, _), (_, _, off, _, _)) in self.sections.iter().zip(&entries) {
            out.resize(*off as usize, 0);
            out.extend_from_slice(bytes);
        }
        out.resize(file_len, 0);
        Ok(out)
    }

    /// Assemble and write the container to `path` (no fsync/rename — the
    /// caller's staged-commit protocol handles durability and atomicity).
    pub fn write_to(&self, path: &Path) -> Result<(), FlatError> {
        let bytes = self.to_bytes()?;
        std::fs::write(path, bytes)?;
        Ok(())
    }
}

/// A structurally validated view of a flat container file.
pub struct FlatFile {
    map: Arc<Mapping>,
    sections: Vec<SectionInfo>,
}

impl std::fmt::Debug for FlatFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlatFile")
            .field("len", &self.map.len())
            .field("mapped", &self.map.is_mapped())
            .field("sections", &self.sections)
            .finish()
    }
}

impl FlatFile {
    /// Map the file and run the structural tier: O(sections) work, no pass
    /// over payload bytes.
    pub fn open(path: &Path) -> Result<FlatFile, FlatError> {
        let map = Mapping::open(path)?;
        FlatFile::from_mapping(map)
    }

    fn from_mapping(map: Arc<Mapping>) -> Result<FlatFile, FlatError> {
        let bytes = map.bytes();
        if bytes.len() < HEADER_LEN {
            return Err(FlatError::Truncated {
                what: "header".to_string(),
            });
        }
        let mut hdr = ByteReader::new(bytes, "header");
        let magic = hdr.take(4)?;
        if magic != FLAT_MAGIC {
            return Err(FlatError::BadMagic);
        }
        let version = hdr.read_u16()?;
        if version != FLAT_VERSION {
            return Err(FlatError::UnsupportedVersion {
                found: version,
                supported: FLAT_VERSION,
            });
        }
        let section_count = hdr.read_u16()? as usize;
        if section_count > MAX_SECTIONS {
            return Err(FlatError::LimitExceeded {
                what: format!("section count {section_count}"),
            });
        }
        let file_len = hdr.read_u64()?;
        if file_len != bytes.len() as u64 {
            return Err(FlatError::LengthMismatch {
                recorded: file_len,
                actual: bytes.len() as u64,
            });
        }
        let table_checksum = hdr.read_u64()?;

        let table_len = section_count * ENTRY_LEN; // <= 64 * 32, cannot overflow
        let table_end = HEADER_LEN + table_len;
        if bytes.len() < table_end {
            return Err(FlatError::Truncated {
                what: "section table".to_string(),
            });
        }
        let table = &bytes[HEADER_LEN..table_end];
        if fnv64_words(table) != table_checksum {
            return Err(FlatError::ChecksumMismatch {
                what: "section table".to_string(),
            });
        }

        let mut sections = Vec::with_capacity(section_count);
        let mut prev: Option<SectionInfo> = None;
        let mut rd = ByteReader::new(table, "section table");
        for _ in 0..section_count {
            let kind = rd.read_u16()?;
            let elem_code = rd.read_u8()?;
            let _reserved8 = rd.read_u8()?;
            let _reserved32 = rd.read_u32()?;
            let offset = rd.read_len()?;
            let count = rd.read_len()?;
            let checksum = rd.read_u64()?;

            let elem = ElemType::from_code(elem_code).ok_or(FlatError::BadElemType {
                kind,
                code: elem_code,
            })?;
            if offset % ALIGN != 0 {
                return Err(FlatError::Misaligned {
                    kind,
                    offset: offset as u64,
                });
            }
            let byte_len =
                count
                    .checked_mul(elem.size())
                    .ok_or_else(|| FlatError::LimitExceeded {
                        what: format!("section {kind} byte length"),
                    })?;
            offset
                .checked_add(byte_len)
                .filter(|&e| e <= bytes.len())
                .ok_or_else(|| FlatError::Truncated {
                    what: format!("section {kind} payload"),
                })?;
            if offset < table_end {
                // kind 0 stands for the header/table region itself.
                return Err(FlatError::Overlap { kind, prev_kind: 0 });
            }
            if let Some(p) = prev {
                if offset < p.offset {
                    return Err(FlatError::OutOfOrder { kind });
                }
                if offset < p.offset + p.byte_len {
                    return Err(FlatError::Overlap {
                        kind,
                        prev_kind: p.kind,
                    });
                }
            }
            if sections.iter().any(|s: &SectionInfo| s.kind == kind) {
                return Err(FlatError::DuplicateSection { kind });
            }
            let info = SectionInfo {
                kind,
                elem,
                offset,
                count,
                byte_len,
                checksum,
            };
            sections.push(info);
            prev = Some(info);
        }

        Ok(FlatFile { map, sections })
    }

    /// The payload tier: one zero-copy FNV pass over every section's bytes.
    pub fn verify_checksums(&self) -> Result<(), FlatError> {
        for s in &self.sections {
            let payload = &self.map.bytes()[s.offset..s.offset + s.byte_len];
            if fnv64_words(payload) != s.checksum {
                return Err(FlatError::ChecksumMismatch {
                    what: format!("section {}", s.kind),
                });
            }
        }
        Ok(())
    }

    /// All validated table entries, in table order.
    pub fn sections(&self) -> &[SectionInfo] {
        &self.sections
    }

    /// Table entry for `kind`, if present.
    pub fn section(&self, kind: u16) -> Option<&SectionInfo> {
        self.sections.iter().find(|s| s.kind == kind)
    }

    /// Whether the table has a section of `kind`.
    pub fn has(&self, kind: u16) -> bool {
        self.section(kind).is_some()
    }

    /// The underlying mapping (for accounting: `is_mapped`, total length).
    pub fn mapping(&self) -> &Arc<Mapping> {
        &self.map
    }

    /// Raw payload bytes of `kind` (blob sections; any element type).
    pub fn bytes_of(&self, kind: u16) -> Result<&[u8], FlatError> {
        let s = self.require(kind)?;
        Ok(&self.map.bytes()[s.offset..s.offset + s.byte_len])
    }

    /// A zero-copy typed view of section `kind`.
    ///
    /// On little-endian targets this borrows the mapping directly; on
    /// big-endian targets it falls back to an owned element-by-element
    /// decode, so callers see the same values either way.
    pub fn array<T: Pod>(&self, kind: u16) -> Result<Sect<T>, FlatError> {
        let s = *self.require(kind)?;
        if s.elem != T::ELEM {
            return Err(FlatError::WrongElemType {
                kind,
                want: T::NAME,
            });
        }
        if cfg!(target_endian = "little") {
            Ok(Sect::Mapped {
                map: self.map.clone(),
                offset: s.offset,
                len: s.count,
            })
        } else {
            Ok(Sect::Owned(self.array_owned_info(&s)))
        }
    }

    /// An owned copy of section `kind`, decoded element by element (the
    /// deep-validation loader's path; endianness-independent).
    pub fn array_owned<T: Pod>(&self, kind: u16) -> Result<Vec<T>, FlatError> {
        let s = *self.require(kind)?;
        if s.elem != T::ELEM {
            return Err(FlatError::WrongElemType {
                kind,
                want: T::NAME,
            });
        }
        Ok(self.array_owned_info(&s))
    }

    fn array_owned_info<T: Pod>(&self, s: &SectionInfo) -> Vec<T> {
        let payload = &self.map.bytes()[s.offset..s.offset + s.byte_len];
        payload
            .chunks_exact(std::mem::size_of::<T>())
            .map(T::from_le)
            .collect()
    }

    fn require(&self, kind: u16) -> Result<&SectionInfo, FlatError> {
        self.section(kind).ok_or(FlatError::MissingSection { kind })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!("pit-store-flat-{}-{name}", std::process::id()));
        std::fs::write(&p, bytes).unwrap();
        p
    }

    fn sample() -> FlatWriter {
        let mut w = FlatWriter::new();
        w.push_array::<u32>(2, &[1, 2, 3, 4, 5]);
        w.push_array::<f64>(3, &[0.5, -1.25, f64::NAN]);
        w.push_blob(7, b"topic blob payload");
        w.push_array::<u64>(9, &[]);
        w
    }

    fn open_bytes(name: &str, bytes: &[u8]) -> Result<FlatFile, FlatError> {
        let p = tmp(name, bytes);
        let r = FlatFile::open(&p);
        let _ = std::fs::remove_file(&p);
        r
    }

    #[test]
    fn roundtrip_arrays_and_blobs() {
        let bytes = sample().to_bytes().unwrap();
        let f = open_bytes("roundtrip", &bytes).unwrap();
        f.verify_checksums().unwrap();
        assert_eq!(&f.array::<u32>(2).unwrap()[..], &[1, 2, 3, 4, 5]);
        let d = f.array::<f64>(3).unwrap();
        assert_eq!(d[0], 0.5);
        assert!(d[2].is_nan());
        assert_eq!(f.bytes_of(7).unwrap(), b"topic blob payload");
        assert_eq!(f.array::<u64>(9).unwrap().len(), 0);
        assert!(f.has(7));
        assert!(!f.has(100));
        assert_eq!(f.array_owned::<u32>(2).unwrap(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn mapped_views_borrow_on_little_endian() {
        let bytes = sample().to_bytes().unwrap();
        let p = tmp("mapped", &bytes);
        let f = FlatFile::open(&p).unwrap();
        let a = f.array::<u32>(2).unwrap();
        if cfg!(target_endian = "little") && f.mapping().is_mapped() {
            assert!(a.is_mapped());
            assert_eq!(a.mapped_bytes(), 20);
        }
        // The view stays alive after the FlatFile is gone (Arc-held map).
        drop(f);
        assert_eq!(&a[..], &[1, 2, 3, 4, 5]);
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn wrong_magic_and_version_are_typed() {
        let mut bytes = sample().to_bytes().unwrap();
        bytes[0] = b'X';
        assert_eq!(open_bytes("magic", &bytes).err(), Some(FlatError::BadMagic));

        let mut bytes = sample().to_bytes().unwrap();
        bytes[4] = 99;
        match open_bytes("version", &bytes) {
            Err(FlatError::UnsupportedVersion { found: 99, .. }) => {}
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_typed_at_every_boundary() {
        let bytes = sample().to_bytes().unwrap();
        for cut in [0, 3, 16, 33, 100, bytes.len() - 1] {
            let r = open_bytes("trunc", &bytes[..cut]);
            assert!(r.is_err(), "cut at {cut} must not open");
        }
    }

    #[test]
    fn table_bit_flip_is_caught_structurally() {
        let bytes = sample().to_bytes().unwrap();
        // Flip one bit in the second entry's offset field.
        let mut b = bytes.clone();
        b[HEADER_LEN + ENTRY_LEN + 8] ^= 1;
        assert!(open_bytes("tableflip", &b).is_err());
    }

    #[test]
    fn payload_bit_flip_passes_open_but_fails_verify() {
        let mut bytes = sample().to_bytes().unwrap();
        let clean = open_bytes("payflip-clean", &bytes).unwrap();
        let off = clean.section(2).unwrap().offset;
        drop(clean);
        bytes[off] ^= 1;
        // Structural open doesn't touch payload bytes — the flip slips by...
        let f = open_bytes("payflip", &bytes).unwrap();
        // ...but the checksum tier pins it to the section.
        assert_eq!(
            f.verify_checksums().err(),
            Some(FlatError::ChecksumMismatch {
                what: "section 2".to_string()
            })
        );
    }

    #[test]
    fn wrong_and_missing_elem_types_are_typed() {
        let bytes = sample().to_bytes().unwrap();
        let f = open_bytes("elem", &bytes).unwrap();
        assert!(matches!(
            f.array::<f32>(2),
            Err(FlatError::WrongElemType { kind: 2, .. })
        ));
        assert!(matches!(
            f.array::<u32>(55),
            Err(FlatError::MissingSection { kind: 55 })
        ));
    }

    #[test]
    fn writer_rejects_duplicates_and_overflow_counts() {
        let mut w = FlatWriter::new();
        w.push_array::<u32>(1, &[1]);
        w.push_array::<u32>(1, &[2]);
        assert!(matches!(
            w.to_bytes(),
            Err(FlatError::DuplicateSection { kind: 1 })
        ));

        let mut w = FlatWriter::new();
        for k in 0..(MAX_SECTIONS as u16 + 1) {
            w.push_array::<u32>(k + 1, &[]);
        }
        assert!(matches!(w.to_bytes(), Err(FlatError::LimitExceeded { .. })));
    }

    #[test]
    fn empty_container_roundtrips() {
        let bytes = FlatWriter::new().to_bytes().unwrap();
        let f = open_bytes("empty", &bytes).unwrap();
        assert!(f.sections().is_empty());
        f.verify_checksums().unwrap();
    }
}
