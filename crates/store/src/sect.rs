//! `Sect<T>` — a typed array that is either owned or a borrowed window of a
//! read-only file mapping.
//!
//! Index structures (`CsrGraph`, `WalkIndex`, `PropagationIndex`) store
//! their big per-node arrays as `Sect<T>` fields: built in memory they are
//! `Owned`, loaded from a flat snapshot they are `Mapped` — and because
//! `Sect` derefs to `&[T]`, every accessor, iterator, and algorithm in the
//! workspace keeps slicing exactly as before. Cloning a mapped section is
//! an `Arc` bump, which is what makes `PitEngine::with_delta`'s
//! copy-then-refresh cheap on a mapped engine.

use crate::mmap::Mapping;
use crate::pod::Pod;
use std::ops::Deref;
use std::sync::Arc;

/// A typed array backed by owned memory or by a snapshot mapping.
#[derive(Clone)]
pub enum Sect<T: Pod> {
    /// Built in memory (or deep-copied off disk by the owned loader).
    Owned(Vec<T>),
    /// A window of `len` elements at `offset` bytes into the mapping.
    /// Invariants (established by `FlatFile` validation, relied on by
    /// `Deref`): `offset + len * size_of::<T>() <= map.len()`, and
    /// `offset` is a multiple of the section alignment (16), which covers
    /// every `Pod` alignment.
    Mapped {
        map: Arc<Mapping>,
        offset: usize,
        len: usize,
    },
}

impl<T: Pod> Sect<T> {
    /// True when the elements are served by the snapshot mapping rather
    /// than owned memory.
    pub fn is_mapped(&self) -> bool {
        matches!(self, Sect::Mapped { .. })
    }

    /// Bytes of this section that are borrowed from a mapping (0 when
    /// owned). Feeds the `pit_reload_bytes_mapped` gauge.
    pub fn mapped_bytes(&self) -> usize {
        match self {
            Sect::Owned(_) => 0,
            Sect::Mapped { len, .. } => len.saturating_mul(std::mem::size_of::<T>()),
        }
    }

    /// Logical size in bytes (`len * size_of::<T>()`) regardless of
    /// backing — the number `heap_size_bytes` inventories have always
    /// reported.
    pub fn size_bytes(&self) -> usize {
        self.len().saturating_mul(std::mem::size_of::<T>())
    }

    /// Deep-copy into owned memory (no-op clone of the data for `Owned`).
    pub fn to_owned_vec(&self) -> Vec<T> {
        self.as_slice().to_vec()
    }

    /// The elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        match self {
            Sect::Owned(v) => v.as_slice(),
            Sect::Mapped { map, offset, len } => {
                let bytes = map.bytes();
                debug_assert!(offset + len * std::mem::size_of::<T>() <= bytes.len());
                debug_assert_eq!(offset % std::mem::align_of::<T>(), 0);
                // SAFETY: FlatFile validated at open that the window
                // [offset, offset + len * size_of::<T>()) lies inside the
                // mapping and that `offset` is 16-byte aligned (>= align of
                // any Pod); `Pod` guarantees T is valid for every bit
                // pattern and padding-free; the mapping is read-only and
                // lives as long as the `Arc` held here.
                unsafe { std::slice::from_raw_parts(bytes.as_ptr().add(*offset).cast::<T>(), *len) }
            }
        }
    }
}

impl<T: Pod> Deref for Sect<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<'a, T: Pod> IntoIterator for &'a Sect<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl<T: Pod> From<Vec<T>> for Sect<T> {
    fn from(v: Vec<T>) -> Self {
        Sect::Owned(v)
    }
}

impl<T: Pod> Default for Sect<T> {
    fn default() -> Self {
        Sect::Owned(Vec::new())
    }
}

impl<T: Pod + PartialEq> PartialEq for Sect<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Pod + std::fmt::Debug> std::fmt::Debug for Sect<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let tag = if self.is_mapped() { "Mapped" } else { "Owned" };
        write!(f, "Sect::{tag}(")?;
        std::fmt::Debug::fmt(&self.as_slice(), f)?;
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_sect_derefs_like_a_slice() {
        let s: Sect<u32> = vec![1, 2, 3].into();
        assert_eq!(&s[..], &[1, 2, 3]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_mapped());
        assert_eq!(s.mapped_bytes(), 0);
        assert_eq!(s.size_bytes(), 12);
    }
}
