//! Plain-old-data element types the flat container can store as typed
//! arrays and view in place.

/// Element-type codes recorded in the section table, so a reader can refuse
/// a section whose stored type differs from the one the caller expects
/// (catching both corruption and schema drift with a typed error instead of
/// reinterpreted garbage).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ElemType {
    /// Opaque bytes (blob sections decoded by their own codecs).
    U8 = 1,
    U32 = 2,
    U64 = 3,
    F32 = 4,
    F64 = 5,
}

impl ElemType {
    /// Decode a table code. Unknown codes are corruption, not a panic.
    pub fn from_code(code: u8) -> Option<ElemType> {
        match code {
            1 => Some(ElemType::U8),
            2 => Some(ElemType::U32),
            3 => Some(ElemType::U64),
            4 => Some(ElemType::F32),
            5 => Some(ElemType::F64),
            _ => None,
        }
    }

    /// Element size in bytes.
    pub fn size(self) -> usize {
        match self {
            ElemType::U8 => 1,
            ElemType::U32 | ElemType::F32 => 4,
            ElemType::U64 | ElemType::F64 => 8,
        }
    }
}

/// Types that can live in a flat-snapshot array section and be viewed
/// directly over the little-endian file bytes.
///
/// # Safety
///
/// Implementors must guarantee all of:
/// * the type has no padding and `size_of::<Self>() == Self::ELEM.size()`;
/// * every bit pattern of that size is a valid value (no niches);
/// * alignment is at most 8 (section payloads are 16-byte aligned within
///   the file and the mapping base is at least 8-byte aligned);
/// * on little-endian targets the in-memory representation equals the
///   on-disk little-endian representation ([`Pod::put_le`]/[`Pod::from_le`]
///   agree with a plain byte copy).
///
/// Newtype wrappers (`#[repr(transparent)]` over a primitive) implement
/// this by delegating to the primitive.
// SAFETY: unsafe trait — the obligations implementors must uphold (no
// padding, no niches, alignment <= 8, LE == in-memory repr) are spelled
// out in the `# Safety` section above; `Sect::<T>::mapped` relies on them.
pub unsafe trait Pod: Copy + Send + Sync + 'static {
    /// The table code for this element type.
    const ELEM: ElemType;
    /// Human-readable name for error messages.
    const NAME: &'static str;

    /// Append the little-endian encoding of `self` to `out`.
    fn put_le(self, out: &mut Vec<u8>);

    /// Decode one element from exactly `ELEM.size()` little-endian bytes.
    /// Callers guarantee the length; implementations must not panic on it
    /// (use infallible array conversion over a checked prefix).
    fn from_le(bytes: &[u8]) -> Self;
}

macro_rules! pod_primitive {
    ($t:ty, $elem:expr, $name:literal) => {
        // SAFETY: primitive integer/float types have no padding, no niches,
        // alignment == size <= 8, and native little-endian layout on the
        // little-endian targets where mapped views are enabled.
        unsafe impl Pod for $t {
            const ELEM: ElemType = $elem;
            const NAME: &'static str = $name;

            fn put_le(self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }

            fn from_le(bytes: &[u8]) -> Self {
                let mut raw = [0u8; std::mem::size_of::<$t>()];
                let n = raw.len().min(bytes.len());
                raw[..n].copy_from_slice(&bytes[..n]);
                <$t>::from_le_bytes(raw)
            }
        }
    };
}

pod_primitive!(u8, ElemType::U8, "u8");
pod_primitive!(u32, ElemType::U32, "u32");
pod_primitive!(u64, ElemType::U64, "u64");
pod_primitive!(f32, ElemType::F32, "f32");
pod_primitive!(f64, ElemType::F64, "f64");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_every_primitive() {
        let mut buf = Vec::new();
        0xDEAD_BEEFu32.put_le(&mut buf);
        assert_eq!(<u32 as Pod>::from_le(&buf), 0xDEAD_BEEF);
        buf.clear();
        f64::NAN.put_le(&mut buf);
        // Bit-exact, including NaN payloads.
        assert_eq!(<f64 as Pod>::from_le(&buf).to_bits(), f64::NAN.to_bits());
    }

    #[test]
    fn elem_codes_roundtrip_and_unknown_is_none() {
        for e in [
            ElemType::U8,
            ElemType::U32,
            ElemType::U64,
            ElemType::F32,
            ElemType::F64,
        ] {
            assert_eq!(ElemType::from_code(e as u8), Some(e));
        }
        assert_eq!(ElemType::from_code(0), None);
        assert_eq!(ElemType::from_code(99), None);
    }
}
