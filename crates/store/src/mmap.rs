//! A read-only file mapping with an aligned in-memory fallback.
//!
//! On unix the snapshot file is `mmap`ed `PROT_READ`/`MAP_PRIVATE`: opening
//! costs O(1) regardless of size, untouched sections never become resident,
//! and N co-hosted shard processes mapping the same snapshot share one copy
//! of the page cache. Everywhere else (and when `mmap` itself fails) the
//! file is read into an 8-byte-aligned heap buffer — same validation, same
//! `Sect` views, just resident up front.
//!
//! Snapshots are immutable by construction: the store writes into a staging
//! directory and renames whole snapshots into place, and replaces them the
//! same way — nothing truncates or rewrites a live file, which is what makes
//! handing out long-lived borrowed views of the mapping sound.

use std::fs::File;
use std::io::Read;
use std::path::Path;
use std::sync::Arc;

enum Backing {
    #[cfg(unix)]
    Mmap { ptr: *const u8, len: usize },
    /// The fallback: file bytes in a `Vec<u64>` so the base pointer is
    /// 8-byte aligned (the strictest element alignment the format stores).
    Heap { buf: Vec<u64>, len: usize },
}

/// A reference-counted, read-only view of a whole snapshot file.
pub struct Mapping {
    backing: Backing,
}

// SAFETY: the mapping is read-only (`PROT_READ`) and the backing file is
// immutable under the store's staged-rename protocol, so concurrent reads
// from any thread observe the same frozen bytes; the heap fallback is an
// ordinary owned buffer.
unsafe impl Send for Mapping {}
// SAFETY: see `Send` — shared references only ever read immutable bytes.
unsafe impl Sync for Mapping {}

impl Mapping {
    /// Map (or read) the whole file at `path`.
    pub fn open(path: &Path) -> std::io::Result<Arc<Mapping>> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        let len = usize::try_from(len).map_err(|_| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "file exceeds address space",
            )
        })?;
        #[cfg(unix)]
        if len > 0 {
            if let Some(ptr) = unix_map(&file, len) {
                return Ok(Arc::new(Mapping {
                    backing: Backing::Mmap { ptr, len },
                }));
            }
        }
        // Fallback: read into an 8-aligned buffer (also covers len == 0,
        // which mmap refuses).
        let words = len.div_ceil(8);
        let mut buf = vec![0u64; words];
        {
            // SAFETY-free view of the buffer as bytes for reading: done via
            // safe little-endian reassembly below instead of a cast — read
            // into a temporary and repack.
            let mut tmp = vec![0u8; len];
            file.read_exact(&mut tmp)?;
            for (i, chunk) in tmp.chunks(8).enumerate() {
                let mut word = [0u8; 8];
                word[..chunk.len()].copy_from_slice(chunk);
                buf[i] = u64::from_ne_bytes(word);
            }
        }
        Ok(Arc::new(Mapping {
            backing: Backing::Heap { buf, len },
        }))
    }

    /// The file's bytes. The base pointer is at least 8-byte aligned.
    pub fn bytes(&self) -> &[u8] {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mmap { ptr, len } => {
                // SAFETY: `ptr` is the live `mmap` base covering `len`
                // readable bytes; the region stays mapped until `Drop`, and
                // the returned borrow cannot outlive `self`.
                unsafe { std::slice::from_raw_parts(*ptr, *len) }
            }
            Backing::Heap { buf, len } => heap_bytes(buf, *len),
        }
    }

    /// True when the bytes are served by a real file mapping (as opposed to
    /// the resident heap fallback).
    pub fn is_mapped(&self) -> bool {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mmap { .. } => true,
            Backing::Heap { .. } => false,
        }
    }

    /// Total bytes this mapping covers.
    pub fn len(&self) -> usize {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mmap { len, .. } => *len,
            Backing::Heap { len, .. } => *len,
        }
    }

    /// True when the file was empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// View the heap fallback's word buffer as its original bytes.
fn heap_bytes(buf: &[u64], len: usize) -> &[u8] {
    // SAFETY: `buf` is a live `&[u64]` allocation of at least `len` bytes
    // (len <= buf.len() * 8 by construction in `open`); u64 has no padding,
    // every byte of it is initialized, and u8 has alignment 1.
    unsafe { std::slice::from_raw_parts(buf.as_ptr().cast::<u8>(), len.min(buf.len() * 8)) }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Backing::Mmap { ptr, len } = &self.backing {
            // SAFETY: `ptr`/`len` describe exactly the region returned by
            // `mmap` in `unix_map`, unmapped exactly once, and no `bytes()`
            // borrow can outlive `self`.
            unsafe {
                munmap((*ptr).cast_mut().cast(), *len);
            }
        }
    }
}

#[cfg(unix)]
use std::os::unix::io::AsRawFd;

// Minimal raw bindings: std already links libc on unix, so declaring the
// two symbols we need avoids a dependency. Constants are identical on
// Linux and the BSD family for these two flags.
#[cfg(unix)]
extern "C" {
    fn mmap(
        addr: *mut std::ffi::c_void,
        len: usize,
        prot: i32,
        flags: i32,
        fd: i32,
        offset: i64,
    ) -> *mut std::ffi::c_void;
    fn munmap(addr: *mut std::ffi::c_void, len: usize) -> i32;
}

#[cfg(unix)]
const PROT_READ: i32 = 1;
#[cfg(unix)]
const MAP_PRIVATE: i32 = 2;

/// `mmap` the whole file read-only; `None` on any failure (caller falls
/// back to reading).
#[cfg(unix)]
fn unix_map(file: &File, len: usize) -> Option<*const u8> {
    // SAFETY: fd is a live, readable file descriptor; len > 0 (checked by
    // the caller); a MAP_PRIVATE/PROT_READ mapping of a regular file has no
    // aliasing obligations. MAP_FAILED (-1) is checked before use.
    let ptr = unsafe {
        mmap(
            std::ptr::null_mut(),
            len,
            PROT_READ,
            MAP_PRIVATE,
            file.as_raw_fd(),
            0,
        )
    };
    if ptr as isize == -1 || ptr.is_null() {
        return None;
    }
    Some(ptr.cast_const().cast())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!("pit-store-map-{}-{name}", std::process::id()));
        std::fs::write(&p, bytes).unwrap();
        p
    }

    #[test]
    fn mapping_reads_back_the_file_bytes() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let p = tmp("roundtrip", &data);
        let m = Mapping::open(&p).unwrap();
        assert_eq!(m.bytes(), &data[..]);
        assert_eq!(m.len(), data.len());
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn empty_file_maps_to_empty_bytes() {
        let p = tmp("empty", b"");
        let m = Mapping::open(&p).unwrap();
        assert!(m.is_empty());
        assert_eq!(m.bytes(), b"");
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn base_pointer_is_at_least_8_aligned() {
        let p = tmp("align", &[7u8; 123]);
        let m = Mapping::open(&p).unwrap();
        assert_eq!(m.bytes().as_ptr() as usize % 8, 0);
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(Mapping::open(Path::new("/no/such/pit-store-file")).is_err());
    }
}
