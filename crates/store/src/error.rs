//! The typed corruption taxonomy of the flat container.
//!
//! Every way a flat snapshot can be malformed maps to exactly one variant,
//! so the fuzz battery can assert "typed error, never a panic" and callers
//! can distinguish version skew (re-run the offline stage) from corruption
//! (restore from a good copy).

use std::fmt;

/// Why a flat snapshot was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlatError {
    /// The file does not start with the `PITF` magic — not a flat snapshot.
    BadMagic,
    /// The container version is one this build does not read.
    UnsupportedVersion { found: u16, supported: u16 },
    /// The file ends before the named region does.
    Truncated { what: String },
    /// A section's payload offset violates the 16-byte alignment rule.
    Misaligned { kind: u16, offset: u64 },
    /// Two sections' payload ranges intersect.
    Overlap { kind: u16, prev_kind: u16 },
    /// Section table entries are not sorted by payload offset.
    OutOfOrder { kind: u16 },
    /// The same section kind appears twice in the table.
    DuplicateSection { kind: u16 },
    /// A checksum does not match the named region's bytes.
    ChecksumMismatch { what: String },
    /// A section carries an element-type code this build does not know.
    BadElemType { kind: u16, code: u8 },
    /// A section exists but holds a different element type than requested.
    WrongElemType { kind: u16, want: &'static str },
    /// A required section kind is absent from the table.
    MissingSection { kind: u16 },
    /// A header or table field exceeds a format limit (section count,
    /// payload size) — rejected before any size-proportional work.
    LimitExceeded { what: String },
    /// The header's recorded file length disagrees with the actual file.
    LengthMismatch { recorded: u64, actual: u64 },
    /// The operating system failed to open, read, or map the file.
    Io(String),
}

impl fmt::Display for FlatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlatError::BadMagic => write!(f, "bad magic (not a flat snapshot)"),
            FlatError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported-version: flat container v{found}, this build reads v{supported}"
            ),
            FlatError::Truncated { what } => write!(f, "truncated {what}"),
            FlatError::Misaligned { kind, offset } => {
                write!(
                    f,
                    "section {kind} payload at {offset} is not 16-byte aligned"
                )
            }
            FlatError::Overlap { kind, prev_kind } => {
                write!(f, "section {kind} overlaps section {prev_kind}")
            }
            FlatError::OutOfOrder { kind } => {
                write!(f, "section {kind} is out of payload order in the table")
            }
            FlatError::DuplicateSection { kind } => {
                write!(f, "section kind {kind} appears twice")
            }
            FlatError::ChecksumMismatch { what } => write!(f, "checksum mismatch in {what}"),
            FlatError::BadElemType { kind, code } => {
                write!(f, "section {kind} has unknown element-type code {code}")
            }
            FlatError::WrongElemType { kind, want } => {
                write!(f, "section {kind} does not hold {want} elements")
            }
            FlatError::MissingSection { kind } => write!(f, "missing section kind {kind}"),
            FlatError::LimitExceeded { what } => write!(f, "{what} exceeds the format limit"),
            FlatError::LengthMismatch { recorded, actual } => write!(
                f,
                "header records {recorded} bytes but the file holds {actual}"
            ),
            FlatError::Io(e) => write!(f, "i/o: {e}"),
        }
    }
}

impl std::error::Error for FlatError {}

impl From<std::io::Error> for FlatError {
    fn from(e: std::io::Error) -> Self {
        FlatError::Io(e.to_string())
    }
}
