//! Property-based tests for the sampled-walk index (Algorithm 6 invariants).

use pit_graph::{GraphBuilder, NodeId};
use pit_walk::{WalkConfig, WalkIndex};
use proptest::prelude::*;
use rustc_hash::FxHashSet;

fn graph_strategy() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (3usize..=20).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32).prop_filter("no self-loops", |(a, b)| a != b);
        proptest::collection::vec(edge, n..5 * n).prop_map(move |mut es| {
            let mut seen = FxHashSet::default();
            es.retain(|&(a, b)| seen.insert((a, b)));
            (n, es)
        })
    })
}

fn build(
    n: usize,
    edges: &[(u32, u32)],
    l: usize,
    r: usize,
    seed: u64,
) -> (pit_graph::CsrGraph, WalkIndex) {
    let mut b = GraphBuilder::new(n);
    for &(u, v) in edges {
        b.add_edge(NodeId(u), NodeId(v), 0.5).unwrap();
    }
    let g = b.build().unwrap();
    let idx = WalkIndex::build(&g, WalkConfig::new(l, r).with_seed(seed));
    (g, idx)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Stored walks are duplicate-free first-visit sequences of length ≤ L,
    /// every step follows a real edge, and the start node never re-appears.
    #[test]
    fn walks_are_valid_paths((n, edges) in graph_strategy(), seed in 0u64..100) {
        let l = 4;
        let (g, idx) = build(n, &edges, l, 4, seed);
        for w in g.nodes() {
            for walk in idx.walks(w) {
                prop_assert!(walk.len() <= l);
                prop_assert!(!walk.contains(&w));
                let mut dedup = walk.to_vec();
                dedup.sort_unstable();
                dedup.dedup();
                prop_assert_eq!(dedup.len(), walk.len(), "duplicates in walk");
                // Each stored node is reachable from the previous stored node
                // via graph edges (with possibly revisited nodes skipped in
                // between, the stored sequence is a subsequence of the raw
                // walk — consecutive stored nodes need not be adjacent, but
                // the FIRST stored node must be an out-neighbor of the start).
                if let Some(&first) = walk.first() {
                    prop_assert!(
                        g.out_neighbors(w).contains(&first),
                        "first step {first} is not a neighbor of {w}"
                    );
                }
            }
        }
    }

    /// The reach index is consistent with the stored walks: `x ∈ I_L[v]`
    /// iff some stored walk of `x` contains `v`.
    #[test]
    fn reach_matches_walks((n, edges) in graph_strategy(), seed in 0u64..100) {
        let (g, idx) = build(n, &edges, 4, 4, seed);
        for v in g.nodes() {
            for x in g.nodes() {
                if x == v {
                    continue;
                }
                let in_reach = idx.reaches(x, v);
                let in_walks = idx.walks(x).any(|walk| walk.contains(&v));
                prop_assert_eq!(
                    in_reach, in_walks,
                    "reach/walk disagreement for origin {} target {}", x, v
                );
            }
        }
    }

    /// Visit frequencies are bounded by 1 and zero whenever a node is never
    /// stored at that iteration in any walk.
    #[test]
    fn frequencies_are_bounded((n, edges) in graph_strategy(), seed in 0u64..100) {
        let l = 4;
        let (g, idx) = build(n, &edges, l, 4, seed);
        for j in 1..=l {
            for v in g.nodes() {
                let f = idx.visit_freq(j, v);
                prop_assert!((0.0..=(l as f64)).contains(&f), "H[{}][{}] = {}", j, v, f);
            }
        }
    }

    /// Determinism: same seed, same index; different seed, (almost surely on
    /// branching graphs) different walks — we only assert equality here.
    #[test]
    fn deterministic_rebuild((n, edges) in graph_strategy(), seed in 0u64..100) {
        let (g, a) = build(n, &edges, 3, 4, seed);
        let (_, b) = build(n, &edges, 3, 4, seed);
        for w in g.nodes() {
            for i in 0..4 {
                prop_assert_eq!(a.walk(w, i), b.walk(w, i));
            }
            prop_assert_eq!(a.reach_set(w), b.reach_set(w));
        }
    }
}
