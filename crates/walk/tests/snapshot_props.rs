//! Snapshot codec robustness for the walk index: exact roundtrip on valid
//! input, `SnapshotError` — never a panic — on truncated or corrupted input.

use pit_graph::{GraphBuilder, NodeId};
use pit_walk::{snapshot, WalkConfig, WalkIndex};
use proptest::prelude::*;
use rustc_hash::FxHashSet;

fn graph_strategy() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (3usize..=14).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32).prop_filter("no self-loops", |(a, b)| a != b);
        proptest::collection::vec(edge, n..4 * n).prop_map(move |mut es| {
            let mut seen = FxHashSet::default();
            es.retain(|&(a, b)| seen.insert((a, b)));
            (n, es)
        })
    })
}

fn build(n: usize, edges: &[(u32, u32)], seed: u64) -> WalkIndex {
    let mut b = GraphBuilder::new(n);
    for &(u, v) in edges {
        b.add_edge(NodeId(u), NodeId(v), 0.5).unwrap();
    }
    WalkIndex::build(&b.build().unwrap(), WalkConfig::new(4, 6).with_seed(seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// encode ∘ decode ∘ encode is the identity on bytes.
    #[test]
    fn roundtrip_is_byte_exact((n, edges) in graph_strategy(), seed in 0u64..1000) {
        let bytes = snapshot::encode(&build(n, &edges, seed));
        let restored = snapshot::decode(&bytes).expect("valid snapshot decodes");
        prop_assert_eq!(snapshot::encode(&restored).as_ref(), bytes.as_ref());
    }

    /// Every strict prefix of a snapshot is rejected with an error.
    #[test]
    fn truncation_always_errors((n, edges) in graph_strategy(), cut in 0usize..100_000) {
        let bytes = snapshot::encode(&build(n, &edges, 3));
        let cut = cut % bytes.len();
        prop_assert!(snapshot::decode(&bytes[..cut]).is_err());
    }

    /// Single-byte corruption anywhere never panics.
    #[test]
    fn corruption_never_panics(
        (n, edges) in graph_strategy(),
        pos in 0usize..100_000,
        xor in 1u8..=255,
    ) {
        let bytes = snapshot::encode(&build(n, &edges, 3));
        let mut corrupt = bytes.to_vec();
        let pos = pos % corrupt.len();
        corrupt[pos] ^= xor;
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            snapshot::decode(&corrupt).map(|_| ())
        }));
        prop_assert!(outcome.is_ok(), "decode panicked on byte {} ^ {}", pos, xor);
    }
}
