//! Binary snapshots of a [`WalkIndex`].
//!
//! The paper reports ~7 hours to build the walk index at full Twitter scale
//! ("building the L-length random walk index required around seven hours…
//! Since it is only ran once, this cost is amortized" — Section 6.6);
//! persisting the result is what makes that amortization real. Format:
//! little-endian, versioned, length-prefixed arrays, validated on load.

use crate::engine::{WalkConfig, WalkPolicy};
use crate::index::{WalkIndex, WalkIndexParts};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use pit_graph::NodeId;

const MAGIC: &[u8; 4] = b"PITW";
const VERSION: u8 = 1;

/// Snapshot decoding error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotError(pub String);

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corrupt walk-index snapshot: {}", self.0)
    }
}
impl std::error::Error for SnapshotError {}

fn err(msg: &str) -> SnapshotError {
    SnapshotError(msg.to_string())
}

/// Serialize an index into a self-describing buffer.
pub fn encode(idx: &WalkIndex) -> Bytes {
    let mut buf = BytesMut::with_capacity(
        64 + idx.walk_offsets.len() * 4
            + idx.walk_data.len() * 4
            + idx.freq.len() * 4
            + idx.reach_offsets.len() * 8
            + idx.reach_data.len() * 4,
    );
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u32_le(idx.config.l as u32);
    buf.put_u32_le(idx.config.r as u32);
    buf.put_u8(match idx.config.policy {
        WalkPolicy::UniformNeighbor => 0,
        WalkPolicy::TransitionWeighted => 1,
    });
    buf.put_u64_le(idx.config.seed);
    buf.put_u64_le(idx.node_count as u64);
    buf.put_u8(
        u8::from(idx.parts.walks)
            | (u8::from(idx.parts.freq) << 1)
            | (u8::from(idx.parts.reach) << 2),
    );

    buf.put_u64_le(idx.walk_offsets.len() as u64);
    for &o in &idx.walk_offsets {
        buf.put_u32_le(o);
    }
    buf.put_u64_le(idx.walk_data.len() as u64);
    for &n in &idx.walk_data {
        buf.put_u32_le(n.0);
    }
    buf.put_u64_le(idx.freq.len() as u64);
    for &f in &idx.freq {
        buf.put_f32_le(f);
    }
    buf.put_u64_le(idx.reach_offsets.len() as u64);
    for &o in &idx.reach_offsets {
        buf.put_u64_le(o);
    }
    buf.put_u64_le(idx.reach_data.len() as u64);
    for &n in &idx.reach_data {
        buf.put_u32_le(n.0);
    }
    buf.freeze()
}

/// Deserialize an index previously produced by [`encode`].
pub fn decode(mut data: &[u8]) -> Result<WalkIndex, SnapshotError> {
    if data.len() < 4 + 1 + 4 + 4 + 1 + 8 + 8 + 1 {
        return Err(err("truncated header"));
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(err("bad magic"));
    }
    if data.get_u8() != VERSION {
        return Err(err("unsupported version"));
    }
    let l = data.get_u32_le() as usize;
    let r = data.get_u32_le() as usize;
    let policy = match data.get_u8() {
        0 => WalkPolicy::UniformNeighbor,
        1 => WalkPolicy::TransitionWeighted,
        _ => return Err(err("unknown walk policy")),
    };
    let seed = data.get_u64_le();
    let node_count = data.get_u64_le() as usize;
    let flags = data.get_u8();
    let parts = WalkIndexParts {
        walks: flags & 1 != 0,
        freq: flags & 2 != 0,
        reach: flags & 4 != 0,
    };
    if l == 0 || r == 0 {
        return Err(err("invalid L or R"));
    }
    if node_count > pit_graph::snapshot::MAX_NODES || l > 1 << 16 || r > 1 << 24 {
        return Err(err("header field exceeds format limit"));
    }

    fn read_len(data: &mut &[u8], elem: usize, what: &str) -> Result<usize, SnapshotError> {
        if data.remaining() < 8 {
            return Err(err(&format!("truncated {what} length")));
        }
        let len = data.get_u64_le() as usize;
        if data.remaining() < len.saturating_mul(elem) {
            return Err(err(&format!("truncated {what} payload")));
        }
        Ok(len)
    }

    let len = read_len(&mut data, 4, "walk offsets")?;
    let mut walk_offsets = Vec::with_capacity(len);
    for _ in 0..len {
        walk_offsets.push(data.get_u32_le());
    }
    let len = read_len(&mut data, 4, "walk data")?;
    let mut walk_data = Vec::with_capacity(len);
    for _ in 0..len {
        walk_data.push(NodeId(data.get_u32_le()));
    }
    let len = read_len(&mut data, 4, "frequencies")?;
    let mut freq = Vec::with_capacity(len);
    for _ in 0..len {
        freq.push(data.get_f32_le());
    }
    let len = read_len(&mut data, 8, "reach offsets")?;
    let mut reach_offsets = Vec::with_capacity(len);
    for _ in 0..len {
        reach_offsets.push(data.get_u64_le());
    }
    let len = read_len(&mut data, 4, "reach data")?;
    let mut reach_data = Vec::with_capacity(len);
    for _ in 0..len {
        reach_data.push(NodeId(data.get_u32_le()));
    }
    if data.has_remaining() {
        return Err(err("trailing bytes"));
    }

    // Structural validation.
    if parts.walks && walk_offsets.len() != node_count.saturating_mul(r) + 1 {
        return Err(err("walk offset table has wrong length"));
    }
    if parts.freq && freq.len() != l.saturating_mul(node_count) {
        return Err(err("frequency table has wrong length"));
    }
    if parts.reach && reach_offsets.len() != node_count + 1 {
        return Err(err("reach offset table has wrong length"));
    }
    if parts.walks {
        if walk_offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(err("walk offsets not monotonic"));
        }
        if walk_offsets.last().copied().unwrap_or(0) as usize != walk_data.len() {
            return Err(err("walk offsets do not cover walk data"));
        }
    }
    if parts.reach {
        if reach_offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(err("reach offsets not monotonic"));
        }
        if reach_offsets.last().copied().unwrap_or(0) as usize != reach_data.len() {
            return Err(err("reach offsets do not cover reach data"));
        }
    }
    for n in walk_data.iter().chain(reach_data.iter()) {
        if n.index() >= node_count {
            return Err(err("node id out of range"));
        }
    }

    Ok(WalkIndex {
        config: WalkConfig { l, r, policy, seed },
        node_count,
        parts,
        walk_offsets: walk_offsets.into(),
        walk_data: walk_data.into(),
        freq: freq.into(),
        reach_offsets: reach_offsets.into(),
        reach_data: reach_data.into(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pit_graph::fixtures::figure1_graph;

    fn sample() -> WalkIndex {
        WalkIndex::build(&figure1_graph(), WalkConfig::new(4, 8).with_seed(7))
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let idx = sample();
        let restored = decode(&encode(&idx)).unwrap();
        assert_eq!(restored.config(), idx.config());
        assert_eq!(restored.node_count(), idx.node_count());
        for w in (0..idx.node_count()).map(|i| NodeId(i as u32)) {
            for i in 0..idx.r() {
                assert_eq!(restored.walk(w, i), idx.walk(w, i));
            }
            assert_eq!(restored.reach_set(w), idx.reach_set(w));
            for j in 1..=idx.l() {
                assert_eq!(restored.visit_freq(j, w), idx.visit_freq(j, w));
            }
        }
    }

    #[test]
    fn partial_index_roundtrip() {
        let idx = WalkIndex::build_parts(
            &figure1_graph(),
            WalkConfig::new(3, 4),
            WalkIndexParts::FOR_LRW,
        );
        let restored = decode(&encode(&idx)).unwrap();
        assert_eq!(restored.walk(NodeId(0), 0), idx.walk(NodeId(0), 0));
        // Reach was not materialized: access must panic on both.
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            restored.reach_set(NodeId(0));
        }));
        assert!(r.is_err());
    }

    #[test]
    fn rejects_corruption() {
        let idx = sample();
        let bytes = encode(&idx);
        // Bad magic.
        let mut b = bytes.to_vec();
        b[0] = b'X';
        assert!(decode(&b).is_err());
        // Truncation at every prefix of the header region.
        for cut in [3usize, 8, 20, 30] {
            assert!(decode(&bytes[..cut.min(bytes.len())]).is_err());
        }
        // Trailing garbage.
        let mut b = bytes.to_vec();
        b.push(0);
        assert!(decode(&b).is_err());
        // Out-of-range node id in walk data: flip a stored id to a huge one.
        let mut b = bytes.to_vec();
        // walk data begins after header + offsets; find a plausible position
        // by corrupting the last 4 bytes (reach data tail).
        let n = b.len();
        b[n - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode(&b).is_err());
    }
}
