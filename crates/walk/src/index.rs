//! The sampled walk index of Algorithm 6 (`INVERTTVHIT_INDEX`).

use crate::engine::{sample_walk, WalkConfig};
use pit_graph::{CsrGraph, NodeId};
use pit_store::Sect;

/// Which parts of the index to materialize.
///
/// LRW-A needs `walks` + `freq`; RCL-A needs `reach`; building only what an
/// experiment uses keeps the memory profile honest at the larger scales.
#[derive(Clone, Copy, Debug)]
pub struct WalkIndexParts {
    /// Store the sampled walks `I[R][n]` themselves.
    pub walks: bool,
    /// Store the time-variant visiting frequency `H[L][n]`.
    pub freq: bool,
    /// Store the reachability index `I_L[n]`.
    pub reach: bool,
}

impl WalkIndexParts {
    /// Everything (the literal Algorithm 6).
    pub const ALL: WalkIndexParts = WalkIndexParts {
        walks: true,
        freq: true,
        reach: true,
    };
    /// Just what LRW-A consumes.
    pub const FOR_LRW: WalkIndexParts = WalkIndexParts {
        walks: true,
        freq: true,
        reach: false,
    };
    /// Just what RCL-A consumes.
    pub const FOR_RCL: WalkIndexParts = WalkIndexParts {
        walks: false,
        freq: false,
        reach: true,
    };
}

/// Immutable sampled-walk index over a graph.
///
/// See the crate docs for the mapping to the paper's `I`, `H` and `I_L`.
/// The five big arrays are [`Sect`]s: owned when built, borrowed windows of
/// the snapshot mapping when loaded zero-copy from a flat snapshot.
#[derive(Clone, Debug)]
pub struct WalkIndex {
    pub(crate) config: WalkConfig,
    pub(crate) node_count: usize,
    pub(crate) parts: WalkIndexParts,
    /// Walk `(w, i)` occupies `walk_data[walk_offsets[w*r+i] .. walk_offsets[w*r+i+1]]`.
    pub(crate) walk_offsets: Sect<u32>,
    pub(crate) walk_data: Sect<NodeId>,
    /// `freq[(j-1) * n + v]` = `H[j][v]` for `j ∈ 1..=L`.
    pub(crate) freq: Sect<f32>,
    /// `reach_data[reach_offsets[v] .. reach_offsets[v+1]]` = sorted origins
    /// whose sampled walks reached `v` within `L` hops.
    pub(crate) reach_offsets: Sect<u64>,
    pub(crate) reach_data: Sect<NodeId>,
}

/// Per-chunk build output, merged in node order.
struct ChunkResult {
    first: usize,
    walk_lens: Vec<u32>,
    walk_data: Vec<NodeId>,
    freq: Vec<f32>,
    reach_pairs: Vec<(u32, u32)>, // (reached node v, origin w)
}

impl WalkIndex {
    /// Build the full index (Algorithm 6).
    pub fn build(g: &CsrGraph, config: WalkConfig) -> Self {
        Self::build_parts(g, config, WalkIndexParts::ALL)
    }

    /// Build only the selected `parts`. Deterministic for a given seed,
    /// independent of the number of worker threads.
    pub fn build_parts(g: &CsrGraph, config: WalkConfig, parts: WalkIndexParts) -> Self {
        assert!(config.l > 0, "walk length L must be positive");
        assert!(config.r > 0, "sample count R must be positive");
        let n = g.node_count();
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n.max(1));
        let chunk = n.div_ceil(threads);

        let mut results: Vec<ChunkResult> = Vec::with_capacity(threads);
        crossbeam::scope(|s| {
            let mut handles = Vec::with_capacity(threads);
            for t in 0..threads {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(n);
                if lo >= hi {
                    continue;
                }
                handles.push(s.spawn(move |_| build_chunk(g, &config, parts, lo, hi)));
            }
            for h in handles {
                results.push(h.join().expect("walk index worker panicked"));
            }
        })
        .expect("crossbeam scope failed");
        results.sort_by_key(|c| c.first);

        // Merge walks.
        let (walk_offsets, walk_data) = if parts.walks {
            let total_walks = n * config.r;
            let mut offsets = Vec::with_capacity(total_walks + 1);
            offsets.push(0u32);
            let mut data = Vec::new();
            for c in &results {
                for &len in &c.walk_lens {
                    let last = *offsets.last().expect("non-empty");
                    offsets.push(next_walk_offset(last, len));
                }
                data.extend_from_slice(&c.walk_data);
            }
            debug_assert_eq!(offsets.len(), total_walks + 1);
            (offsets, data)
        } else {
            (Vec::new(), Vec::new())
        };

        // Merge frequency: element-wise max across chunks.
        let freq = if parts.freq {
            let mut freq = vec![0.0f32; config.l * n];
            for c in &results {
                for (dst, &src) in freq.iter_mut().zip(c.freq.iter()) {
                    if src > *dst {
                        *dst = src;
                    }
                }
            }
            freq
        } else {
            Vec::new()
        };

        // Merge reach pairs into a CSR keyed by reached node.
        let (reach_offsets, reach_data) = if parts.reach {
            let mut pairs: Vec<(u32, u32)> = results
                .iter_mut()
                .flat_map(|c| std::mem::take(&mut c.reach_pairs))
                .collect();
            pairs.sort_unstable();
            pairs.dedup();
            let mut offsets = vec![0u64; n + 1];
            for &(v, _) in &pairs {
                offsets[v as usize + 1] += 1;
            }
            for i in 0..n {
                offsets[i + 1] += offsets[i];
            }
            let data: Vec<NodeId> = pairs.into_iter().map(|(_, w)| NodeId(w)).collect();
            (offsets, data)
        } else {
            (Vec::new(), Vec::new())
        };

        WalkIndex {
            config,
            node_count: n,
            parts,
            walk_offsets: walk_offsets.into(),
            walk_data: walk_data.into(),
            freq: freq.into(),
            reach_offsets: reach_offsets.into(),
            reach_data: reach_data.into(),
        }
    }

    /// Assemble an index from its five raw arrays (typically borrowed
    /// windows of a flat-snapshot mapping). Performs only O(1) shape checks
    /// — array lengths against `config`/`node_count`, sentinel last offsets
    /// — so the zero-copy load path stays O(sections); the owned loader
    /// does per-element validation separately.
    #[allow(clippy::too_many_arguments)] // mirrors the five snapshot sections
    pub fn from_raw_parts(
        config: WalkConfig,
        node_count: usize,
        parts: WalkIndexParts,
        walk_offsets: Sect<u32>,
        walk_data: Sect<NodeId>,
        freq: Sect<f32>,
        reach_offsets: Sect<u64>,
        reach_data: Sect<NodeId>,
    ) -> Result<Self, String> {
        if config.l == 0 || config.r == 0 {
            return Err("walk config has zero L or R".into());
        }
        if parts.walks {
            if walk_offsets.len() != node_count.saturating_mul(config.r) + 1 {
                return Err("walk offset table has wrong length".into());
            }
            if walk_offsets.last().copied().unwrap_or(1) as usize != walk_data.len() {
                return Err("walk offsets do not cover walk data".into());
            }
        } else if !walk_offsets.is_empty() || !walk_data.is_empty() {
            return Err("walk arrays present but not materialized per flags".into());
        }
        if parts.freq {
            if freq.len() != config.l.saturating_mul(node_count) {
                return Err("frequency table has wrong length".into());
            }
        } else if !freq.is_empty() {
            return Err("frequency array present but not materialized per flags".into());
        }
        if parts.reach {
            if reach_offsets.len() != node_count + 1 {
                return Err("reach offset table has wrong length".into());
            }
            if reach_offsets.last().copied().unwrap_or(1) as usize != reach_data.len() {
                return Err("reach offsets do not cover reach data".into());
            }
        } else if !reach_offsets.is_empty() || !reach_data.is_empty() {
            return Err("reach arrays present but not materialized per flags".into());
        }
        Ok(WalkIndex {
            config,
            node_count,
            parts,
            walk_offsets,
            walk_data,
            freq,
            reach_offsets,
            reach_data,
        })
    }

    /// Per-element invariants — monotonic, covering offsets and in-range
    /// node ids. O(index size); run by the deep-validation loader only.
    pub fn validate_deep(&self) -> Result<(), String> {
        if self.parts.walks && self.walk_offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("walk offsets not monotonic".into());
        }
        if self.parts.reach && self.reach_offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("reach offsets not monotonic".into());
        }
        for n in self.walk_data.iter().chain(self.reach_data.iter()) {
            if n.index() >= self.node_count {
                return Err(format!("walk node id {n} out of range"));
            }
        }
        Ok(())
    }

    /// Which parts are materialized.
    pub fn parts(&self) -> WalkIndexParts {
        self.parts
    }

    /// The five raw arrays in `from_raw_parts` order, for snapshot writers.
    #[allow(clippy::type_complexity)]
    pub fn raw_parts(&self) -> (&[u32], &[NodeId], &[f32], &[u64], &[NodeId]) {
        (
            &self.walk_offsets,
            &self.walk_data,
            &self.freq,
            &self.reach_offsets,
            &self.reach_data,
        )
    }

    /// Bytes of this index served by a snapshot mapping (0 for built ones).
    pub fn mapped_bytes(&self) -> usize {
        self.walk_offsets.mapped_bytes()
            + self.walk_data.mapped_bytes()
            + self.freq.mapped_bytes()
            + self.reach_offsets.mapped_bytes()
            + self.reach_data.mapped_bytes()
    }

    /// The build configuration.
    pub fn config(&self) -> &WalkConfig {
        &self.config
    }

    /// Walk length `L`.
    pub fn l(&self) -> usize {
        self.config.l
    }

    /// Samples per node `R`.
    pub fn r(&self) -> usize {
        self.config.r
    }

    /// Number of nodes indexed.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// The `i`-th sampled walk starting at `w`, as the first-visit node
    /// sequence the algorithm stores in `I[i][w]` (start node excluded).
    ///
    /// # Panics
    /// Panics if walks were not materialized or indexes are out of range.
    pub fn walk(&self, w: NodeId, i: usize) -> &[NodeId] {
        assert!(self.parts.walks, "walks were not materialized");
        assert!(i < self.config.r, "walk sample index out of range");
        let slot = w.index() * self.config.r + i;
        let lo = self.walk_offsets[slot] as usize;
        let hi = self.walk_offsets[slot + 1] as usize;
        &self.walk_data[lo..hi]
    }

    /// Iterator over all `R` walks of `w`.
    pub fn walks(&self, w: NodeId) -> impl Iterator<Item = &[NodeId]> + '_ {
        (0..self.config.r).map(move |i| self.walk(w, i))
    }

    /// `H[j][v]`: the maximum per-walk visiting frequency of `v` at
    /// iteration `j` (1-based, `1..=L`). Zero when never visited.
    ///
    /// # Panics
    /// Panics if `freq` was not materialized or `j` is out of range.
    pub fn visit_freq(&self, j: usize, v: NodeId) -> f64 {
        assert!(self.parts.freq, "visit frequencies were not materialized");
        assert!(
            (1..=self.config.l).contains(&j),
            "iteration {j} out of 1..={}",
            self.config.l
        );
        self.freq[(j - 1) * self.node_count + v.index()] as f64
    }

    /// `I_L[v]`: the sorted set of walk origins that reached `v` within `L`
    /// hops in the samples.
    ///
    /// # Panics
    /// Panics if `reach` was not materialized.
    pub fn reach_set(&self, v: NodeId) -> &[NodeId] {
        assert!(self.parts.reach, "reach index was not materialized");
        let lo = self.reach_offsets[v.index()] as usize;
        let hi = self.reach_offsets[v.index() + 1] as usize;
        &self.reach_data[lo..hi]
    }

    /// Whether origin `x` reached `v` within `L` hops (`x →^L v`).
    pub fn reaches(&self, x: NodeId, v: NodeId) -> bool {
        self.reach_set(v).binary_search(&x).is_ok()
    }

    /// A copy of this index that keeps only the walk rows of nodes selected
    /// by `keep`; every other node's walks become zero-length rows. The
    /// offset array stays full-length (the node universe is unchanged), so
    /// `node_count()` and the store's validation keep working on a slice.
    /// The frequency and reach parts are kept whole: they are dense
    /// per-node summaries a fraction of the walk data's size, and the
    /// shard-replicated summarizers read them for every topic.
    pub fn sliced(&self, keep: &dyn Fn(NodeId) -> bool) -> Self {
        if !self.parts.walks {
            return self.clone();
        }
        let r = self.config.r;
        let mut offsets = Vec::with_capacity(self.node_count * r + 1);
        offsets.push(0u32);
        let mut data = Vec::new();
        for w in 0..self.node_count {
            let owned = keep(NodeId::from_index(w));
            for i in 0..r {
                let slot = w * r + i;
                let lo = self.walk_offsets[slot] as usize;
                let hi = self.walk_offsets[slot + 1] as usize;
                let len = if owned {
                    data.extend_from_slice(&self.walk_data[lo..hi]);
                    (hi - lo) as u32
                } else {
                    0
                };
                let last = *offsets.last().expect("offsets start non-empty");
                offsets.push(next_walk_offset(last, len));
            }
        }
        WalkIndex {
            config: self.config,
            node_count: self.node_count,
            parts: self.parts,
            walk_offsets: offsets.into(),
            walk_data: data.into(),
            freq: self.freq.clone(),
            reach_offsets: self.reach_offsets.clone(),
            reach_data: self.reach_data.clone(),
        }
    }

    /// Logical size of the index arrays in bytes, independent of backing.
    pub fn heap_size_bytes(&self) -> usize {
        self.walk_offsets.size_bytes()
            + self.walk_data.size_bytes()
            + self.freq.size_bytes()
            + self.reach_offsets.size_bytes()
            + self.reach_data.size_bytes()
    }
}

/// Guarded accumulation of the `u32` walk-offset array. Total walk steps
/// are bounded by `n·R·L`, which can exceed `u32::MAX` at large scales; an
/// unchecked add would wrap silently in release builds and corrupt every
/// walk slice behind the wrap point, so overflow is a loud, immediate
/// failure instead.
fn next_walk_offset(last: u32, len: u32) -> u32 {
    last.checked_add(len).unwrap_or_else(|| {
        panic!(
            "walk index overflows the u32 offset space ({last} + {len} steps \
             stored): n·R·L exceeds {} — reduce R or L, or shard the graph",
            u32::MAX
        )
    })
}

/// Algorithm 6 body for start nodes `lo..hi`.
fn build_chunk(
    g: &CsrGraph,
    cfg: &WalkConfig,
    parts: WalkIndexParts,
    lo: usize,
    hi: usize,
) -> ChunkResult {
    let n = g.node_count();
    let r = cfg.r;
    let mut walk_lens = Vec::with_capacity(if parts.walks { (hi - lo) * r } else { 0 });
    let mut walk_data = Vec::new();
    let mut freq = if parts.freq {
        vec![0.0f32; cfg.l * n]
    } else {
        Vec::new()
    };
    let mut reach_pairs = Vec::new();

    // Workhorse buffers reused across walks.
    let mut steps: Vec<NodeId> = Vec::with_capacity(cfg.l);
    // Per-walk visit counts: walks are short (≤ L+1 distinct nodes), a flat
    // association list beats a hash map here.
    let mut visited: Vec<(NodeId, u32)> = Vec::with_capacity(cfg.l + 1);

    let inv_r = 1.0f32 / r as f32;
    for wi in lo..hi {
        let w = NodeId::from_index(wi);
        for i in 0..r {
            let mut rng = cfg.rng_for(w, i);
            sample_walk(g, w, cfg.l, cfg.policy, &mut rng, &mut steps);
            visited.clear();
            visited.push((w, 1));
            let walk_start = walk_data.len();
            for (j0, &v) in steps.iter().enumerate() {
                let count = match visited.iter_mut().find(|(node, _)| *node == v) {
                    Some((_, c)) => {
                        *c += 1;
                        *c
                    }
                    None => {
                        visited.push((v, 1));
                        if parts.walks {
                            walk_data.push(v);
                        }
                        if parts.reach && v != w {
                            reach_pairs.push((v.0, w.0));
                        }
                        1
                    }
                };
                if parts.freq {
                    let slot = j0 * n + v.index();
                    let f = count as f32 * inv_r;
                    if f > freq[slot] {
                        freq[slot] = f;
                    }
                }
            }
            if parts.walks {
                walk_lens.push((walk_data.len() - walk_start) as u32);
            }
        }
    }

    ChunkResult {
        first: lo,
        walk_lens,
        walk_data,
        freq,
        reach_pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pit_graph::{fixtures, GraphBuilder};

    fn path_graph(n: usize) -> CsrGraph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n - 1 {
            b.add_edge(NodeId(i as u32), NodeId(i as u32 + 1), 0.5)
                .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn path_walks_are_the_path() {
        let g = path_graph(8);
        let idx = WalkIndex::build(&g, WalkConfig::new(3, 4));
        for i in 0..4 {
            assert_eq!(idx.walk(NodeId(0), i), &[NodeId(1), NodeId(2), NodeId(3)]);
        }
        // Near the sink walks are truncated.
        assert_eq!(idx.walk(NodeId(6), 0), &[NodeId(7)]);
        assert_eq!(idx.walk(NodeId(7), 0), &[] as &[NodeId]);
    }

    #[test]
    fn path_reach_sets() {
        let g = path_graph(8);
        let idx = WalkIndex::build(&g, WalkConfig::new(3, 2));
        // Node 3 is reached (within 3 hops) by 0, 1, 2 exactly.
        assert_eq!(idx.reach_set(NodeId(3)), &[NodeId(0), NodeId(1), NodeId(2)]);
        assert!(idx.reaches(NodeId(0), NodeId(3)));
        assert!(!idx.reaches(NodeId(0), NodeId(4)));
        // Node 0 has no in-edges.
        assert!(idx.reach_set(NodeId(0)).is_empty());
    }

    #[test]
    fn path_visit_freq_is_inverse_r() {
        let g = path_graph(8);
        let r = 5;
        let idx = WalkIndex::build(&g, WalkConfig::new(3, r));
        // Deterministic single-successor walks: each walk visits node w+j at
        // iteration j exactly once, so H[j][w+j] = 1/R.
        for j in 1..=3usize {
            let v = NodeId(j as u32);
            assert!((idx.visit_freq(j, v) - 1.0 / r as f64).abs() < 1e-6);
        }
        // Unreachable at iteration 1: node 5 is 5 hops from 0, but 1 hop from 4.
        assert!(idx.visit_freq(1, NodeId(5)) > 0.0);
        assert_eq!(idx.visit_freq(3, NodeId(0)), 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = fixtures::figure1_graph();
        let cfg = WalkConfig::new(4, 8).with_seed(123);
        let a = WalkIndex::build(&g, cfg);
        let b = WalkIndex::build(&g, cfg);
        for w in g.nodes() {
            for i in 0..8 {
                assert_eq!(a.walk(w, i), b.walk(w, i));
            }
            assert_eq!(a.reach_set(w), b.reach_set(w));
        }
        for j in 1..=4 {
            for v in g.nodes() {
                assert_eq!(a.visit_freq(j, v), b.visit_freq(j, v));
            }
        }
    }

    #[test]
    fn different_seed_changes_walks() {
        let g = fixtures::figure1_graph();
        let a = WalkIndex::build(&g, WalkConfig::new(4, 8).with_seed(1));
        let b = WalkIndex::build(&g, WalkConfig::new(4, 8).with_seed(2));
        let differs = g
            .nodes()
            .any(|w| (0..8).any(|i| a.walk(w, i) != b.walk(w, i)));
        assert!(differs);
    }

    #[test]
    fn walks_contain_no_duplicates() {
        // First-visit sequences must be duplicate-free even on cyclic graphs.
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 0.5).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.5).unwrap();
        b.add_edge(NodeId(2), NodeId(0), 0.5).unwrap();
        let g = b.build().unwrap();
        let idx = WalkIndex::build(&g, WalkConfig::new(10, 4));
        for w in g.nodes() {
            for walk in idx.walks(w) {
                let mut seen = walk.to_vec();
                seen.sort_unstable();
                seen.dedup();
                assert_eq!(seen.len(), walk.len(), "walk has duplicates: {walk:?}");
                assert!(!walk.contains(&w), "start node must not re-enter walk list");
            }
        }
    }

    #[test]
    fn cyclic_graph_freq_can_exceed_one_visit() {
        // 0 <-> 1: a 4-step walk from 0 visits 1 twice; H[3][1] = 2/R.
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1), 0.5).unwrap();
        b.add_edge(NodeId(1), NodeId(0), 0.5).unwrap();
        let g = b.build().unwrap();
        let r = 4;
        let idx = WalkIndex::build(&g, WalkConfig::new(4, r));
        assert!((idx.visit_freq(3, NodeId(1)) - 2.0 / r as f64).abs() < 1e-6);
        assert!((idx.visit_freq(1, NodeId(1)) - 1.0 / r as f64).abs() < 1e-6);
    }

    #[test]
    fn parts_gate_materialization() {
        let g = path_graph(5);
        let idx = WalkIndex::build_parts(&g, WalkConfig::new(3, 2), WalkIndexParts::FOR_RCL);
        assert!(!idx.reach_set(NodeId(2)).is_empty());
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            idx.walk(NodeId(0), 0);
        }));
        assert!(res.is_err(), "walks access must panic when not built");
    }

    #[test]
    fn walk_offset_guard_is_exact_at_the_boundary() {
        // Saturating the space exactly is fine…
        assert_eq!(next_walk_offset(u32::MAX - 5, 5), u32::MAX);
        assert_eq!(next_walk_offset(0, u32::MAX), u32::MAX);
        // …one step past it must panic loudly, not wrap.
        let res = std::panic::catch_unwind(|| next_walk_offset(u32::MAX - 4, 5));
        assert!(res.is_err(), "overflowing offset add must panic");
        let res = std::panic::catch_unwind(|| next_walk_offset(u32::MAX, 1));
        assert!(res.is_err(), "overflowing offset add must panic");
    }

    #[test]
    fn heap_size_scales_with_r() {
        let g = path_graph(50);
        let small = WalkIndex::build(&g, WalkConfig::new(4, 2)).heap_size_bytes();
        let big = WalkIndex::build(&g, WalkConfig::new(4, 16)).heap_size_bytes();
        assert!(big > small);
    }
}
