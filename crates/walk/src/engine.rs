//! Single-walk sampling.

use pit_graph::{CsrGraph, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// How the next hop of a walk is chosen.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum WalkPolicy {
    /// Uniform over out-neighbors — the literal reading of Algorithm 6
    /// ("v ← Randomly selected neighbor of u").
    UniformNeighbor,
    /// Proportional to the transition probabilities `Λ(u, ·)`, so walks
    /// follow the influence semantics of the propagation model.
    TransitionWeighted,
}

/// Parameters of a sampled-walk index build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalkConfig {
    /// Walk length `L` (the paper's locality radius; typically 4–6).
    pub l: usize,
    /// Samples per node `R` (the paper uses 100–300, bounded by Hoeffding).
    pub r: usize,
    /// Next-hop policy.
    pub policy: WalkPolicy,
    /// Master seed; node `w`'s `i`-th walk uses a stream derived from
    /// `(seed, w, i)` so builds are reproducible and parallelizable.
    pub seed: u64,
}

impl WalkConfig {
    /// A sensible default: `L = 5`, `R = 100`, uniform policy.
    pub fn new(l: usize, r: usize) -> Self {
        WalkConfig {
            l,
            r,
            policy: WalkPolicy::UniformNeighbor,
            seed: 0x5EED,
        }
    }

    /// Replace the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replace the policy.
    pub fn with_policy(mut self, policy: WalkPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The RNG for walk `(w, i)` — SplitMix64-style mixing of the key.
    pub(crate) fn rng_for(&self, w: NodeId, i: usize) -> SmallRng {
        let mut z = self
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(w.0 as u64 + 1))
            .wrapping_add((i as u64 + 1).wrapping_mul(0xBF58_476D_1CE4_E5B9));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SmallRng::seed_from_u64(z)
    }
}

/// Sample one L-length walk from `start`, writing the *full step sequence*
/// (start excluded, revisits included) into `out`.
///
/// The walk terminates early at a sink (no out-edges). Returns the number of
/// steps actually taken.
pub fn sample_walk(
    g: &CsrGraph,
    start: NodeId,
    l: usize,
    policy: WalkPolicy,
    rng: &mut SmallRng,
    out: &mut Vec<NodeId>,
) -> usize {
    out.clear();
    let mut u = start;
    for _ in 0..l {
        let edges = g.out_edges(u);
        if edges.is_empty() {
            break;
        }
        let v = match policy {
            WalkPolicy::UniformNeighbor => edges.targets()[rng.gen_range(0..edges.len())],
            WalkPolicy::TransitionWeighted => weighted_pick(&edges, rng),
        };
        out.push(v);
        u = v;
    }
    out.len()
}

/// Roulette-wheel selection over the (unnormalized) out-edge probabilities.
fn weighted_pick(edges: &pit_graph::csr::OutEdges<'_>, rng: &mut SmallRng) -> NodeId {
    let total: f64 = edges.probs().iter().sum();
    if total <= 0.0 {
        // All-zero weights degenerate to uniform.
        return edges.targets()[rng.gen_range(0..edges.len())];
    }
    let mut x = rng.gen::<f64>() * total;
    for (v, p) in edges.iter() {
        x -= p;
        if x <= 0.0 {
            return v;
        }
    }
    // Floating-point slack: fall back to the last edge.
    edges.targets()[edges.len() - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use pit_graph::GraphBuilder;

    fn path_graph(n: usize) -> CsrGraph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n - 1 {
            b.add_edge(NodeId(i as u32), NodeId(i as u32 + 1), 0.5)
                .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn walk_on_path_is_deterministic_route() {
        let g = path_graph(10);
        let cfg = WalkConfig::new(4, 1);
        let mut rng = cfg.rng_for(NodeId(0), 0);
        let mut out = Vec::new();
        let steps = sample_walk(&g, NodeId(0), 4, cfg.policy, &mut rng, &mut out);
        assert_eq!(steps, 4);
        assert_eq!(out, vec![NodeId(1), NodeId(2), NodeId(3), NodeId(4)]);
    }

    #[test]
    fn walk_stops_at_sink() {
        let g = path_graph(3);
        let cfg = WalkConfig::new(10, 1);
        let mut rng = cfg.rng_for(NodeId(0), 0);
        let mut out = Vec::new();
        let steps = sample_walk(&g, NodeId(0), 10, cfg.policy, &mut rng, &mut out);
        assert_eq!(steps, 2);
        assert_eq!(out, vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn walk_from_isolated_node_is_empty() {
        let g = GraphBuilder::new(2).build().unwrap();
        let cfg = WalkConfig::new(5, 1);
        let mut rng = cfg.rng_for(NodeId(0), 0);
        let mut out = Vec::new();
        assert_eq!(
            sample_walk(&g, NodeId(0), 5, cfg.policy, &mut rng, &mut out),
            0
        );
        assert!(out.is_empty());
    }

    #[test]
    fn weighted_policy_prefers_heavy_edges() {
        // 0 -> 1 (0.95), 0 -> 2 (0.05): over many one-step walks node 1 must
        // dominate under TransitionWeighted.
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 0.95).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 0.05).unwrap();
        let g = b.build().unwrap();
        let cfg = WalkConfig::new(1, 1).with_policy(WalkPolicy::TransitionWeighted);
        let mut to1 = 0;
        let mut out = Vec::new();
        for i in 0..2000 {
            let mut rng = cfg.rng_for(NodeId(0), i);
            sample_walk(&g, NodeId(0), 1, cfg.policy, &mut rng, &mut out);
            if out[0] == NodeId(1) {
                to1 += 1;
            }
        }
        assert!(
            to1 > 1700,
            "weighted walk picked heavy edge only {to1}/2000"
        );
    }

    #[test]
    fn uniform_policy_splits_evenly() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 0.95).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 0.05).unwrap();
        let g = b.build().unwrap();
        let cfg = WalkConfig::new(1, 1);
        let mut to1 = 0;
        let mut out = Vec::new();
        for i in 0..2000 {
            let mut rng = cfg.rng_for(NodeId(0), i);
            sample_walk(&g, NodeId(0), 1, cfg.policy, &mut rng, &mut out);
            if out[0] == NodeId(1) {
                to1 += 1;
            }
        }
        assert!(
            (800..1200).contains(&to1),
            "uniform walk unbalanced: {to1}/2000"
        );
    }

    #[test]
    fn rng_streams_differ_per_walk_and_node() {
        let cfg = WalkConfig::new(3, 2);
        let a: u64 = cfg.rng_for(NodeId(0), 0).gen();
        let b: u64 = cfg.rng_for(NodeId(0), 1).gen();
        let c: u64 = cfg.rng_for(NodeId(1), 0).gen();
        assert_ne!(a, b);
        assert_ne!(a, c);
        // And reproducible.
        let a2: u64 = cfg.rng_for(NodeId(0), 0).gen();
        assert_eq!(a, a2);
    }
}
