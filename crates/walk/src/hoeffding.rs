//! Hoeffding bound for the walk sample size `R`.
//!
//! Section 4.1: "The sample size R can be bounded by applying the Hoeffding
//! inequality, which balances the tradeoff between the sample size and the
//! accuracy of estimation using sampled data."
//!
//! For `R` i.i.d. samples of a `[0, 1]`-bounded quantity (here: indicator
//! variables of a walk visiting a node), Hoeffding gives
//! `P(|X̄ - E[X̄]| ≥ ε) ≤ 2·exp(-2·R·ε²)`, so
//! `R ≥ ln(2/δ) / (2·ε²)` suffices for error ≤ ε with confidence `1 - δ`.

/// Minimum sample count `R` for additive error `epsilon` with confidence
/// `1 - delta`.
///
/// # Panics
/// Panics unless `0 < epsilon < 1` and `0 < delta < 1`.
pub fn sample_size(epsilon: f64, delta: f64) -> usize {
    assert!(
        epsilon > 0.0 && epsilon < 1.0,
        "epsilon must be in (0,1), got {epsilon}"
    );
    assert!(
        delta > 0.0 && delta < 1.0,
        "delta must be in (0,1), got {delta}"
    );
    ((2.0f64 / delta).ln() / (2.0 * epsilon * epsilon)).ceil() as usize
}

/// The achieved additive error bound for a given `R` and confidence `1 - delta`.
pub fn error_bound(r: usize, delta: f64) -> f64 {
    assert!(r > 0, "R must be positive");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    ((2.0f64 / delta).ln() / (2.0 * r as f64)).sqrt()
}

/// The failure probability `δ` for a given `R` and target error `epsilon`.
pub fn failure_probability(r: usize, epsilon: f64) -> f64 {
    assert!(r > 0, "R must be positive");
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
    (2.0 * (-2.0 * r as f64 * epsilon * epsilon).exp()).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_r_is_reasonable() {
        // ε = 0.1, δ = 0.05 → R ≈ 185: consistent with the paper's choice of
        // R = 200 "in practice".
        let r = sample_size(0.1, 0.05);
        assert!((150..=250).contains(&r), "R = {r}");
    }

    #[test]
    fn tighter_epsilon_needs_more_samples() {
        assert!(sample_size(0.05, 0.05) > sample_size(0.1, 0.05));
        assert!(sample_size(0.1, 0.01) > sample_size(0.1, 0.05));
    }

    #[test]
    fn bounds_are_mutually_consistent() {
        let eps = 0.08;
        let delta = 0.02;
        let r = sample_size(eps, delta);
        // With that R, the achieved error at the same delta is ≤ eps...
        assert!(error_bound(r, delta) <= eps + 1e-9);
        // ...and the failure probability at the same eps is ≤ delta.
        assert!(failure_probability(r, eps) <= delta + 1e-9);
    }

    #[test]
    fn error_bound_shrinks_with_r() {
        assert!(error_bound(400, 0.05) < error_bound(100, 0.05));
        // Quadrupling R halves the bound.
        let e1 = error_bound(100, 0.05);
        let e4 = error_bound(400, 0.05);
        assert!((e1 / e4 - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn rejects_bad_epsilon() {
        let _ = sample_size(1.5, 0.05);
    }

    #[test]
    #[should_panic]
    fn rejects_bad_delta() {
        let _ = sample_size(0.1, 0.0);
    }
}
