//! # pit-walk
//!
//! The L-length random-walk machinery of Section 4 of the paper.
//!
//! [`WalkIndex::build`] implements **Algorithm 6** (`INVERTTVHIT_INDEX`): for
//! every node `w` it takes `R` samples of L-length random walks and derives
//! the three indexes the rest of the pipeline consumes:
//!
//! * `I[R][n]` — the sampled walks themselves ([`WalkIndex::walk`]), stored
//!   as first-visit sequences exactly as the algorithm appends them;
//! * `H[L][n]` — the *time-variant visiting frequency* index
//!   ([`WalkIndex::visit_freq`]): the maximum per-walk visit frequency of a
//!   node at each iteration `1..=L`, which reinforces the diversified
//!   PageRank of Algorithm 7;
//! * `I_L[n]` — the reachability index ([`WalkIndex::reach_set`]): for each
//!   node, the set of walk origins that reached it within `L` hops, used by
//!   the RCL-A grouping probabilities (Algorithm 1) and centroid voting
//!   (Algorithm 4).
//!
//! Construction is deterministic for a given [`WalkConfig::seed`], regardless
//! of thread count: each start node derives its own RNG stream.
//!
//! [`hoeffding::sample_size`] gives the paper's bound on `R` (Section 4.1
//! cites the Hoeffding inequality for balancing sample size against
//! estimation accuracy).

#![forbid(unsafe_code)]

pub mod engine;
pub mod hoeffding;
pub mod index;
pub mod snapshot;

pub use engine::{sample_walk, WalkConfig, WalkPolicy};
pub use index::{WalkIndex, WalkIndexParts};
