//! Offline stand-in for `rustc-hash` 1.1: the Fx hasher (the compiler's
//! multiply-and-rotate hash) plus the usual map/set aliases. Deterministic
//! (no random state), fast on the integer keys that dominate this workspace.

#![forbid(unsafe_code)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed by [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed by [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc Fx hash: one multiply-rotate-xor round per word.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = [0u8; 8];
            word[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<(u32, u32)> = FxHashSet::default();
        assert!(s.insert((1, 2)));
        assert!(!s.insert((1, 2)));
    }

    #[test]
    fn deterministic_iteration_across_builds() {
        let build = || {
            let mut s: FxHashSet<u32> = FxHashSet::default();
            for v in [9u32, 4, 7, 1, 3, 8] {
                s.insert(v);
            }
            s.into_iter().collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }
}
