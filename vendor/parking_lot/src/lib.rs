//! Offline stand-in for the subset of `parking_lot` 0.12 this workspace
//! uses: [`Mutex`], [`RwLock`] and [`Condvar`] with the non-poisoning API,
//! implemented over `std::sync`. A poisoned std lock (a panic while held)
//! is surfaced by continuing with the inner data, matching parking_lot's
//! no-poisoning semantics.
//!
//! # Lock-order deadlock diagnostics
//!
//! Because this shim is owned by the workspace (miri/loom/TSan are not
//! available in the build environment), it doubles as the dynamic half of
//! the repo's concurrency tooling. With the **`lock-order-diagnostics`**
//! feature enabled, every acquisition is tracked:
//!
//! - each thread keeps the set of locks it currently holds;
//! - acquiring lock `B` while holding lock `A` records the directed edge
//!   `A → B` in a process-global acquisition-order graph, keyed by lock
//!   *name* (an order class, not an instance);
//! - an acquisition that would close a cycle in that graph — i.e. some
//!   other code path acquires these locks in the opposite order — panics
//!   immediately, naming both locks, instead of deadlocking some day under
//!   exactly the wrong interleaving;
//! - re-acquiring a lock the thread already holds (a guaranteed
//!   self-deadlock for [`Mutex`] and write locks) also panics. Shared
//!   re-reads of the same [`RwLock`] are permitted, as `std` allows them.
//!
//! Locks participate in the order graph only when constructed with
//! [`Mutex::named`] / [`RwLock::named`]; each name is one order class, so
//! two locks that may legitimately be held together must carry distinct
//! names. Anonymous locks ([`Mutex::new`]) still get the self-deadlock
//! check (by instance address) but record no ordering edges.
//!
//! The feature is strictly a diagnostic: with it disabled (the default)
//! every tracking call compiles to nothing and the lock API is a thin
//! newtype over `std::sync`.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

mod order;

#[cfg(feature = "lock-order-diagnostics")]
pub use order::acquisition_order_edges;

use order::Kind;

/// A mutual-exclusion lock that does not poison.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    name: &'static str,
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap `value` as an anonymous lock (excluded from the acquisition-
    /// order graph; still self-deadlock-checked under diagnostics).
    pub const fn new(value: T) -> Self {
        Mutex::named("", value)
    }

    /// Wrap `value` as a named lock. Under `lock-order-diagnostics` the
    /// name is this lock's order class in the global acquisition graph;
    /// give every independently held lock a distinct name.
    pub const fn named(name: &'static str, value: T) -> Self {
        Mutex {
            name,
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// The diagnostic name given at construction ("" when anonymous).
    pub fn name(&self) -> &'static str {
        self.name
    }

    fn addr(&self) -> usize {
        (self as *const Self).cast::<()>() as usize
    }

    /// Acquire the lock, blocking.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let addr = self.addr();
        order::before_blocking_acquire(self.name, addr, Kind::Mutex);
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard {
            inner: Some(inner),
            name: self.name,
            addr,
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.inner.try_lock() {
            Ok(g) => g,
            Err(sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(sync::TryLockError::WouldBlock) => return None,
        };
        let addr = self.addr();
        // A try-acquire cannot block, so it records ordering edges for
        // other threads' benefit without the cycle panic.
        order::after_try_acquire(self.name, addr, Kind::Mutex);
        Some(MutexGuard {
            inner: Some(inner),
            name: self.name,
            addr,
        })
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Guard for [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    /// `None` only transiently inside [`Condvar::wait`]/[`Condvar::wait_for`],
    /// which reinstate the std guard before returning.
    inner: Option<sync::MutexGuard<'a, T>>,
    name: &'static str,
    addr: usize,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("mutex guard is active")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("mutex guard is active")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the std lock first, then retire the tracking entry.
        if self.inner.take().is_some() {
            order::release(self.addr);
        }
    }
}

/// A reader-writer lock that does not poison.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    name: &'static str,
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap `value` as an anonymous lock (see [`Mutex::new`]).
    pub const fn new(value: T) -> Self {
        RwLock::named("", value)
    }

    /// Wrap `value` as a named lock (see [`Mutex::named`]).
    pub const fn named(name: &'static str, value: T) -> Self {
        RwLock {
            name,
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// The diagnostic name given at construction ("" when anonymous).
    pub fn name(&self) -> &'static str {
        self.name
    }

    fn addr(&self) -> usize {
        (self as *const Self).cast::<()>() as usize
    }

    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let addr = self.addr();
        order::before_blocking_acquire(self.name, addr, Kind::Read);
        let inner = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        RwLockReadGuard {
            inner: Some(inner),
            addr,
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let addr = self.addr();
        order::before_blocking_acquire(self.name, addr, Kind::Write);
        let inner = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        RwLockWriteGuard {
            inner: Some(inner),
            addr,
        }
    }
}

/// Guard for [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: Option<sync::RwLockReadGuard<'a, T>>,
    addr: usize,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("read guard is active")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            order::release(self.addr);
        }
    }
}

/// Guard for [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: Option<sync::RwLockWriteGuard<'a, T>>,
    addr: usize,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("write guard is active")
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("write guard is active")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            order::release(self.addr);
        }
    }
}

/// Condition variable paired with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// A new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Block until notified, releasing `guard` while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard
            .inner
            .take()
            .expect("condvar waiter's guard is active");
        // The mutex is released for the duration of the wait, and the
        // wake-up re-acquires it — mirror both in the diagnostic state.
        order::release(guard.addr);
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(PoisonError::into_inner);
        order::before_blocking_acquire(guard.name, guard.addr, Kind::Mutex);
        guard.inner = Some(inner);
    }

    /// As [`Condvar::wait`] with a timeout; returns `true` when it timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let inner = guard
            .inner
            .take()
            .expect("condvar waiter's guard is active");
        order::release(guard.addr);
        let (inner, res) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        order::before_blocking_acquire(guard.name, guard.addr, Kind::Mutex);
        guard.inner = Some(inner);
        res.timed_out()
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn mutex_counts_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let m = Arc::clone(&m);
            handles.push(thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_allows_parallel_reads() {
        let l = RwLock::new(vec![1, 2, 3]);
        let a = l.read();
        let b = l.read();
        assert_eq!(a.len() + b.len(), 6);
    }

    #[test]
    fn try_lock_contended_is_none() {
        let m = Mutex::new(1u32);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(*m.try_lock().expect("uncontended"), 1);
    }

    #[test]
    fn names_are_reported() {
        let m = Mutex::named("test.named", 0u8);
        assert_eq!(m.name(), "test.named");
        assert_eq!(Mutex::new(0u8).name(), "");
        let l = RwLock::named("test.named.rw", 0u8);
        assert_eq!(l.name(), "test.named.rw");
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        thread::sleep(Duration::from_millis(10));
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let lock = Mutex::new(());
        let cv = Condvar::new();
        let mut g = lock.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(5)));
    }
}
