//! Offline stand-in for the subset of `parking_lot` 0.12 this workspace
//! uses: [`Mutex`], [`RwLock`] and [`Condvar`] with the non-poisoning API,
//! implemented over `std::sync`. A poisoned std lock (a panic while held)
//! is surfaced by continuing with the inner data, matching parking_lot's
//! no-poisoning semantics.

use std::sync::{self, PoisonError};
use std::time::Duration;

/// Guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// Guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;

/// Guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock that does not poison.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock that does not poison.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Condition variable paired with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// A new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Block until notified, releasing `guard` while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        replace_guard(guard, |g| {
            self.inner.wait(g).unwrap_or_else(PoisonError::into_inner)
        });
    }

    /// As [`Condvar::wait`] with a timeout; returns `true` when it timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let mut timed_out = false;
        replace_guard(guard, |g| {
            let (g, res) = self
                .inner
                .wait_timeout(g, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            timed_out = res.timed_out();
            g
        });
        timed_out
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Run `f` on the guard by value. The guard is moved out and back in via a
/// zeroed placeholder that is never dereferenced; `f` must return a valid
/// guard (std's wait APIs consume and return the guard).
fn replace_guard<'a, T: ?Sized>(
    slot: &mut MutexGuard<'a, T>,
    f: impl FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
) {
    // SAFETY-free alternative: use Option dance via unsafe-free std APIs is
    // not possible on &mut Guard, so waiting callers in this workspace hold
    // the guard by value; see `Condvar` tests. To keep the API identical to
    // parking_lot (which takes &mut), we move through an Option.
    take_mut(slot, f);
}

/// Minimal take-and-replace for a `&mut` slot; aborts the process if `f`
/// panics while the slot is vacated (same strategy as the `take_mut` crate).
fn take_mut<G>(slot: &mut G, f: impl FnOnce(G) -> G) {
    struct AbortOnPanic;
    impl Drop for AbortOnPanic {
        fn drop(&mut self) {
            std::process::abort();
        }
    }
    unsafe {
        let bomb = AbortOnPanic;
        let old = std::ptr::read(slot);
        let new = f(old);
        std::ptr::write(slot, new);
        std::mem::forget(bomb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn mutex_counts_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let m = Arc::clone(&m);
            handles.push(thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_allows_parallel_reads() {
        let l = RwLock::new(vec![1, 2, 3]);
        let a = l.read();
        let b = l.read();
        assert_eq!(a.len() + b.len(), 6);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        thread::sleep(Duration::from_millis(10));
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let lock = Mutex::new(());
        let cv = Condvar::new();
        let mut g = lock.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(5)));
    }
}
