//! Lock-order deadlock diagnostics (the `lock-order-diagnostics` feature).
//!
//! Every thread carries the list of locks it currently holds. A blocking
//! acquisition of lock `B` while holding lock `A`:
//!
//! 1. panics if the thread already holds `B` itself (self-deadlock; shared
//!    re-reads of the same `RwLock` are permitted),
//! 2. checks the process-global acquisition-order graph for a path
//!    `B →* A` — if one exists, some other code path takes these locks in
//!    the opposite order and this acquisition closes a cycle: panic with
//!    both lock names rather than deadlock under the losing interleaving,
//! 3. records the edge `A → B` for every held named lock `A`.
//!
//! Names are order *classes*: all instances constructed with the same name
//! share graph edges. Anonymous locks (name `""`) skip steps 2–3 but keep
//! the self-deadlock check. With the feature disabled, every entry point
//! here is an empty inline function.

/// How a lock is being acquired; determines the self-deadlock rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Kind {
    /// Exclusive `Mutex` acquisition.
    Mutex,
    /// Shared `RwLock` read.
    Read,
    /// Exclusive `RwLock` write.
    Write,
}

#[cfg(not(feature = "lock-order-diagnostics"))]
mod imp {
    use super::Kind;

    #[inline(always)]
    pub(crate) fn before_blocking_acquire(_name: &'static str, _addr: usize, _kind: Kind) {}

    #[inline(always)]
    pub(crate) fn after_try_acquire(_name: &'static str, _addr: usize, _kind: Kind) {}

    #[inline(always)]
    pub(crate) fn release(_addr: usize) {}
}

#[cfg(feature = "lock-order-diagnostics")]
mod imp {
    use super::Kind;
    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::sync::{Mutex as StdMutex, OnceLock, PoisonError};

    /// One lock currently held by this thread.
    struct Held {
        name: &'static str,
        addr: usize,
        kind: Kind,
    }

    thread_local! {
        /// Locks held by this thread, in acquisition order.
        static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
    }

    /// The global acquisition-order graph: `edges[a]` lists every lock
    /// class acquired while `a` was held.
    fn graph() -> &'static StdMutex<HashMap<&'static str, Vec<&'static str>>> {
        static GRAPH: OnceLock<StdMutex<HashMap<&'static str, Vec<&'static str>>>> =
            OnceLock::new();
        GRAPH.get_or_init(|| StdMutex::new(HashMap::new()))
    }

    /// Is `to` reachable from `from` via recorded edges?
    fn reaches(
        edges: &HashMap<&'static str, Vec<&'static str>>,
        from: &'static str,
        to: &'static str,
    ) -> bool {
        if from == to {
            return true;
        }
        let mut stack = vec![from];
        let mut visited = vec![from];
        while let Some(node) = stack.pop() {
            for &next in edges.get(node).into_iter().flatten() {
                if next == to {
                    return true;
                }
                if !visited.contains(&next) {
                    visited.push(next);
                    stack.push(next);
                }
            }
        }
        false
    }

    /// Panic if this thread already holds the lock at `addr` in a way that
    /// makes a fresh blocking acquisition a guaranteed self-deadlock.
    fn check_reentrancy(held: &[Held], name: &'static str, addr: usize, kind: Kind) {
        for h in held {
            if h.addr != addr {
                continue;
            }
            // std permits many shared readers, including twice on one
            // thread; every other same-instance re-acquisition deadlocks.
            if h.kind == Kind::Read && kind == Kind::Read {
                continue;
            }
            panic!(
                "lock-order diagnostic: thread {:?} re-acquired lock \"{}\" it already holds \
                 ({:?} while holding {:?}) — guaranteed self-deadlock",
                std::thread::current().name().unwrap_or("<unnamed>"),
                display(name),
                kind,
                h.kind,
            );
        }
    }

    fn display(name: &'static str) -> &'static str {
        if name.is_empty() {
            "<anonymous>"
        } else {
            name
        }
    }

    /// Record `held → name` edges; with `check_cycles`, panic before
    /// inserting an edge whose reverse path already exists.
    fn record_edges(held: &[Held], name: &'static str, check_cycles: bool) {
        if name.is_empty() {
            return;
        }
        let mut edges = graph().lock().unwrap_or_else(PoisonError::into_inner);
        for h in held {
            if h.name.is_empty() || h.name == name {
                continue;
            }
            let known = edges.get(h.name).is_some_and(|outs| outs.contains(&name));
            if known {
                continue;
            }
            if check_cycles && reaches(&edges, name, h.name) {
                drop(edges); // keep the graph usable for other threads
                panic!(
                    "lock-order inversion: thread {:?} is acquiring \"{name}\" while holding \
                     \"{}\", but the established acquisition order requires \"{name}\" before \
                     \"{}\" — this interleaving can deadlock",
                    std::thread::current().name().unwrap_or("<unnamed>"),
                    h.name,
                    h.name,
                );
            }
            edges.entry(h.name).or_default().push(name);
        }
    }

    pub(crate) fn before_blocking_acquire(name: &'static str, addr: usize, kind: Kind) {
        HELD.with(|held| {
            {
                let held = held.borrow();
                check_reentrancy(&held, name, addr, kind);
                record_edges(&held, name, true);
            }
            held.borrow_mut().push(Held { name, addr, kind });
        });
    }

    pub(crate) fn after_try_acquire(name: &'static str, addr: usize, kind: Kind) {
        HELD.with(|held| {
            // A try-acquire never blocks, so it cannot itself deadlock:
            // record the ordering evidence without the cycle panic.
            record_edges(&held.borrow(), name, false);
            held.borrow_mut().push(Held { name, addr, kind });
        });
    }

    pub(crate) fn release(addr: usize) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            // Pop the most recent entry for this instance: re-entrant reads
            // release in LIFO order.
            if let Some(i) = held.iter().rposition(|h| h.addr == addr) {
                held.remove(i);
            }
        });
    }

    /// Snapshot of the recorded acquisition-order edges, for tests and
    /// debugging: `(held, then-acquired)` pairs, unordered.
    pub fn acquisition_order_edges() -> Vec<(&'static str, &'static str)> {
        let edges = graph().lock().unwrap_or_else(PoisonError::into_inner);
        let mut out = Vec::new();
        for (&a, outs) in edges.iter() {
            for &b in outs {
                out.push((a, b));
            }
        }
        out
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn graph_of(
            pairs: &[(&'static str, &'static str)],
        ) -> HashMap<&'static str, Vec<&'static str>> {
            let mut g: HashMap<&'static str, Vec<&'static str>> = HashMap::new();
            for &(a, b) in pairs {
                g.entry(a).or_default().push(b);
            }
            g
        }

        #[test]
        fn reachability_follows_chains() {
            let g = graph_of(&[("a", "b"), ("b", "c")]);
            assert!(reaches(&g, "a", "c"));
            assert!(reaches(&g, "b", "c"));
            assert!(!reaches(&g, "c", "a"));
            assert!(reaches(&g, "a", "a"), "trivially reachable from itself");
        }

        #[test]
        fn reachability_handles_diamonds_and_cycles() {
            let g = graph_of(&[("a", "b"), ("a", "c"), ("b", "d"), ("c", "d"), ("d", "b")]);
            assert!(reaches(&g, "a", "d"));
            assert!(reaches(&g, "d", "d"));
            assert!(!reaches(&g, "d", "a"));
        }
    }
}

pub(crate) use imp::{after_try_acquire, before_blocking_acquire, release};

#[cfg(feature = "lock-order-diagnostics")]
pub use imp::acquisition_order_edges;
