//! MPMC channels over `Mutex` + `Condvar`, mirroring `crossbeam-channel`'s
//! constructors and error types for the operations this workspace performs:
//! `send`, `try_send` (load shedding), `recv`, `recv_timeout`, and
//! disconnect-on-last-handle-drop in both directions.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error for [`Sender::send`]: every receiver is gone; the value is returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error for [`Sender::try_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is at capacity; the value is returned.
    Full(T),
    /// Every receiver is gone; the value is returned.
    Disconnected(T),
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => write!(f, "sending on a full channel"),
            TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
        }
    }
}

/// Error for [`Receiver::recv`]: channel empty and every sender gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

/// Error for [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// Nothing arrived within the timeout.
    Timeout,
    /// Channel empty and every sender gone.
    Disconnected,
}

/// Error for [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// Channel empty and every sender gone.
    Disconnected,
}

struct Inner<T> {
    queue: Mutex<State<T>>,
    /// Signalled when an item is pushed or the last sender leaves.
    not_empty: Condvar,
    /// Signalled when an item is popped or the last receiver leaves.
    not_full: Condvar,
    cap: Option<usize>,
}

struct State<T> {
    items: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

/// Producer half; clone freely.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// Consumer half; clone freely (MPMC — clones compete for items).
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

/// A channel holding at most `cap` in-flight items; `send` blocks when full,
/// `try_send` sheds instead.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_cap(Some(cap))
}

/// A channel with no capacity bound.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_cap(None)
}

fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        queue: Mutex::new(State {
            items: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        cap,
    });
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

impl<T> Sender<T> {
    /// Push `value`, blocking while the channel is full.
    ///
    /// # Errors
    /// Returns the value when every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.inner.queue.lock().unwrap();
        loop {
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            if self.inner.cap.is_none_or(|c| st.items.len() < c) {
                st.items.push_back(value);
                self.inner.not_empty.notify_one();
                return Ok(());
            }
            st = self.inner.not_full.wait(st).unwrap();
        }
    }

    /// Push `value` without blocking.
    ///
    /// # Errors
    /// [`TrySendError::Full`] at capacity, [`TrySendError::Disconnected`]
    /// when every receiver is gone; the value is returned either way.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut st = self.inner.queue.lock().unwrap();
        if st.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if self.inner.cap.is_some_and(|c| st.items.len() >= c) {
            return Err(TrySendError::Full(value));
        }
        st.items.push_back(value);
        self.inner.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.queue.lock().unwrap().senders += 1;
        Sender {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.inner.queue.lock().unwrap();
        st.senders -= 1;
        if st.senders == 0 {
            self.inner.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Pop the oldest item, blocking while the channel is empty.
    ///
    /// # Errors
    /// Returns [`RecvError`] when the channel is empty and every sender has
    /// been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.inner.queue.lock().unwrap();
        loop {
            if let Some(v) = st.items.pop_front() {
                self.inner.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self.inner.not_empty.wait(st).unwrap();
        }
    }

    /// Pop the oldest item, waiting at most `timeout`.
    ///
    /// # Errors
    /// [`RecvTimeoutError::Timeout`] when nothing arrived in time,
    /// [`RecvTimeoutError::Disconnected`] when empty with no senders left.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.inner.queue.lock().unwrap();
        loop {
            if let Some(v) = st.items.pop_front() {
                self.inner.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let Some(left) = deadline
                .checked_duration_since(Instant::now())
                .filter(|d| !d.is_zero())
            else {
                return Err(RecvTimeoutError::Timeout);
            };
            let (guard, _res) = self.inner.not_empty.wait_timeout(st, left).unwrap();
            st = guard;
        }
    }

    /// Pop the oldest item without blocking.
    ///
    /// # Errors
    /// [`TryRecvError::Empty`] when nothing is queued,
    /// [`TryRecvError::Disconnected`] when empty with no senders left.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.inner.queue.lock().unwrap();
        if let Some(v) = st.items.pop_front() {
            self.inner.not_full.notify_one();
            return Ok(v);
        }
        if st.senders == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner.queue.lock().unwrap().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.inner.queue.lock().unwrap().receivers += 1;
        Receiver {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.inner.queue.lock().unwrap();
        st.receivers -= 1;
        if st.receivers == 0 {
            self.inner.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_within_one_consumer() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn try_send_sheds_at_capacity() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.recv().unwrap(), 1);
        tx.try_send(3).unwrap();
    }

    #[test]
    fn recv_fails_after_senders_drop() {
        let (tx, rx) = bounded::<u32>(4);
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 9);
        assert!(rx.recv().is_err());
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Disconnected)));
    }

    #[test]
    fn send_fails_after_receivers_drop() {
        let (tx, rx) = bounded::<u32>(4);
        drop(rx);
        assert!(tx.send(1).is_err());
        assert!(matches!(tx.try_send(2), Err(TrySendError::Disconnected(2))));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = bounded::<u32>(4);
        assert!(matches!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        ));
        let t = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            tx.send(5).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 5);
        t.join().unwrap();
    }

    #[test]
    fn mpmc_distributes_all_items() {
        let (tx, rx) = bounded(64);
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        for i in 0..1000u32 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut all: Vec<u32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..1000).collect::<Vec<_>>());
    }
}
