//! Offline stand-in for the subset of `crossbeam` 0.8 this workspace uses:
//! [`scope`] (over `std::thread::scope`, stabilized after crossbeam's API was
//! designed) and [`channel`], a Mutex+Condvar MPMC queue with the
//! bounded/unbounded constructors and try/timeout operations the server's
//! worker pool relies on. Semantics match crossbeam for every call site in
//! this repository; throughput is adequate for request dispatch, not for
//! fine-grained message storms.

#![forbid(unsafe_code)]

pub mod channel;

use std::thread;

/// A scope handle: spawn threads that may borrow from the enclosing stack
/// frame. Mirrors `crossbeam::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. The closure receives the scope again so it can
    /// spawn nested work, as with crossbeam.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// Handle to a thread spawned by [`Scope::spawn`].
pub struct ScopedJoinHandle<'scope, T> {
    inner: thread::ScopedJoinHandle<'scope, T>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Wait for the thread, returning its result or its panic payload.
    pub fn join(self) -> thread::Result<T> {
        self.inner.join()
    }
}

/// Run `f` with a scope in which borrowed-stack threads can be spawned; all
/// spawned threads are joined before `scope` returns.
///
/// # Errors
/// Mirrors crossbeam's signature. Since unjoined-thread panics propagate out
/// of `std::thread::scope` directly, the `Err` arm is never produced here —
/// call sites `.expect()` it either way.
pub fn scope<'env, F, R>(f: F) -> thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_stack() {
        let data = [1u64, 2, 3, 4];
        let mut results = vec![0u64; 2];
        let (left, right) = results.split_at_mut(1);
        super::scope(|s| {
            let a = s.spawn(|_| data[..2].iter().sum::<u64>());
            let b = s.spawn(|_| data[2..].iter().sum::<u64>());
            left[0] = a.join().unwrap();
            right[0] = b.join().unwrap();
        })
        .expect("scope failed");
        assert_eq!(results, vec![3, 7]);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let out = super::scope(|s| {
            let h = s.spawn(|s2| {
                let inner = s2.spawn(|_| 21u32);
                inner.join().unwrap() * 2
            });
            h.join().unwrap()
        })
        .expect("scope failed");
        assert_eq!(out, 42);
    }
}
