//! Offline stand-in for the subset of `bytes` 1.x this workspace uses: the
//! [`Buf`]/[`BufMut`] cursor traits over little-endian primitives, a growable
//! [`BytesMut`] builder, and an immutable [`Bytes`] buffer. Backed by plain
//! `Vec<u8>`/`Arc<[u8]>` — none of the real crate's zero-copy machinery, which
//! the snapshot codecs do not rely on.

#![forbid(unsafe_code)]

use std::ops::Deref;
use std::sync::Arc;

/// Read cursor over a byte source.
///
/// Every `get_*` advances the cursor and panics when the source is shorter
/// than the read — callers bound-check with [`Buf::remaining`] first, exactly
/// as with the real crate.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skip `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copy exactly `dst.len()` bytes out, advancing.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }
}

/// Write cursor appending to a byte sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Growable byte buffer; freeze into [`Bytes`] when done.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes pre-allocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Arc::from(self.buf.into_boxed_slice()),
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

/// Immutable, cheaply cloneable byte buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        let mut b = BytesMut::with_capacity(64);
        b.put_slice(b"MAGI");
        b.put_u8(7);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(u64::MAX - 3);
        b.put_f64_le(0.137);
        b.put_f32_le(1.5);
        let frozen = b.freeze();
        let mut r: &[u8] = &frozen;
        let mut magic = [0u8; 4];
        r.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"MAGI");
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), u64::MAX - 3);
        assert!((r.get_f64_le() - 0.137).abs() < 1e-15);
        assert_eq!(r.get_f32_le(), 1.5);
        assert!(!r.has_remaining());
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32_le();
    }
}
