//! Offline stand-in for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! minimal, API-compatible implementation: [`rngs::SmallRng`] is a seeded
//! xoshiro256++ generator (the same family the real `SmallRng` uses on
//! 64-bit targets), [`Rng`] provides `gen`, `gen_bool` and `gen_range` over
//! integer and float ranges, and [`SeedableRng`] provides `seed_from_u64`
//! with SplitMix64 seed expansion. Streams are deterministic per seed but do
//! NOT bit-match the real crate; all in-repo consumers only rely on
//! determinism and statistical quality, never on specific values.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform random words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable from the "standard" distribution (`Rng::gen`).
pub trait StandardSample: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is < 2^-64
                // per draw, far below anything the statistical tests resolve.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi as u128).wrapping_sub(lo as u128) as u64 + 1;
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo.wrapping_add(draw as $t)
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as StandardSample>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as StandardSample>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
range_float!(f32, f64);

/// User-facing generator methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A value from the standard distribution (uniform over the type for
    /// integers, uniform in `[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast, seeded generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                *word = u64::from_le_bytes(seed[i * 8..(i + 1) * 8].try_into().unwrap());
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }

    pub mod mock {
        //! Deterministic mock generators for tests and type annotations.

        use crate::{RngCore, SeedableRng};

        /// Emits an arithmetic sequence of words.
        #[derive(Clone, Debug)]
        pub struct StepRng {
            v: u64,
            increment: u64,
        }

        impl StepRng {
            /// Start at `initial`, advancing by `increment` per draw.
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng {
                    v: initial,
                    increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let out = self.v;
                self.v = self.v.wrapping_add(self.increment);
                out
            }
        }

        impl SeedableRng for StepRng {
            type Seed = [u8; 8];

            fn from_seed(seed: Self::Seed) -> Self {
                StepRng::new(u64::from_le_bytes(seed), 1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let a: usize = rng.gen_range(0..17);
            assert!(a < 17);
            let b: u32 = rng.gen_range(5..=9);
            assert!((5..=9).contains(&b));
            let f: f64 = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let g: f64 = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }
}
