//! Offline stand-in for the subset of `criterion` 0.5 this workspace uses.
//!
//! Each benchmark runs a short warm-up, then `sample_size` timed samples of
//! an adaptively chosen iteration batch, and prints per-sample mean plus the
//! min/median/max across samples. No outlier analysis, plots, or saved
//! baselines — enough to compare hot paths run-over-run in this repository.

#![forbid(unsafe_code)]

use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, as `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Benchmark registry and runner.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` forwards positional args; honor the
        // first non-flag one as a substring filter like the real crate.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Criterion { filter }
    }
}

impl Criterion {
    /// Hook for the real crate's CLI parsing; args were already read in
    /// [`Criterion::default`].
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Run a single standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = name.to_string();
        if self.matches(&id) {
            run_one(&id, 10, &mut f);
        }
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }
}

/// Identifies one parameterized benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` display form, as upstream.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id with no parameter part.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmark `f` with `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        if self.criterion.matches(&full) {
            run_one(&full, self.sample_size, &mut |b| f(b, input));
        }
        self
    }

    /// Benchmark `f` under `id` with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        if self.criterion.matches(&full) {
            run_one(&full, self.sample_size, &mut f);
        }
        self
    }

    /// End the group (upstream emits summary artifacts here; a no-op).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the
/// measured routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, `self.iters` times.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(id: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm-up: find an iteration count that takes ≳ 1 ms per sample, capped
    // so slow benchmarks still finish promptly.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(f64::total_cmp);
    let median = per_iter[per_iter.len() / 2];
    println!(
        "bench {id:<60} {:>12} /iter  (min {}, max {}, {} samples × {} iters)",
        format_time(median),
        format_time(per_iter[0]),
        format_time(per_iter[per_iter.len() - 1]),
        samples,
        iters,
    );
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Group benchmark functions under one registry entry, as upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running every registered group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_work() {
        let mut c = Criterion { filter: None };
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut ran = false;
        group.bench_with_input(BenchmarkId::new("noop", 1), &1u32, |b, &x| {
            ran = true;
            b.iter(|| x + 1)
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn time_formatting() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with(" ms"));
        assert!(format_time(2e-6).ends_with(" µs"));
        assert!(format_time(2e-9).ends_with(" ns"));
    }
}
