//! Offline stand-in for the subset of `proptest` 1.x this workspace uses.
//!
//! A [`strategy::Strategy`] here is simply a sampler: `sample(&mut TestRng)`
//! draws one value. The [`proptest!`] macro expands each test into a loop of
//! `ProptestConfig::cases` sampled executions with a deterministic per-test
//! seed. Failing cases are reported with the case index via panic; there is
//! **no shrinking** — failures print the sampled inputs (tests bind them by
//! pattern, so the panic message includes the case seed to reproduce).
//!
//! Covered surface: integer/float range strategies, tuple strategies,
//! `prop_map` / `prop_flat_map` / `prop_filter`, `Just`, `any::<T>()`,
//! `collection::vec` / `collection::btree_set`, `prop_assert!` /
//! `prop_assert_eq!`, and `ProptestConfig::with_cases`.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a `use proptest::prelude::*;` consumer expects in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert inside a proptest case (no shrinking; panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }` runs
/// `body` for `ProptestConfig::cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($arg:pat in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for __case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&$strat, &mut rng);
                    )*
                    // Name the case in panics so a failure is locatable even
                    // without shrinking.
                    let __guard = $crate::test_runner::CaseGuard::new(stringify!($name), __case);
                    { $body }
                    __guard.disarm();
                }
            }
        )*
    };
}
