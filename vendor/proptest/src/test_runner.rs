//! Test-execution plumbing: configuration, the deterministic per-test RNG,
//! and panic-context reporting.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// How many sampled cases each property test runs.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of sampled executions per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` sampled executions.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps the whole workspace's
        // property suites inside a few seconds without materially weakening
        // the invariants they probe (each file also sets explicit counts).
        ProptestConfig { cases: 64 }
    }
}

/// The RNG handed to strategies. Deterministic per test name so failures
/// reproduce run-over-run; override the stream with `PROPTEST_SEED=<u64>`.
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// Deterministic RNG for the named test.
    pub fn for_test(name: &str) -> Self {
        let base = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0x50_52_4f_50_54_45_53_54); // "PROPTEST"
        let mut h = base;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            inner: SmallRng::seed_from_u64(h),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Prints which case was executing when a test body panicked, since there is
/// no shrinking to re-derive it.
pub struct CaseGuard {
    name: &'static str,
    case: u32,
    armed: bool,
}

impl CaseGuard {
    /// Arm a guard for `case` of test `name`.
    pub fn new(name: &'static str, case: u32) -> Self {
        CaseGuard {
            name,
            case,
            armed: true,
        }
    }

    /// The case completed; do not report.
    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if self.armed {
            eprintln!(
                "proptest: test `{}` failed at sampled case {} \
                 (set PROPTEST_SEED to vary the stream)",
                self.name, self.case
            );
        }
    }
}
