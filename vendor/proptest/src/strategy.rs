//! Sampling strategies and their combinators.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A generator of test values: one `sample` call draws one value.
///
/// Unlike the real proptest there is no value tree and no shrinking; a
/// strategy is exactly a sampler. Combinators mirror the upstream names so
/// test code is source-compatible.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every sampled value.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Build a second-stage strategy from every sampled value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keep only values satisfying `pred`, resampling on rejection.
    ///
    /// Panics after 1 000 consecutive rejections — a filter that dense is a
    /// bug in the strategy, as with upstream's "too many global rejects".
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }
}

/// Strategy yielding one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 1000 consecutive samples",
            self.reason
        );
    }
}

macro_rules! numeric_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
numeric_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, G);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::for_test("combinators_compose");
        let strat = (2usize..10)
            .prop_flat_map(|n| (Just(n), 0..n as u32))
            .prop_filter("nonzero", |&(_, v)| v != 0)
            .prop_map(|(n, v)| (n, v * 2));
        for _ in 0..200 {
            let (n, v) = strat.sample(&mut rng);
            assert!((2..10).contains(&n));
            assert!(v >= 2 && (v / 2) < n as u32);
        }
    }
}
