//! Collection strategies: `vec` and `btree_set` with a size range.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// Size bounds for a generated collection, inclusive on both ends.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.lo..=self.hi)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

/// Strategy for `Vec<T>` with sizes drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy for `BTreeSet<T>`; duplicates merge, so sets may come out
/// smaller than the drawn size (upstream retries; the difference is
/// immaterial to this workspace's tests).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`](fn@vec).
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// See [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_range() {
        let mut rng = TestRng::for_test("vec_respects_size_range");
        let strat = vec(0u32..50, 3..7);
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 50));
        }
    }

    #[test]
    fn btree_set_is_deduplicated() {
        let mut rng = TestRng::for_test("btree_set_is_deduplicated");
        let strat = btree_set(0u32..5, 0..20);
        for _ in 0..100 {
            let s = strat.sample(&mut rng);
            assert!(s.len() <= 5);
        }
    }
}
