//! `any::<T>()` — the canonical whole-domain strategy per type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<bool>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Uniform in [0, 1): covers the probability-shaped inputs this
        // workspace feeds through `any`; full-domain floats (inf/NaN) are
        // exercised by dedicated hand-written corruption tests instead.
        rng.gen::<f64>()
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
