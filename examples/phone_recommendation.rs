//! Personalized product recommendation at network scale.
//!
//! The introduction's motivating scenario on a generated 2 000-user social
//! network: hundreds of topics circulate, a user asks a keyword query, and
//! PIT-Search ranks the matching topics by the influence of *their*
//! communities on *that* user. Two users in different social neighborhoods
//! issue the same query and receive different rankings.
//!
//! ```text
//! cargo run --release --example phone_recommendation
//! ```

use pit::{PitEngine, SummarizerKind};
use pit_datasets::{generate, paper_specs};
use pit_graph::TermId;
use pit_topics::KeywordQuery;

fn main() {
    // data_2k: a 2 000-user preferential-attachment network with a
    // Zipf-skewed synthetic topic space (see pit-datasets).
    let spec = &paper_specs(10)[0];
    println!("generating {} ({} users)…", spec.name, spec.nodes);
    let ds = generate(spec);
    let query_term = TermId(0); // the hottest hub keyword ("query-0")
    let n_topics = ds.space.topics_for_term(query_term).len();
    println!(
        "topic space: {} topics, keyword {:?} matches {} of them\n",
        ds.space.topic_count(),
        ds.vocab.term(query_term),
        n_topics
    );

    println!("running offline stage (walks + LRW-A summaries + propagation index)…");
    // Under the weighted-cascade model an in-edge of a node with in-degree d
    // carries probability 1/d, so influencing a heavily-followed hub takes
    // low-probability paths: θ must sit well below 1/max-degree of the users
    // we care about or their Γ(v) tables come out empty.
    let engine = PitEngine::builder()
        .propagation(pit_index::PropIndexConfig::with_theta(0.002))
        .summarizer(SummarizerKind::default_lrw())
        .build_with_vocab(ds.graph, ds.space, Some(ds.vocab));

    // Pick two users from different corners of the graph: an early,
    // well-connected member and a peripheral late joiner.
    let hub = engine
        .graph()
        .nodes()
        .max_by_key(|&u| engine.graph().in_degree(u))
        .expect("non-empty graph");
    let peripheral = pit_graph::NodeId(engine.graph().node_count() as u32 - 1);

    for (label, u) in [("hub user", hub), ("peripheral user", peripheral)] {
        let out = engine.search(&KeywordQuery::new(u, vec![query_term]), 5);
        println!(
            "\n{label} (user {u}, in-degree {}): top-5 of {} candidate topics \
             ({} topics pruned, {} tables probed)",
            engine.graph().in_degree(u),
            out.candidate_topics,
            out.pruned_topics,
            out.probed_tables
        );
        for (rank, s) in out.top_k.iter().enumerate() {
            let nodes = engine.space().topic_nodes(s.topic).len();
            println!(
                "  {}. topic {:<5} influence {:.5}  ({} users discuss it)",
                rank + 1,
                s.topic.to_string(),
                s.score,
                nodes
            );
        }
    }

    println!(
        "\nNote how the two rankings differ: influence is personal, not global \
         popularity — the core claim of PIT-Search."
    );
}
