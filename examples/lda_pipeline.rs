//! The paper's full topic-generation pipeline, end to end.
//!
//! Section 6.1 builds the topic space by treating each user's posted
//! messages as a document and running LDA over it. This example reproduces
//! that pipeline on synthetic "tweets": generate a 600-user social network,
//! give every user a document drawn from a hidden 8-topic mixture, *learn*
//! the topics back with collapsed-Gibbs LDA, extract the topic space from
//! the fitted model, and run PIT-Search on top — no hand-assigned topics
//! anywhere.
//!
//! ```text
//! cargo run --release --example lda_pipeline
//! ```

use pit::{PitEngine, SummarizerKind};
use pit_datasets::{DatasetKind, DatasetSpec};
use pit_graph::NodeId;
use pit_topics::lda::{extract_topic_space, synthetic_corpus, LdaConfig, LdaModel};

fn main() {
    // 1. A social graph (the generator's topics are discarded; we learn our
    //    own from text).
    let spec = DatasetSpec {
        name: "lda-demo".into(),
        nodes: 600,
        kind: DatasetKind::PowerLaw { edges_per_node: 4 },
        topics: pit_datasets::spec::scaled_topic_config(600, 99),
        seed: 99,
    };
    println!("generating {}-user network…", spec.nodes);
    let graph = pit_datasets::generate(&spec).graph;

    // 2. One document per user, drawn from 8 hidden topics over a 160-term
    //    vocabulary (20-term blocks).
    const HIDDEN_TOPICS: usize = 8;
    const BLOCK: usize = 20;
    let (docs, vocab_size) = synthetic_corpus(graph.node_count(), HIDDEN_TOPICS, BLOCK, 60, 7);
    println!(
        "corpus: {} documents, {} tokens each, vocabulary of {vocab_size} terms",
        docs.len(),
        docs[0].len()
    );

    // 3. Learn the topics back with LDA (the paper: "apply a simple LDA
    //    topic model … to generate a bag of terms (normally 16 terms)").
    println!("fitting LDA (collapsed Gibbs, {HIDDEN_TOPICS} topics)…");
    let model = LdaModel::fit(
        &docs,
        vocab_size,
        LdaConfig {
            topics: HIDDEN_TOPICS,
            iterations: 80,
            ..LdaConfig::default()
        },
    );
    for t in 0..3 {
        let terms: Vec<String> = model
            .top_terms(t, 6)
            .iter()
            .map(|w| format!("w{w}"))
            .collect();
        println!("  learned topic {t}: top terms {terms:?}");
    }

    // 4. Extract the topic space from the fitted model and build the engine.
    let space = extract_topic_space(&model, docs.len(), vocab_size, 16, 0.25);
    println!(
        "extracted topic space: {} topics, avg |V_t| = {:.1}",
        space.topic_count(),
        space.avg_topic_node_count()
    );
    let engine = PitEngine::builder()
        .summarizer(SummarizerKind::default_lrw())
        .propagation(pit_index::PropIndexConfig::with_theta(0.005))
        .build(graph, space);

    // 5. Query: a keyword from hidden topic 0's term block matches the
    //    learned topics that absorbed that block.
    let keyword = pit_graph::TermId(3); // a term from hidden block 0
    for user in [NodeId(10), NodeId(550)] {
        let out = engine.search(&pit_topics::KeywordQuery::new(user, vec![keyword]), 3);
        println!(
            "\nuser {user}, keyword w{keyword}: {} candidate topics",
            out.candidate_topics
        );
        for (rank, s) in out.top_k.iter().enumerate() {
            println!(
                "  {}. learned topic {:<3} influence {:.5}",
                rank + 1,
                s.topic.to_string(),
                s.score
            );
        }
    }
    println!(
        "\nThe whole chain — text → LDA → topic space → summarization → \
         personalized search — ran without any hand-assigned topics."
    );
}
