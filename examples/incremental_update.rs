//! Incremental maintenance: the social network changes, the engine keeps up.
//!
//! Section 4.4 notes that "the offline pre-processing is updated after a
//! period of time when the social network and topics have changed". This
//! example builds an engine over the Figure-1 network, then applies two
//! deltas — a new follow edge and a new topic mention — and shows how the
//! personalized results shift while only the affected artifacts were
//! refreshed. It also round-trips the updated engine through the on-disk
//! store.
//!
//! ```text
//! cargo run --release --example incremental_update
//! ```

use pit::{Delta, PitEngine, SummarizerKind};
use pit_graph::fixtures::{figure1_graph, figure1_topics, user};
use pit_graph::TopicId;
use pit_index::PropIndexConfig;
use pit_walk::WalkConfig;

const PHONES: [&str; 3] = ["Apple Phone", "Samsung Phone", "HTC Phone"];

fn print_top(engine: &PitEngine, label: &str) {
    let phone = engine.vocab().expect("vocab kept").get("phone").unwrap();
    println!("{label}");
    for u in [3u32, 7] {
        let out = engine.search(&pit_topics::KeywordQuery::new(user(u), vec![phone]), 1);
        let s = &out.top_k[0];
        println!(
            "  user {u}: {} (influence {:.4})",
            PHONES[s.topic.index()],
            s.score
        );
    }
}

fn main() {
    // Offline build, identical to the quickstart.
    let graph = figure1_graph();
    let mut vocab = pit_topics::Vocabulary::new();
    let phone = vocab.intern("phone");
    let mut b = pit_topics::TopicSpaceBuilder::new(graph.node_count(), 1);
    for members in &figure1_topics() {
        let t = b.add_topic(vec![phone]);
        for &m in members {
            b.assign(m, t);
        }
    }
    let mut engine = PitEngine::builder()
        .walk(WalkConfig::new(4, 64).with_seed(42))
        .propagation(PropIndexConfig::with_theta(0.005))
        .summarizer(SummarizerKind::Lrw(pit_summarize::LrwConfig {
            lambda: 0.2,
            mu: 1.0,
            ..Default::default()
        }))
        .build_with_vocab(graph, b.build(), Some(vocab));

    print_top(&engine, "before any change:");

    // Delta 1: user 4 (a Samsung advocate) starts influencing user 7.
    let report = engine
        .apply_delta(&Delta {
            new_edges: vec![(user(4), user(7), 0.9)],
            new_assignments: vec![],
        })
        .expect("valid delta");
    println!(
        "\ndelta 1 applied: {} Γ tables refreshed, {} topics re-summarized",
        report.refreshed_gamma_tables, report.resummarized_topics
    );
    print_top(&engine, "after user 4 → user 7 (0.9):");

    // Delta 2: user 5 — user 3's strongest influencer — starts talking
    // about HTC phones.
    let report = engine
        .apply_delta(&Delta {
            new_edges: vec![],
            new_assignments: vec![(user(5), TopicId(2))],
        })
        .expect("valid delta");
    println!(
        "\ndelta 2 applied: {} Γ tables refreshed, {} topics re-summarized",
        report.refreshed_gamma_tables, report.resummarized_topics
    );
    print_top(&engine, "after user 5 starts mentioning HTC:");

    // Persist the updated engine and reload it — results survive.
    let dir = std::env::temp_dir().join("pit-incremental-example");
    pit::store::save_engine(&dir, &engine).expect("save");
    let reloaded = pit::store::load_engine(&dir).expect("load");
    print_top(&reloaded, "\nreloaded from disk:");
    std::fs::remove_dir_all(&dir).ok();
}
