//! Quickstart: the paper's Example 1 end to end.
//!
//! Builds the 15-user network of Figure 1, declares the three phone topics,
//! runs the offline summarization + indexing pipeline, and issues the query
//! `q = {Phone}` as three different users — reproducing the paper's claim
//! that the same query returns different top topics for different users.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pit::{PitEngine, SummarizerKind};
use pit_graph::fixtures::{figure1_graph, figure1_topics, user};
use pit_index::PropIndexConfig;
use pit_topics::TopicSpaceBuilder;
use pit_walk::WalkConfig;

const PHONES: [&str; 3] = ["Apple Phone", "Samsung Phone", "HTC Phone"];

fn main() {
    // 1. The social network of Figure 1.
    let graph = figure1_graph();

    // 2. Topic space: one keyword "phone" shared by all three topics, so the
    //    query matches t1, t2 and t3.
    let mut vocab = pit_topics::Vocabulary::new();
    let phone = vocab.intern("phone");
    let mut builder = TopicSpaceBuilder::new(graph.node_count(), 1);
    for members in &figure1_topics() {
        let t = builder.add_topic(vec![phone]);
        for &m in members {
            builder.assign(m, t);
        }
    }
    let space = builder.build();

    // 3. Offline stage: walks, LRW-A summarization, propagation index.
    let engine = PitEngine::builder()
        .walk(WalkConfig::new(4, 64).with_seed(42))
        .propagation(PropIndexConfig::with_theta(0.005))
        .summarizer(SummarizerKind::Lrw(pit_summarize::LrwConfig {
            // Figure 1 is a 15-node DAG: with the default damping the
            // reinforced walk concentrates score on *downstream* hubs, which
            // cannot influence upstream users. A low λ keeps the topic prior
            // dominant so representatives stay at the influence sources, and
            // μ = 1 keeps |V_t| of them — on a graph this small the summary
            // then reproduces the exact influence of Example 1.
            lambda: 0.2,
            mu: 1.0,
            ..Default::default()
        }))
        .build_with_vocab(graph, space, Some(vocab));

    // 4. Online: the same query for three users.
    println!("PIT-Search: query = \"phone\"\n");
    for u in [3u32, 7, 14] {
        let out = engine
            .search_keywords(user(u), &["phone"], 3)
            .expect("phone is in the vocabulary");
        println!("User {u}:");
        for (rank, s) in out.top_k.iter().enumerate() {
            println!(
                "  {}. {:<13} (influence {:.4})",
                rank + 1,
                PHONES[s.topic.index()],
                s.score
            );
        }
        println!();
    }
    println!("Paper's Example 1 expects: User 3 → Samsung, User 7 → HTC, User 14 → Samsung.");
}
