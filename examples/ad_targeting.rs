//! Target advertising: for which users would our campaign topic rank top-k?
//!
//! The paper lists "target advertising, or personal product promotion" as a
//! direct application. This example inverts the search: given one campaign
//! topic, scan a user population and keep the users for whom the topic
//! enters their personal top-3 — the audience that is socially pre-disposed
//! to the campaign. Because the offline indexes are shared, the per-user
//! check is just the online Algorithm-10 probe.
//!
//! ```text
//! cargo run --release --example ad_targeting
//! ```

use pit::{PitEngine, SummarizerKind};
use pit_datasets::{generate, paper_specs};
use pit_graph::{NodeId, TermId};

fn main() {
    let spec = &paper_specs(10)[0]; // data_2k
    println!("generating {} ({} users)…", spec.name, spec.nodes);
    let ds = generate(spec);

    // The campaign topic: the most discussed topic of the hottest keyword.
    let term = TermId(0);
    let campaign = *ds
        .space
        .topics_for_term(term)
        .iter()
        .max_by_key(|&&t| ds.space.topic_nodes(t).len())
        .expect("keyword matches topics");
    println!(
        "campaign topic {campaign}: discussed by {} users, competing with {} sibling topics",
        ds.space.topic_nodes(campaign).len(),
        ds.space.topics_for_term(term).len() - 1
    );

    println!("running offline stage…");
    let engine = PitEngine::builder()
        .summarizer(SummarizerKind::default_lrw())
        .build_with_vocab(ds.graph, ds.space, Some(ds.vocab));

    // Scan a sample of the population with the inverse-search API.
    const K: usize = 3;
    let sample: Vec<NodeId> = (0..engine.graph().node_count())
        .step_by(10)
        .map(NodeId::from_index)
        .collect();
    let sample_len = sample.len();
    let audience = pit_search_core::find_audience(
        engine.space(),
        engine.propagation(),
        engine.reps(),
        campaign,
        &[term],
        sample,
        K,
    );

    println!(
        "\naudience: campaign ranks in the personal top-{K} for {} of {sample_len} sampled users",
        audience.len()
    );
    println!("strongest 10 targets:");
    for hit in audience.iter().take(10) {
        println!(
            "  user {:<5} rank {}  influence {:.5}",
            hit.user, hit.rank, hit.score
        );
    }
    println!(
        "\nEvery check reused the same offline summaries and propagation index — \
         per-user targeting is a cheap online probe."
    );
}
