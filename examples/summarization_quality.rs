//! Comparing the two summarizers on the paper's own objective.
//!
//! Definition 1 defines social summarization as minimizing
//! `Σ_v |I(t,v) − I*(t,v)|` — how faithfully the weighted representatives
//! reproduce the topic's exact influence field. This example measures that
//! objective directly (via matrix propagation of both weight vectors) for
//! RCL-A and LRW-A across several topics and representative budgets,
//! reproducing in miniature the paper's Section 6.4 finding that LRW-A
//! summaries are more faithful, and that RCL-A narrows the gap as the
//! budget grows.
//!
//! ```text
//! cargo run --release --example summarization_quality
//! ```

use pit_baselines::BaseMatrix;
use pit_datasets::{generate, paper_specs};
use pit_eval::{summarization_error, Table};
use pit_graph::TopicId;
use pit_summarize::{
    LrwConfig, LrwSummarizer, RclConfig, RclSummarizer, SummarizeContext, Summarizer,
};
use pit_walk::{WalkConfig, WalkIndex};

fn main() {
    let spec = &paper_specs(10)[0]; // data_2k
    println!("generating {} ({} users)…", spec.name, spec.nodes);
    let ds = generate(spec);
    let walks = WalkIndex::build(&ds.graph, WalkConfig::new(5, 64));
    let ctx = SummarizeContext {
        graph: &ds.graph,
        space: &ds.space,
        walks: &walks,
    };
    let matrix = BaseMatrix::new(&ds.graph, &ds.space);

    // Measure a few mid-sized topics.
    let mut by_size: Vec<(usize, TopicId)> = ds
        .space
        .topics()
        .map(|t| (ds.space.topic_nodes(t).len(), t))
        .collect();
    by_size.sort_unstable();
    let topics: Vec<TopicId> = by_size
        .iter()
        .rev()
        .skip(5)
        .take(5)
        .map(|&(_, t)| t)
        .collect();

    let budgets = [4usize, 8, 16];
    let mut table = Table::new(&["summarizer", "reps=4", "reps=8", "reps=16"]);
    for name in ["RCL-A", "LRW-A"] {
        let mut cells = vec![name.to_string()];
        for &budget in &budgets {
            let mut total = 0.0;
            for &t in &topics {
                let reps = match name {
                    "RCL-A" => RclSummarizer::new(RclConfig {
                        c_size: budget,
                        sample_rate: 0.10,
                        ..RclConfig::default()
                    })
                    .summarize(&ctx, t),
                    _ => LrwSummarizer::new(LrwConfig {
                        rep_count: Some(budget),
                        ..LrwConfig::default()
                    })
                    .summarize(&ctx, t),
                };
                total += summarization_error(&matrix, t, &reps);
            }
            cells.push(format!("{:.4}", total / topics.len() as f64));
        }
        table.row_owned(cells);
    }

    println!(
        "\nMean Definition-1 summarization error over {} topics (lower is better):\n",
        topics.len()
    );
    print!("{}", table.render());
    println!(
        "\nExpected shape (paper §6.4): LRW-A well below RCL-A at equal budget. \
         RCL-A is often flat in the budget here: on sparse graphs its pairwise \
         reachability test splits most topic nodes into singleton clusters \
         regardless of C_Size — the very limitation (\"the number of generated \
         groups may be very large\") the paper lists in §3.3 as motivation for \
         LRW-A."
    );
}
