//! # pit — Personalized Influential Topic Search
//!
//! A from-scratch Rust reproduction of *Personalized Influential Topic
//! Search via Social Network Summarization* (Li, Liu, Yu, Chen, Sellis,
//! Culpepper — ICDE 2017).
//!
//! Given a keyword query `q` issued by a user `v` of a social network,
//! PIT-Search returns the top-k q-related topics ranked by how strongly each
//! topic's community can influence `v` through the network's weighted
//! influence edges. The pipeline:
//!
//! 1. **Offline** — sample L-length random walks ([`walk`]), summarize each
//!    topic into a small weighted representative-node set ([`summarize`]:
//!    RCL-A clustering or LRW-A reinforced-PageRank + absorbing migration),
//!    and materialize each user's nearby influence table ([`index`]).
//! 2. **Online** — probe the query user's table against the representative
//!    sets, prune hopeless topics by upper bound, expand through marked
//!    frontier nodes only when the top-k is still contested ([`search`]).
//!
//! The [`PitEngine`] facade runs the whole pipeline:
//!
//! ```
//! use pit::{PitEngine, SummarizerKind};
//! use pit_graph::fixtures;
//! use pit_graph::TermId;
//! use pit_topics::TopicSpaceBuilder;
//!
//! // Figure 1's network, with its three phone topics.
//! let graph = fixtures::figure1_graph();
//! let mut b = TopicSpaceBuilder::new(graph.node_count(), 1);
//! for nodes in &fixtures::figure1_topics() {
//!     let t = b.add_topic(vec![TermId(0)]);
//!     for &n in nodes {
//!         b.assign(n, t);
//!     }
//! }
//! let engine = PitEngine::builder()
//!     .summarizer(SummarizerKind::default_lrw())
//!     .build(graph, b.build());
//! let out = engine.search_user_term(fixtures::user(3), TermId(0), 1);
//! assert_eq!(out.top_k.len(), 1);
//! ```
//!
//! Sub-crates are re-exported under short names: [`graph`], [`topics`],
//! [`walk`], [`summarize`], [`index`], [`search`], [`baselines`],
//! [`datasets`], [`eval`].

#![forbid(unsafe_code)]

pub use pit_baselines as baselines;
pub use pit_datasets as datasets;
pub use pit_eval as eval;
pub use pit_graph as graph;
pub use pit_index as index;
pub use pit_search_core as search;
pub use pit_summarize as summarize;
pub use pit_topics as topics;
pub use pit_walk as walk;

pub mod engine;
pub mod shard;
pub mod store;
pub mod update;

pub use engine::{PitEngine, PitEngineBuilder, SummarizerKind};
pub use pit_search_core::{CancelToken, SearchError};
pub use shard::{shard_of, ShardSpec};
pub use update::{Delta, DeltaScope, UpdateReport};
