//! Deterministic shard maps and shard-sliced snapshots.
//!
//! Horizontal scale partitions *users* — together with their Γ(v)
//! propagation tables and sampled-walk rows, the two per-node artifacts that
//! dominate the index footprint — across N engine shards. Everything a
//! query's *coordinator* needs globally (the graph topology, topic space,
//! vocabulary, representative sets, engine settings) is replicated on every
//! shard: those artifacts are small, and replication is what lets any shard
//! answer the ranking-independent parts of a query and lets incremental
//! updates re-summarize topics identically everywhere without coordination.
//!
//! The shard map is pure arithmetic — [`shard_of`] is `v mod N` — so routers
//! and shards never exchange an assignment table and can never disagree
//! about ownership. A shard snapshot is a normal engine directory (loadable
//! by [`crate::store::load_engine`] for tooling) whose unowned Γ tables and
//! walk rows are empty, plus a tiny `shard.pits` manifest recording
//! `(index, count)` so a serving daemon knows which slice it holds.

use crate::engine::PitEngine;
use crate::store::{self, StoreError};
use pit_graph::NodeId;
use std::path::{Path, PathBuf};

/// File name of the shard manifest inside a shard snapshot directory.
pub const MANIFEST_FILE: &str = "shard.pits";

const SHARD_MAGIC: &[u8; 4] = b"PITS";
const SHARD_VERSION: u8 = 1;

/// Which shard owns a node under an `count`-way modulo map.
pub fn shard_of(v: NodeId, count: u32) -> u32 {
    debug_assert!(count >= 1, "shard count must be positive");
    v.0 % count
}

/// One slice of an `count`-way user partition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ShardSpec {
    /// This shard's position in `0..count`.
    pub index: u32,
    /// Total number of shards in the partition.
    pub count: u32,
}

impl ShardSpec {
    /// Build a spec, validating `index < count` and `count >= 1`.
    pub fn new(index: u32, count: u32) -> Self {
        assert!(count >= 1, "shard count must be positive");
        assert!(index < count, "shard index {index} out of range 0..{count}");
        ShardSpec { index, count }
    }

    /// Whether this shard owns node `v` under the modulo map.
    pub fn owns(&self, v: NodeId) -> bool {
        shard_of(v, self.count) == self.index
    }

    /// Serialize the manifest (`shard.pits` contents).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + 1 + 4 + 4);
        out.extend_from_slice(SHARD_MAGIC);
        out.push(SHARD_VERSION);
        out.extend_from_slice(&self.index.to_le_bytes());
        out.extend_from_slice(&self.count.to_le_bytes());
        out
    }

    /// Parse a manifest written by [`ShardSpec::encode`].
    ///
    /// # Errors
    /// Returns a [`StoreError::Corrupt`] naming the defect for wrong length,
    /// magic, version, or an out-of-range `(index, count)` pair.
    pub fn decode(bytes: &[u8]) -> Result<Self, StoreError> {
        let corrupt = |what: &str| StoreError::Corrupt(format!("shard manifest: {what}"));
        if bytes.len() != 4 + 1 + 4 + 4 {
            return Err(corrupt("wrong length"));
        }
        if &bytes[..4] != SHARD_MAGIC {
            return Err(corrupt("bad magic"));
        }
        if bytes[4] != SHARD_VERSION {
            return Err(corrupt("unsupported version"));
        }
        let index = u32::from_le_bytes(bytes[5..9].try_into().map_err(|_| corrupt("truncated"))?);
        let count = u32::from_le_bytes(bytes[9..13].try_into().map_err(|_| corrupt("truncated"))?);
        if count == 0 {
            return Err(corrupt("zero shard count"));
        }
        if index >= count {
            return Err(corrupt("shard index out of range"));
        }
        Ok(ShardSpec { index, count })
    }
}

impl std::fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// Slice `engine` down to the artifacts shard `spec` owns: Γ tables and walk
/// rows of unowned nodes are emptied (keeping full-length vectors so every
/// cross-artifact node-count invariant still holds), while the graph, topic
/// space, vocabulary, and representative sets are replicated verbatim.
pub fn slice_engine(engine: &PitEngine, spec: ShardSpec) -> PitEngine {
    let keep = |v: NodeId| spec.owns(v);
    PitEngine::from_parts(
        engine.graph().clone(),
        engine.space().clone(),
        engine.vocab().cloned(),
        engine.walks().sliced(&keep),
        engine.propagation().sliced(&keep),
        engine.reps().clone(),
        engine.summarizer().clone(),
        engine.max_expand_rounds(),
    )
}

/// What [`split_snapshot`] produced and verified.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitReport {
    /// Number of shards written.
    pub shards: u32,
    /// Total users in the snapshot.
    pub nodes: usize,
    /// Users owned by each shard, indexed by shard.
    pub owned_per_shard: Vec<usize>,
}

/// Slice the engine snapshot at `src` into `shards` shard snapshots under
/// `out_root/shard-<i>`, then re-load every shard from disk and verify the
/// partition: each shard carries a consistent manifest, every user is owned
/// by exactly one shard, owned Γ tables are bit-identical to the source, and
/// unowned tables are empty.
///
/// # Errors
/// I/O or corruption errors from the underlying store, or a
/// [`StoreError::Corrupt`] describing the first partition violation found.
pub fn split_snapshot(src: &Path, out_root: &Path, shards: u32) -> Result<SplitReport, StoreError> {
    if shards == 0 {
        return Err(StoreError::Corrupt("cannot split into zero shards".into()));
    }
    let engine = store::load_engine(src)?;
    let mut dirs = Vec::with_capacity(shards as usize);
    for i in 0..shards {
        let spec = ShardSpec::new(i, shards);
        let dir = out_root.join(format!("shard-{i}"));
        store::save_shard(&dir, &slice_engine(&engine, spec), spec)?;
        dirs.push(dir);
    }
    verify_split(&engine, &dirs)
}

/// Verify that the shard snapshot directories `dirs` form an exact partition
/// of `source`'s users. See [`split_snapshot`] for the checks performed.
///
/// # Errors
/// A [`StoreError::Corrupt`] describing the first violation found.
pub fn verify_split(source: &PitEngine, dirs: &[PathBuf]) -> Result<SplitReport, StoreError> {
    let corrupt = |what: String| StoreError::Corrupt(what);
    let count = dirs.len() as u32;
    if count == 0 {
        return Err(corrupt("no shard directories to verify".into()));
    }
    let mut specs = Vec::with_capacity(dirs.len());
    let mut engines = Vec::with_capacity(dirs.len());
    for (i, dir) in dirs.iter().enumerate() {
        let spec = store::load_shard_spec(dir)?
            .ok_or_else(|| corrupt(format!("{}: missing shard manifest", dir.display())))?;
        if spec.count != count {
            return Err(corrupt(format!(
                "{}: manifest says {} shards, {} directories given",
                dir.display(),
                spec.count,
                count
            )));
        }
        if spec.index != i as u32 {
            return Err(corrupt(format!(
                "{}: manifest says shard {}, expected shard {i}",
                dir.display(),
                spec.index
            )));
        }
        let engine = store::load_engine(dir)?;
        if engine.graph().node_count() != source.graph().node_count() {
            return Err(corrupt(format!(
                "{}: node count {} disagrees with source {}",
                dir.display(),
                engine.graph().node_count(),
                source.graph().node_count()
            )));
        }
        specs.push(spec);
        engines.push(engine);
    }

    let nodes = source.graph().node_count();
    let mut owned_per_shard = vec![0usize; dirs.len()];
    for v in source.graph().nodes() {
        let owners: Vec<u32> = specs
            .iter()
            .filter(|s| s.owns(v))
            .map(|s| s.index)
            .collect();
        if owners.len() != 1 {
            return Err(corrupt(format!(
                "user {v} owned by {} shards ({owners:?}), expected exactly one",
                owners.len()
            )));
        }
        let owner = owners[0] as usize;
        owned_per_shard[owner] += 1;
        for (i, shard) in engines.iter().enumerate() {
            let gamma = shard.propagation().gamma(v);
            if i == owner {
                if gamma != source.propagation().gamma(v) {
                    return Err(corrupt(format!(
                        "shard {i}: Γ({v}) diverges from the source snapshot"
                    )));
                }
            } else if !gamma.is_empty() {
                return Err(corrupt(format!(
                    "shard {i}: unowned user {v} has a non-empty Γ table"
                )));
            }
        }
    }
    Ok(SplitReport {
        shards: count,
        nodes,
        owned_per_shard,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pit_graph::fixtures::{figure1_graph, figure1_topics, user};
    use pit_graph::TermId;
    use pit_topics::TopicSpaceBuilder;
    use pit_walk::WalkConfig;
    use std::fs;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pit-shard-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn build_engine() -> PitEngine {
        let graph = figure1_graph();
        let mut vocab = pit_topics::Vocabulary::new();
        let phone = vocab.intern("phone");
        let mut b = TopicSpaceBuilder::new(graph.node_count(), 1);
        for members in &figure1_topics() {
            let t = b.add_topic(vec![phone]);
            for &m in members {
                b.assign(m, t);
            }
        }
        PitEngine::builder()
            .walk(WalkConfig::new(4, 16).with_seed(3))
            .build_with_vocab(graph, b.build(), Some(vocab))
    }

    #[test]
    fn modulo_map_partitions_every_node_exactly_once() {
        for count in 1..=5u32 {
            let specs: Vec<ShardSpec> = (0..count).map(|i| ShardSpec::new(i, count)).collect();
            for v in 0..100u32 {
                let owners = specs.iter().filter(|s| s.owns(NodeId(v))).count();
                assert_eq!(owners, 1, "node {v} with {count} shards");
                assert!(specs[shard_of(NodeId(v), count) as usize].owns(NodeId(v)));
            }
        }
    }

    #[test]
    fn manifest_roundtrips_and_rejects_corruption() {
        let spec = ShardSpec::new(2, 5);
        let bytes = spec.encode();
        assert_eq!(ShardSpec::decode(&bytes).unwrap(), spec);

        assert!(ShardSpec::decode(&bytes[..8]).is_err(), "truncated");
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(ShardSpec::decode(&bad).is_err(), "bad magic");
        let mut bad = bytes.clone();
        bad[4] = 99;
        assert!(ShardSpec::decode(&bad).is_err(), "bad version");
        // index >= count
        let mut bad = ShardSpec::new(0, 1).encode();
        bad[5..9].copy_from_slice(&7u32.to_le_bytes());
        assert!(ShardSpec::decode(&bad).is_err(), "index out of range");
        // zero count
        let mut bad = bytes;
        bad[9..13].copy_from_slice(&0u32.to_le_bytes());
        assert!(ShardSpec::decode(&bad).is_err(), "zero count");
    }

    #[test]
    fn slice_keeps_owned_tables_and_empties_the_rest() {
        let engine = build_engine();
        let spec = ShardSpec::new(1, 3);
        let slice = slice_engine(&engine, spec);
        assert_eq!(slice.graph().node_count(), engine.graph().node_count());
        for v in engine.graph().nodes() {
            if spec.owns(v) {
                assert_eq!(
                    slice.propagation().gamma(v),
                    engine.propagation().gamma(v),
                    "owned Γ({v}) must be preserved"
                );
            } else {
                assert!(
                    slice.propagation().gamma(v).is_empty(),
                    "unowned Γ({v}) must be empty"
                );
            }
        }
        // Replicated artifacts are intact.
        assert_eq!(slice.reps().len(), engine.reps().len());
        assert_eq!(slice.space().topic_count(), engine.space().topic_count());
    }

    #[test]
    fn split_snapshot_writes_loadable_verified_shards() {
        let src = temp_dir("split-src");
        let out = temp_dir("split-out");
        let engine = build_engine();
        store::save_engine(&src, &engine).unwrap();

        let report = split_snapshot(&src, &out, 3).unwrap();
        assert_eq!(report.shards, 3);
        assert_eq!(report.nodes, engine.graph().node_count());
        assert_eq!(
            report.owned_per_shard.iter().sum::<usize>(),
            engine.graph().node_count(),
            "ownership must cover every user exactly once"
        );
        // Each shard is a plain loadable engine with its manifest intact.
        for i in 0..3u32 {
            let dir = out.join(format!("shard-{i}"));
            let spec = store::load_shard_spec(&dir).unwrap().expect("manifest");
            assert_eq!(spec, ShardSpec::new(i, 3));
            assert!(store::load_engine(&dir).is_ok());
        }
        fs::remove_dir_all(&src).unwrap();
        fs::remove_dir_all(&out).unwrap();
    }

    #[test]
    fn verify_split_catches_a_tampered_manifest() {
        let src = temp_dir("tamper-src");
        let out = temp_dir("tamper-out");
        let engine = build_engine();
        store::save_engine(&src, &engine).unwrap();
        split_snapshot(&src, &out, 2).unwrap();

        // Rewrite shard-1's manifest to claim it is shard 0: user ownership
        // now overlaps and the verifier must notice.
        fs::write(
            out.join("shard-1").join(MANIFEST_FILE),
            ShardSpec::new(0, 2).encode(),
        )
        .unwrap();
        let dirs: Vec<PathBuf> = (0..2).map(|i| out.join(format!("shard-{i}"))).collect();
        assert!(matches!(
            verify_split(&engine, &dirs),
            Err(StoreError::Corrupt(_))
        ));
        fs::remove_dir_all(&src).unwrap();
        fs::remove_dir_all(&out).unwrap();
    }

    #[test]
    fn verify_split_catches_a_swapped_slice() {
        let src = temp_dir("swap-src");
        let out = temp_dir("swap-out");
        let engine = build_engine();
        store::save_engine(&src, &engine).unwrap();
        split_snapshot(&src, &out, 2).unwrap();

        // Overwrite shard-0's snapshot with shard-1's slice (manifest still
        // says shard 0): owned tables are now empty where they must match.
        let wrong = slice_engine(&engine, ShardSpec::new(1, 2));
        store::save_shard(&out.join("shard-0"), &wrong, ShardSpec::new(0, 2)).unwrap();
        let dirs: Vec<PathBuf> = (0..2).map(|i| out.join(format!("shard-{i}"))).collect();
        assert!(matches!(
            verify_split(&engine, &dirs),
            Err(StoreError::Corrupt(_))
        ));
        fs::remove_dir_all(&src).unwrap();
        fs::remove_dir_all(&out).unwrap();
    }

    #[test]
    fn single_shard_split_is_a_full_copy() {
        let src = temp_dir("one-src");
        let out = temp_dir("one-out");
        let engine = build_engine();
        store::save_engine(&src, &engine).unwrap();
        let report = split_snapshot(&src, &out, 1).unwrap();
        assert_eq!(report.owned_per_shard, vec![engine.graph().node_count()]);

        // A 1-way shard serves exactly like the original.
        let shard = store::load_engine(&out.join("shard-0")).unwrap();
        assert_eq!(
            engine.search_user_term(user(3), TermId(0), 3).top_k,
            shard.search_user_term(user(3), TermId(0), 3).top_k
        );
        fs::remove_dir_all(&src).unwrap();
        fs::remove_dir_all(&out).unwrap();
    }
}
