//! On-disk persistence of a fully built engine — the flat snapshot.
//!
//! The paper's offline stage (walk sampling, per-topic summarization,
//! propagation-index materialization) is re-run only "after a period of time
//! when the social network and topics have changed" (Section 4.4); between
//! refreshes, a deployment serves queries from the materialized artifacts.
//!
//! [`save_engine`] writes one sectioned, checksummed flat container,
//! `engine.pitf` (the `pit-store` format: 32-byte header, section table,
//! 16-byte-aligned little-endian payloads), staging the directory and
//! `rename`-ing it into place so a crash mid-save can never leave a torn,
//! half-written engine where a live `RELOAD` (or later [`load_engine`])
//! would find it:
//!
//! ```text
//! <dir>/engine.pitf     flat snapshot: META blob, the six CSR-graph
//!                       arrays, the five walk-index arrays, the five
//!                       propagation-index arrays, and the topic-space /
//!                       vocabulary / representative-index blobs
//! <dir>/shard.pits      shard manifest (sharded saves only)
//! ```
//!
//! Three loaders trade validation depth for speed; all of them parse the
//! META blob through the bounds-checked [`pit_store::ByteReader`] and run
//! the same O(1) cross-artifact consistency checks:
//!
//! - [`load_engine`] — maps the file read-only, validates the section
//!   geometry in O(sections), verifies every payload checksum in one
//!   streaming pass, and *borrows* the big arrays straight from the
//!   mapping (no per-element copies). The default for serving.
//! - [`load_engine_fast`] — like [`load_engine`] but skips the payload
//!   checksum pass: O(sections) total, for `RELOAD` of snapshots this
//!   process (or its deploy pipeline) just wrote and checksummed.
//! - [`load_engine_owned`] — deep-copies every array into owned memory and
//!   runs the per-element `validate_deep` invariants. The paranoid path
//!   for artifacts of unknown provenance, and the baseline the zero-copy
//!   loaders are proven bit-identical against.
//!
//! A directory holding the pre-flat per-artifact layout (`graph.pitg` et
//! al.) is reported as [`StoreError::UnsupportedVersion`], not garbage:
//! re-run the offline stage to produce a flat snapshot.

use crate::engine::{PitEngine, SummarizerKind};
use pit_graph::{CsrGraph, NodeId};
use pit_index::{PropIndexConfig, PropagationIndex};
use pit_store::{ByteReader, FlatError, FlatFile, FlatWriter, Pod, Sect};
use pit_walk::{WalkConfig, WalkIndex, WalkIndexParts, WalkPolicy};
use std::fs;
use std::io;
use std::path::Path;

/// File name of the flat snapshot inside an engine directory.
pub const FLAT_FILE: &str = "engine.pitf";

/// Marker artifact of the legacy (pre-flat) per-file layout, used only to
/// tell "old snapshot" apart from "no snapshot" in error reporting.
const LEGACY_GRAPH_FILE: &str = "graph.pitg";

// Section kinds of the engine container. Kind 0 is reserved by the format
// for the header/table region; blobs carry their artifact's own magic-and-
// version framing, arrays are raw little-endian element runs.
/// Engine settings blob (see [`encode_meta`] for the byte layout).
pub const SEC_META: u16 = 1;
/// Graph out-CSR offsets (`u32`, `node_count + 1`).
pub const SEC_GRAPH_OUT_OFFSETS: u16 = 2;
/// Graph out-CSR edge targets (`NodeId`).
pub const SEC_GRAPH_OUT_TARGETS: u16 = 3;
/// Graph out-CSR edge probabilities (`f64`).
pub const SEC_GRAPH_OUT_PROBS: u16 = 4;
/// Graph in-CSR offsets (`u32`, `node_count + 1`).
pub const SEC_GRAPH_IN_OFFSETS: u16 = 5;
/// Graph in-CSR edge sources (`NodeId`).
pub const SEC_GRAPH_IN_SOURCES: u16 = 6;
/// Graph in-CSR edge probabilities (`f64`).
pub const SEC_GRAPH_IN_PROBS: u16 = 7;
/// Walk-index per-walk offsets (`u32`).
pub const SEC_WALK_OFFSETS: u16 = 8;
/// Walk-index concatenated walk nodes (`NodeId`).
pub const SEC_WALK_DATA: u16 = 9;
/// Walk-index first-visit frequency table (`f32`).
pub const SEC_WALK_FREQ: u16 = 10;
/// Walk-index reachability offsets (`u64`).
pub const SEC_WALK_REACH_OFFSETS: u16 = 11;
/// Walk-index reachability node lists (`NodeId`).
pub const SEC_WALK_REACH_DATA: u16 = 12;
/// Propagation-index (Γ) per-node offsets (`u64`).
pub const SEC_PROP_OFFSETS: u16 = 13;
/// Propagation-index entry nodes (`NodeId`).
pub const SEC_PROP_NODES: u16 = 14;
/// Propagation-index entry probabilities (`f64`).
pub const SEC_PROP_PROBS: u16 = 15;
/// Propagation-index marked offsets (`u64`).
pub const SEC_PROP_MARKED_OFFSETS: u16 = 16;
/// Propagation-index marked node lists (`NodeId`).
pub const SEC_PROP_MARKED: u16 = 17;
/// Topic-space blob (`pit_topics::snapshot` framing).
pub const SEC_TOPICS: u16 = 18;
/// Vocabulary blob, present only when the engine retains one.
pub const SEC_VOCAB: u16 = 19;
/// Topic-to-representative index blob (`pit_search_core::snapshot`).
pub const SEC_REPS: u16 = 20;

/// Errors from saving or loading an engine directory.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(io::Error),
    /// A snapshot failed validation; the string names the artifact.
    Corrupt(String),
    /// The directory holds a snapshot format this build does not read
    /// (legacy per-artifact layout, or a newer flat container version).
    /// Re-running the offline stage produces a loadable snapshot.
    UnsupportedVersion(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Corrupt(what) => write!(f, "corrupt store: {what}"),
            StoreError::UnsupportedVersion(what) => write!(f, "unsupported-version: {what}"),
        }
    }
}
impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<FlatError> for StoreError {
    fn from(e: FlatError) -> Self {
        match e {
            FlatError::UnsupportedVersion { found, supported } => StoreError::UnsupportedVersion(
                format!("flat container v{found}, this build reads v{supported}"),
            ),
            FlatError::Io(msg) => StoreError::Io(io::Error::other(msg)),
            other => StoreError::Corrupt(other.to_string()),
        }
    }
}

/// Persist every artifact of `engine` under `dir` (created if absent),
/// crash-atomically: the flat snapshot is staged into a hidden sibling
/// directory and `rename`d into place only once fully written, so a crash
/// mid-save leaves either the previous engine or the new one — never a
/// torn snapshot that a concurrent or later [`load_engine`] could read.
pub fn save_engine(dir: &Path, engine: &PitEngine) -> Result<(), StoreError> {
    save_engine_inner(dir, engine, None)
}

/// Persist a shard slice of an engine: identical to [`save_engine`] plus a
/// `shard.pits` manifest recording the slice's `(index, count)`, written
/// inside the same staged commit so the manifest can never be torn from its
/// artifacts. The directory stays loadable by plain [`load_engine`];
/// [`load_shard_spec`] recovers the manifest.
pub fn save_shard(
    dir: &Path,
    engine: &PitEngine,
    spec: crate::shard::ShardSpec,
) -> Result<(), StoreError> {
    save_engine_inner(dir, engine, Some(spec))
}

fn save_engine_inner(
    dir: &Path,
    engine: &PitEngine,
    shard: Option<crate::shard::ShardSpec>,
) -> Result<(), StoreError> {
    let (parent, name) = split_target(dir)?;
    fs::create_dir_all(&parent)?;
    let staging = parent.join(format!(".{name}.staging.{}", std::process::id()));
    let _ = fs::remove_dir_all(&staging);
    fs::create_dir_all(&staging)?;
    let staged = write_artifacts(&staging, engine)
        .and_then(|()| match shard {
            Some(spec) => {
                fs::write(staging.join(crate::shard::MANIFEST_FILE), spec.encode())?;
                Ok(())
            }
            None => Ok(()),
        })
        .and_then(|()| commit(&staging, dir));
    if staged.is_err() {
        let _ = fs::remove_dir_all(&staging);
    }
    staged
}

/// Read the shard manifest of an engine directory, if it has one. A plain
/// (unsharded) snapshot yields `Ok(None)`.
///
/// # Errors
/// I/O failures other than the manifest being absent, or a
/// [`StoreError::Corrupt`] for a malformed manifest.
pub fn load_shard_spec(dir: &Path) -> Result<Option<crate::shard::ShardSpec>, StoreError> {
    match fs::read(dir.join(crate::shard::MANIFEST_FILE)) {
        Ok(bytes) => Ok(Some(crate::shard::ShardSpec::decode(&bytes)?)),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e.into()),
    }
}

/// Split `dir` into its parent directory and file name, defaulting the
/// parent to `.` for bare relative names.
fn split_target(dir: &Path) -> Result<(std::path::PathBuf, String), StoreError> {
    let name = dir
        .file_name()
        .ok_or_else(|| {
            StoreError::Io(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("engine path {} has no file name", dir.display()),
            ))
        })?
        .to_string_lossy()
        .into_owned();
    let parent = match dir.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    Ok((parent, name))
}

/// Move a fully staged engine directory into place, replacing any previous
/// engine at `dir`. The previous engine is parked next to the target first
/// so a rename failure can roll it back.
fn commit(staging: &Path, dir: &Path) -> Result<(), StoreError> {
    if dir.exists() {
        let (parent, name) = split_target(dir)?;
        let parked = parent.join(format!(".{name}.old.{}", std::process::id()));
        let _ = fs::remove_dir_all(&parked);
        fs::rename(dir, &parked)?;
        if let Err(e) = fs::rename(staging, dir) {
            let _ = fs::rename(&parked, dir); // roll the old engine back
            return Err(e.into());
        }
        let _ = fs::remove_dir_all(&parked);
    } else {
        fs::rename(staging, dir)?;
    }
    Ok(())
}

/// Write the flat snapshot of `engine` into `dir`, which must exist.
fn write_artifacts(dir: &Path, engine: &PitEngine) -> Result<(), StoreError> {
    encode_flat(engine).write_to(&dir.join(FLAT_FILE))?;
    Ok(())
}

/// Lay the engine out as a flat container. Array sections are pushed from
/// the indexes' `raw_parts` views, so this is one sequential encode pass
/// with no intermediate per-artifact buffers.
fn encode_flat(engine: &PitEngine) -> FlatWriter {
    let mut w = FlatWriter::new();
    w.push_blob(SEC_META, &encode_meta(engine));

    let (oo, ot, op, io_, is_, ip) = engine.graph().raw_parts();
    w.push_array(SEC_GRAPH_OUT_OFFSETS, oo);
    w.push_array(SEC_GRAPH_OUT_TARGETS, ot);
    w.push_array(SEC_GRAPH_OUT_PROBS, op);
    w.push_array(SEC_GRAPH_IN_OFFSETS, io_);
    w.push_array(SEC_GRAPH_IN_SOURCES, is_);
    w.push_array(SEC_GRAPH_IN_PROBS, ip);

    let (wo, wd, wf, ro, rd) = engine.walks().raw_parts();
    w.push_array(SEC_WALK_OFFSETS, wo);
    w.push_array(SEC_WALK_DATA, wd);
    w.push_array(SEC_WALK_FREQ, wf);
    w.push_array(SEC_WALK_REACH_OFFSETS, ro);
    w.push_array(SEC_WALK_REACH_DATA, rd);

    let (po, pn, pp, mo, mk) = engine.propagation().raw_parts();
    w.push_array(SEC_PROP_OFFSETS, po);
    w.push_array(SEC_PROP_NODES, pn);
    w.push_array(SEC_PROP_PROBS, pp);
    w.push_array(SEC_PROP_MARKED_OFFSETS, mo);
    w.push_array(SEC_PROP_MARKED, mk);

    w.push_blob(
        SEC_TOPICS,
        pit_topics::snapshot::encode_space(engine.space()).as_ref(),
    );
    if let Some(vocab) = engine.vocab() {
        w.push_blob(
            SEC_VOCAB,
            pit_topics::snapshot::encode_vocab(vocab).as_ref(),
        );
    }
    w.push_blob(
        SEC_REPS,
        pit_search_core::snapshot::encode(engine.reps()).as_ref(),
    );
    w
}

/// Decoded engine settings from the META blob.
struct Meta {
    summarizer: SummarizerKind,
    max_expand_rounds: usize,
    node_count: usize,
    walk_config: WalkConfig,
    walk_parts: WalkIndexParts,
    prop_config: PropIndexConfig,
}

/// Serialize the engine settings the array sections cannot carry:
///
/// ```text
/// summarizer kind      u8   (0 = RCL, 1 = LRW)
/// max_expand_rounds    u32
/// node_count           u64
/// walk L               u32
/// walk R               u32
/// walk policy          u8   (0 = uniform, 1 = transition-weighted)
/// walk seed            u64
/// walk parts flags     u8   (walks | freq << 1 | reach << 2)
/// propagation theta    f64
/// propagation depth    u32
/// ```
fn encode_meta(engine: &PitEngine) -> Vec<u8> {
    let wc = engine.walks().config();
    let parts = engine.walks().parts();
    let pc = engine.propagation().config();
    let mut meta = Vec::with_capacity(48);
    meta.push(match engine.summarizer() {
        SummarizerKind::Rcl(_) => 0u8,
        SummarizerKind::Lrw(_) => 1,
    });
    let rounds = u32::try_from(engine.max_expand_rounds()).unwrap_or(u32::MAX);
    meta.extend_from_slice(&rounds.to_le_bytes());
    meta.extend_from_slice(&(engine.graph().node_count() as u64).to_le_bytes());
    meta.extend_from_slice(&(wc.l.min(u32::MAX as usize) as u32).to_le_bytes());
    meta.extend_from_slice(&(wc.r.min(u32::MAX as usize) as u32).to_le_bytes());
    meta.push(match wc.policy {
        WalkPolicy::UniformNeighbor => 0,
        WalkPolicy::TransitionWeighted => 1,
    });
    meta.extend_from_slice(&wc.seed.to_le_bytes());
    meta.push(u8::from(parts.walks) | u8::from(parts.freq) << 1 | u8::from(parts.reach) << 2);
    meta.extend_from_slice(&pc.theta.to_le_bytes());
    let depth = u32::try_from(pc.max_depth).unwrap_or(u32::MAX);
    meta.extend_from_slice(&depth.to_le_bytes());
    meta
}

/// Parse the META blob through the bounds-checked reader — the one meta
/// parser both the zero-copy and the owned loaders share. Every read is
/// length-checked; trailing bytes are rejected.
fn decode_meta(bytes: &[u8]) -> Result<Meta, StoreError> {
    let corrupt = |what: &str| StoreError::Corrupt(format!("meta: {what}"));
    let mut r = ByteReader::new(bytes, "engine meta");
    let summarizer = match r.read_u8()? {
        0 => SummarizerKind::default_rcl(),
        1 => SummarizerKind::default_lrw(),
        k => return Err(corrupt(&format!("unknown summarizer kind {k}"))),
    };
    let max_expand_rounds = r.read_u32()? as usize;
    let node_count = usize::try_from(r.read_u64()?)
        .map_err(|_| corrupt("node count exceeds the address space"))?;
    let l = r.read_u32()? as usize;
    let walk_r = r.read_u32()? as usize;
    let policy = match r.read_u8()? {
        0 => WalkPolicy::UniformNeighbor,
        1 => WalkPolicy::TransitionWeighted,
        k => return Err(corrupt(&format!("unknown walk policy {k}"))),
    };
    let seed = r.read_u64()?;
    let flags = r.read_u8()?;
    if flags & !0b111 != 0 {
        return Err(corrupt("unknown walk part flags"));
    }
    let theta = r.read_f64()?;
    let max_depth = r.read_u32()? as usize;
    if r.remaining() != 0 {
        return Err(corrupt("trailing bytes"));
    }
    Ok(Meta {
        summarizer,
        max_expand_rounds,
        node_count,
        walk_config: WalkConfig {
            l,
            r: walk_r,
            policy,
            seed,
        },
        walk_parts: WalkIndexParts {
            walks: flags & 0b001 != 0,
            freq: flags & 0b010 != 0,
            reach: flags & 0b100 != 0,
        },
        prop_config: PropIndexConfig { theta, max_depth },
    })
}

/// How much validation and copying a load performs.
#[derive(Clone, Copy, PartialEq, Eq)]
enum LoadMode {
    /// Borrow arrays from the mapping; verify every payload checksum.
    Verified,
    /// Borrow arrays from the mapping; structural validation only.
    Fast,
    /// Deep-copy arrays into owned memory and run per-element invariants.
    Owned,
}

/// Load an engine previously written by [`save_engine`], serving the big
/// index arrays zero-copy from a read-only mapping of the flat snapshot.
/// Section geometry is validated in O(sections) and every payload checksum
/// is verified in one streaming pass; no per-element copies are made of
/// the CSR, walk, or Γ sections.
///
/// The summarizer configuration itself is not persisted (the representative
/// sets already embody it); the loaded engine reports the summarizer *kind*
/// with default parameters.
pub fn load_engine(dir: &Path) -> Result<PitEngine, StoreError> {
    load_flat(dir, LoadMode::Verified)
}

/// [`load_engine`] without the payload-checksum pass: O(sections) total,
/// for `RELOAD` of a snapshot this process (or its deploy pipeline) just
/// wrote and verified. Structural validation — magic, version, table
/// geometry, alignment, array shapes — still runs in full.
pub fn load_engine_fast(dir: &Path) -> Result<PitEngine, StoreError> {
    load_flat(dir, LoadMode::Fast)
}

/// [`load_engine`] with every array deep-copied into owned memory and the
/// per-element `validate_deep` invariants checked (monotonic offsets,
/// in-range ids, finite probabilities). The paranoid loader for snapshots
/// of unknown provenance — and the baseline the zero-copy loaders are
/// proven bit-identical against in the test battery.
pub fn load_engine_owned(dir: &Path) -> Result<PitEngine, StoreError> {
    load_flat(dir, LoadMode::Owned)
}

/// Fetch section `kind` as a typed array: a borrowed window of the mapping
/// for the zero-copy modes, a deep copy for [`LoadMode::Owned`].
fn section<T: Pod>(flat: &FlatFile, kind: u16, mode: LoadMode) -> Result<Sect<T>, StoreError> {
    if mode == LoadMode::Owned {
        Ok(Sect::from(flat.array_owned::<T>(kind)?))
    } else {
        Ok(flat.array::<T>(kind)?)
    }
}

fn load_flat(dir: &Path, mode: LoadMode) -> Result<PitEngine, StoreError> {
    let path = dir.join(FLAT_FILE);
    if !path.exists() {
        if dir.join(LEGACY_GRAPH_FILE).exists() {
            return Err(StoreError::UnsupportedVersion(format!(
                "{} holds a legacy per-artifact snapshot; re-run the offline \
                 build to produce a flat {FLAT_FILE}",
                dir.display()
            )));
        }
        return Err(StoreError::Io(io::Error::new(
            io::ErrorKind::NotFound,
            format!("no {FLAT_FILE} in {}", dir.display()),
        )));
    }
    let flat = FlatFile::open(&path)?;
    if mode != LoadMode::Fast {
        flat.verify_checksums()?;
    }

    let meta = decode_meta(flat.bytes_of(SEC_META)?)?;

    let graph = CsrGraph::from_raw_parts(
        section::<u32>(&flat, SEC_GRAPH_OUT_OFFSETS, mode)?,
        section::<NodeId>(&flat, SEC_GRAPH_OUT_TARGETS, mode)?,
        section::<f64>(&flat, SEC_GRAPH_OUT_PROBS, mode)?,
        section::<u32>(&flat, SEC_GRAPH_IN_OFFSETS, mode)?,
        section::<NodeId>(&flat, SEC_GRAPH_IN_SOURCES, mode)?,
        section::<f64>(&flat, SEC_GRAPH_IN_PROBS, mode)?,
    )
    .map_err(|e| StoreError::Corrupt(format!("graph: {e}")))?;

    let walks = WalkIndex::from_raw_parts(
        meta.walk_config,
        meta.node_count,
        meta.walk_parts,
        section::<u32>(&flat, SEC_WALK_OFFSETS, mode)?,
        section::<NodeId>(&flat, SEC_WALK_DATA, mode)?,
        section::<f32>(&flat, SEC_WALK_FREQ, mode)?,
        section::<u64>(&flat, SEC_WALK_REACH_OFFSETS, mode)?,
        section::<NodeId>(&flat, SEC_WALK_REACH_DATA, mode)?,
    )
    .map_err(|e| StoreError::Corrupt(format!("walks: {e}")))?;

    let prop = PropagationIndex::from_raw_parts(
        meta.prop_config,
        section::<u64>(&flat, SEC_PROP_OFFSETS, mode)?,
        section::<NodeId>(&flat, SEC_PROP_NODES, mode)?,
        section::<f64>(&flat, SEC_PROP_PROBS, mode)?,
        section::<u64>(&flat, SEC_PROP_MARKED_OFFSETS, mode)?,
        section::<NodeId>(&flat, SEC_PROP_MARKED, mode)?,
    )
    .map_err(|e| StoreError::Corrupt(format!("propagation: {e}")))?;

    let space = pit_topics::snapshot::decode_space(flat.bytes_of(SEC_TOPICS)?)
        .map_err(|e| StoreError::Corrupt(format!("topics: {e}")))?;
    let vocab = if flat.has(SEC_VOCAB) {
        Some(
            pit_topics::snapshot::decode_vocab(flat.bytes_of(SEC_VOCAB)?)
                .map_err(|e| StoreError::Corrupt(format!("vocab: {e}")))?,
        )
    } else {
        None
    };
    let reps = pit_search_core::snapshot::decode(flat.bytes_of(SEC_REPS)?)
        .map_err(|e| StoreError::Corrupt(format!("representatives: {e}")))?;

    if mode == LoadMode::Owned {
        graph
            .validate_deep()
            .map_err(|e| StoreError::Corrupt(format!("graph: {e}")))?;
        walks
            .validate_deep()
            .map_err(|e| StoreError::Corrupt(format!("walks: {e}")))?;
        prop.validate_deep()
            .map_err(|e| StoreError::Corrupt(format!("propagation: {e}")))?;
    }

    // Cross-artifact consistency: O(1) against the META node count.
    let corrupt = |what: &str| StoreError::Corrupt(what.to_string());
    if graph.node_count() != meta.node_count {
        return Err(corrupt("graph node count disagrees with meta"));
    }
    if space.node_count() != graph.node_count()
        || walks.node_count() != graph.node_count()
        || prop.len() != graph.node_count()
    {
        return Err(corrupt("artifact node counts disagree"));
    }
    if reps.len() != space.topic_count() {
        return Err(corrupt("representative index topic count disagrees"));
    }

    Ok(PitEngine::from_parts(
        graph,
        space,
        vocab,
        walks,
        prop,
        reps,
        meta.summarizer,
        meta.max_expand_rounds,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pit_graph::fixtures::{figure1_graph, figure1_topics, user};
    use pit_graph::TermId;
    use pit_topics::TopicSpaceBuilder;
    use pit_walk::WalkConfig;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("pit-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn build_engine() -> PitEngine {
        let graph = figure1_graph();
        let mut vocab = pit_topics::Vocabulary::new();
        let phone = vocab.intern("phone");
        let mut b = TopicSpaceBuilder::new(graph.node_count(), 1);
        for members in &figure1_topics() {
            let t = b.add_topic(vec![phone]);
            for &m in members {
                b.assign(m, t);
            }
        }
        PitEngine::builder()
            .walk(WalkConfig::new(4, 16).with_seed(3))
            .build_with_vocab(graph, b.build(), Some(vocab))
    }

    #[test]
    fn save_load_roundtrip_preserves_results() {
        let dir = temp_dir("roundtrip");
        let engine = build_engine();
        save_engine(&dir, &engine).unwrap();
        let loaded = load_engine(&dir).unwrap();

        // The default loader serves the index arrays from the mapping.
        assert_eq!(loaded.snapshot_format(), "flat-mapped");
        assert!(loaded.mapped_bytes() > 0, "no sections were mapped");
        assert_eq!(engine.snapshot_format(), "owned");

        for u in [3u32, 7, 14] {
            let a = engine.search_user_term(user(u), TermId(0), 3);
            let b = loaded.search_user_term(user(u), TermId(0), 3);
            assert_eq!(a.top_k, b.top_k, "user {u} diverged after reload");
        }
        // Keyword search works through the reloaded vocabulary.
        assert!(loaded.search_keywords(user(3), &["phone"], 1).is_ok());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn all_three_loaders_agree_bit_for_bit() {
        let dir = temp_dir("tiers");
        let engine = build_engine();
        save_engine(&dir, &engine).unwrap();
        let mapped = load_engine(&dir).unwrap();
        let fast = load_engine_fast(&dir).unwrap();
        let owned = load_engine_owned(&dir).unwrap();
        assert_eq!(owned.snapshot_format(), "owned");
        assert_eq!(owned.mapped_bytes(), 0);
        assert_eq!(fast.snapshot_format(), "flat-mapped");
        for u in 1..=engine.graph().node_count() as u32 {
            let a = mapped.search_user_term(user(u), TermId(0), 3);
            let b = owned.search_user_term(user(u), TermId(0), 3);
            let c = fast.search_user_term(user(u), TermId(0), 3);
            assert_eq!(a.top_k, b.top_k, "mapped vs owned diverged at user {u}");
            assert_eq!(a.top_k, c.top_k, "mapped vs fast diverged at user {u}");
            for (x, y) in a.top_k.iter().zip(&b.top_k) {
                assert_eq!(
                    x.score.to_bits(),
                    y.score.to_bits(),
                    "score bits diverged at user {u}"
                );
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interrupted_save_never_clobbers_the_previous_engine() {
        let dir = temp_dir("atomic");
        let engine = build_engine();
        save_engine(&dir, &engine).unwrap();

        // Simulate a crash mid-save: the staging directory save_engine uses
        // exists with only a prefix of the flat snapshot written.
        let staging = dir.parent().unwrap().join(format!(
            ".{}.staging.{}",
            dir.file_name().unwrap().to_string_lossy(),
            std::process::id()
        ));
        fs::create_dir_all(&staging).unwrap();
        let full = fs::read(dir.join(FLAT_FILE)).unwrap();
        fs::write(staging.join(FLAT_FILE), &full[..full.len() / 2]).unwrap();

        // The torn staging dir is not loadable, and the target still is.
        assert!(
            load_engine(&staging).is_err(),
            "partial write must not load"
        );
        let loaded = load_engine(&dir).expect("target engine survived the crash");
        assert_eq!(
            engine.search_user_term(user(3), TermId(0), 3).top_k,
            loaded.search_user_term(user(3), TermId(0), 3).top_k
        );
        drop(loaded);

        // A later save sweeps the leftover staging dir and replaces the
        // engine wholesale, leaving no hidden siblings behind.
        save_engine(&dir, &engine).unwrap();
        assert!(load_engine(&dir).is_ok());
        let hidden: Vec<_> = fs::read_dir(dir.parent().unwrap())
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with(&format!(".{}.", dir.file_name().unwrap().to_string_lossy())))
            .collect();
        assert!(
            hidden.is_empty(),
            "stray staging dirs left behind: {hidden:?}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_replaces_an_existing_engine_wholesale() {
        let dir = temp_dir("replace");
        let engine = build_engine();
        save_engine(&dir, &engine).unwrap();
        // Drop a stray file into the live dir; a re-save must not keep it
        // (the directory is replaced, not patched file-by-file).
        fs::write(dir.join("stray.bin"), b"junk").unwrap();
        save_engine(&dir, &engine).unwrap();
        assert!(!dir.join("stray.bin").exists(), "stale artifact survived");
        assert!(load_engine(&dir).is_ok());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_rejects_missing_artifacts() {
        let dir = temp_dir("missing");
        fs::create_dir_all(&dir).unwrap();
        assert!(matches!(load_engine(&dir), Err(StoreError::Io(_))));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_reports_legacy_layout_as_version_skew() {
        let dir = temp_dir("legacy");
        fs::create_dir_all(&dir).unwrap();
        // A directory with the old per-artifact layout must be reported as
        // a version problem, not decoded into garbage or a plain I/O error.
        fs::write(dir.join(LEGACY_GRAPH_FILE), b"PITGxxxx").unwrap();
        assert!(matches!(
            load_engine(&dir),
            Err(StoreError::UnsupportedVersion(_))
        ));
        let msg = match load_engine(&dir) {
            Err(e) => e.to_string(),
            Ok(_) => panic!("legacy layout loaded"),
        };
        assert!(msg.starts_with("unsupported-version:"), "got: {msg}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_rejects_corrupt_artifact() {
        let dir = temp_dir("corrupt");
        let engine = build_engine();
        save_engine(&dir, &engine).unwrap();
        // Truncate the flat snapshot.
        let path = dir.join(FLAT_FILE);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(load_engine(&dir), Err(StoreError::Corrupt(_))));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verified_load_catches_payload_bit_flip_that_fast_load_skips() {
        let dir = temp_dir("bitflip");
        let engine = build_engine();
        save_engine(&dir, &engine).unwrap();
        let path = dir.join(FLAT_FILE);

        // Flip one byte inside the out-probs payload: structurally valid,
        // checksum-invalid.
        let info = *FlatFile::open(&path)
            .unwrap()
            .section(SEC_GRAPH_OUT_PROBS)
            .unwrap();
        let mut bytes = fs::read(&path).unwrap();
        bytes[info.offset] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();

        // The default loader pays the checksum pass and rejects the flip;
        // the fast loader (structural only, for trusted staging) does not.
        assert!(matches!(load_engine(&dir), Err(StoreError::Corrupt(_))));
        assert!(load_engine_fast(&dir).is_ok());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_rejects_mismatched_artifacts() {
        // Topic space over a different node count than the graph.
        let dir = temp_dir("mismatch");
        let engine = build_engine();
        let mut b = TopicSpaceBuilder::new(3, 1);
        let t = b.add_topic(vec![TermId(0)]);
        b.assign(pit_graph::NodeId(0), t);
        let mismatched = PitEngine::from_parts(
            engine.graph().clone(),
            b.build(),
            None,
            engine.walks().clone(),
            engine.propagation().clone(),
            engine.reps().clone(),
            SummarizerKind::default_rcl(),
            engine.max_expand_rounds(),
        );
        save_engine(&dir, &mismatched).unwrap();
        assert!(matches!(load_engine(&dir), Err(StoreError::Corrupt(_))));
        fs::remove_dir_all(&dir).unwrap();
    }
}
