//! On-disk persistence of a fully built engine.
//!
//! The paper's offline stage (walk sampling, per-topic summarization,
//! propagation-index materialization) is re-run only "after a period of time
//! when the social network and topics have changed" (Section 4.4); between
//! refreshes, a deployment serves queries from the materialized artifacts.
//! [`save_engine`] writes each artifact as its own validated binary
//! snapshot, staging the whole directory and `rename`-ing it into place so
//! a crash mid-save can never leave a torn, half-written engine where a
//! live `RELOAD` (or later [`load_engine`]) would find it:
//!
//! ```text
//! <dir>/graph.pitg      social graph (pit-graph snapshot)
//! <dir>/topics.pitt     topic space
//! <dir>/vocab.pitv      vocabulary (optional)
//! <dir>/walks.pitw      sampled-walk index
//! <dir>/prop.pitp       personalized propagation index
//! <dir>/reps.pitr       topic-to-representative index
//! <dir>/meta.pitm       engine settings
//! ```

use crate::engine::{PitEngine, SummarizerKind};
use std::fs;
use std::io;
use std::path::Path;

/// Errors from saving or loading an engine directory.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(io::Error),
    /// A snapshot failed validation; the string names the artifact.
    Corrupt(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Corrupt(what) => write!(f, "corrupt store: {what}"),
        }
    }
}
impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

const META_MAGIC: &[u8; 4] = b"PITM";
const META_VERSION: u8 = 1;

/// Persist every artifact of `engine` under `dir` (created if absent),
/// crash-atomically: artifacts are staged into a hidden sibling directory
/// and `rename`d into place only once every file is fully written, so a
/// crash mid-save leaves either the previous engine or the new one — never
/// a torn snapshot that a concurrent or later [`load_engine`] could read.
pub fn save_engine(dir: &Path, engine: &PitEngine) -> Result<(), StoreError> {
    save_engine_inner(dir, engine, None)
}

/// Persist a shard slice of an engine: identical to [`save_engine`] plus a
/// `shard.pits` manifest recording the slice's `(index, count)`, written
/// inside the same staged commit so the manifest can never be torn from its
/// artifacts. The directory stays loadable by plain [`load_engine`];
/// [`load_shard_spec`] recovers the manifest.
pub fn save_shard(
    dir: &Path,
    engine: &PitEngine,
    spec: crate::shard::ShardSpec,
) -> Result<(), StoreError> {
    save_engine_inner(dir, engine, Some(spec))
}

fn save_engine_inner(
    dir: &Path,
    engine: &PitEngine,
    shard: Option<crate::shard::ShardSpec>,
) -> Result<(), StoreError> {
    let (parent, name) = split_target(dir)?;
    fs::create_dir_all(&parent)?;
    let staging = parent.join(format!(".{name}.staging.{}", std::process::id()));
    let _ = fs::remove_dir_all(&staging);
    fs::create_dir_all(&staging)?;
    let staged = write_artifacts(&staging, engine)
        .and_then(|()| match shard {
            Some(spec) => {
                fs::write(staging.join(crate::shard::MANIFEST_FILE), spec.encode())?;
                Ok(())
            }
            None => Ok(()),
        })
        .and_then(|()| commit(&staging, dir));
    if staged.is_err() {
        let _ = fs::remove_dir_all(&staging);
    }
    staged
}

/// Read the shard manifest of an engine directory, if it has one. A plain
/// (unsharded) snapshot yields `Ok(None)`.
///
/// # Errors
/// I/O failures other than the manifest being absent, or a
/// [`StoreError::Corrupt`] for a malformed manifest.
pub fn load_shard_spec(dir: &Path) -> Result<Option<crate::shard::ShardSpec>, StoreError> {
    match fs::read(dir.join(crate::shard::MANIFEST_FILE)) {
        Ok(bytes) => Ok(Some(crate::shard::ShardSpec::decode(&bytes)?)),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e.into()),
    }
}

/// Split `dir` into its parent directory and file name, defaulting the
/// parent to `.` for bare relative names.
fn split_target(dir: &Path) -> Result<(std::path::PathBuf, String), StoreError> {
    let name = dir
        .file_name()
        .ok_or_else(|| {
            StoreError::Io(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("engine path {} has no file name", dir.display()),
            ))
        })?
        .to_string_lossy()
        .into_owned();
    let parent = match dir.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    Ok((parent, name))
}

/// Move a fully staged engine directory into place, replacing any previous
/// engine at `dir`. The previous engine is parked next to the target first
/// so a rename failure can roll it back.
fn commit(staging: &Path, dir: &Path) -> Result<(), StoreError> {
    if dir.exists() {
        let (parent, name) = split_target(dir)?;
        let parked = parent.join(format!(".{name}.old.{}", std::process::id()));
        let _ = fs::remove_dir_all(&parked);
        fs::rename(dir, &parked)?;
        if let Err(e) = fs::rename(staging, dir) {
            let _ = fs::rename(&parked, dir); // roll the old engine back
            return Err(e.into());
        }
        let _ = fs::remove_dir_all(&parked);
    } else {
        fs::rename(staging, dir)?;
    }
    Ok(())
}

/// Write every artifact of `engine` into `dir`, which must exist.
fn write_artifacts(dir: &Path, engine: &PitEngine) -> Result<(), StoreError> {
    fs::write(
        dir.join("graph.pitg"),
        pit_graph::snapshot::encode(engine.graph()),
    )?;
    fs::write(
        dir.join("topics.pitt"),
        pit_topics::snapshot::encode_space(engine.space()),
    )?;
    if let Some(vocab) = engine.vocab() {
        fs::write(
            dir.join("vocab.pitv"),
            pit_topics::snapshot::encode_vocab(vocab),
        )?;
    }
    fs::write(
        dir.join("walks.pitw"),
        pit_walk::snapshot::encode(engine.walks()),
    )?;
    fs::write(
        dir.join("prop.pitp"),
        pit_index::snapshot::encode(engine.propagation()),
    )?;
    fs::write(
        dir.join("reps.pitr"),
        pit_search_core::snapshot::encode(engine.reps()),
    )?;

    let mut meta = Vec::new();
    meta.extend_from_slice(META_MAGIC);
    meta.push(META_VERSION);
    meta.push(match engine.summarizer() {
        SummarizerKind::Rcl(_) => 0,
        SummarizerKind::Lrw(_) => 1,
    });
    meta.extend_from_slice(&(engine.max_expand_rounds() as u32).to_le_bytes());
    fs::write(dir.join("meta.pitm"), meta)?;
    Ok(())
}

/// Load an engine previously written by [`save_engine`].
///
/// The summarizer configuration itself is not persisted (the representative
/// sets already embody it); the loaded engine reports the summarizer *kind*
/// with default parameters.
pub fn load_engine(dir: &Path) -> Result<PitEngine, StoreError> {
    let corrupt = |what: &str| StoreError::Corrupt(what.to_string());

    let graph = pit_graph::snapshot::decode(&fs::read(dir.join("graph.pitg"))?)
        .map_err(|e| StoreError::Corrupt(format!("graph: {e}")))?;
    let space = pit_topics::snapshot::decode_space(&fs::read(dir.join("topics.pitt"))?)
        .map_err(|e| StoreError::Corrupt(format!("topics: {e}")))?;
    let vocab_path = dir.join("vocab.pitv");
    let vocab = if vocab_path.exists() {
        Some(
            pit_topics::snapshot::decode_vocab(&fs::read(vocab_path)?)
                .map_err(|e| StoreError::Corrupt(format!("vocab: {e}")))?,
        )
    } else {
        None
    };
    let walks = pit_walk::snapshot::decode(&fs::read(dir.join("walks.pitw"))?)
        .map_err(|e| StoreError::Corrupt(format!("walks: {e}")))?;
    let prop = pit_index::snapshot::decode(&fs::read(dir.join("prop.pitp"))?)
        .map_err(|e| StoreError::Corrupt(format!("propagation: {e}")))?;
    let reps = pit_search_core::snapshot::decode(&fs::read(dir.join("reps.pitr"))?)
        .map_err(|e| StoreError::Corrupt(format!("representatives: {e}")))?;

    let meta = fs::read(dir.join("meta.pitm"))?;
    if meta.len() != 4 + 1 + 1 + 4 || &meta[..4] != META_MAGIC {
        return Err(corrupt("meta file malformed"));
    }
    if meta[4] != META_VERSION {
        return Err(corrupt("meta version unsupported"));
    }
    let summarizer = match meta[5] {
        0 => SummarizerKind::default_rcl(),
        1 => SummarizerKind::default_lrw(),
        _ => return Err(corrupt("unknown summarizer kind")),
    };
    let max_expand_rounds = u32::from_le_bytes([meta[6], meta[7], meta[8], meta[9]]) as usize;

    // Cross-artifact consistency.
    if space.node_count() != graph.node_count()
        || walks.node_count() != graph.node_count()
        || prop.len() != graph.node_count()
    {
        return Err(corrupt("artifact node counts disagree"));
    }
    if reps.len() != space.topic_count() {
        return Err(corrupt("representative index topic count disagrees"));
    }

    Ok(PitEngine::from_parts(
        graph,
        space,
        vocab,
        walks,
        prop,
        reps,
        summarizer,
        max_expand_rounds,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pit_graph::fixtures::{figure1_graph, figure1_topics, user};
    use pit_graph::TermId;
    use pit_topics::TopicSpaceBuilder;
    use pit_walk::WalkConfig;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("pit-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn build_engine() -> PitEngine {
        let graph = figure1_graph();
        let mut vocab = pit_topics::Vocabulary::new();
        let phone = vocab.intern("phone");
        let mut b = TopicSpaceBuilder::new(graph.node_count(), 1);
        for members in &figure1_topics() {
            let t = b.add_topic(vec![phone]);
            for &m in members {
                b.assign(m, t);
            }
        }
        PitEngine::builder()
            .walk(WalkConfig::new(4, 16).with_seed(3))
            .build_with_vocab(graph, b.build(), Some(vocab))
    }

    #[test]
    fn save_load_roundtrip_preserves_results() {
        let dir = temp_dir("roundtrip");
        let engine = build_engine();
        save_engine(&dir, &engine).unwrap();
        let loaded = load_engine(&dir).unwrap();

        for u in [3u32, 7, 14] {
            let a = engine.search_user_term(user(u), TermId(0), 3);
            let b = loaded.search_user_term(user(u), TermId(0), 3);
            assert_eq!(a.top_k, b.top_k, "user {u} diverged after reload");
        }
        // Keyword search works through the reloaded vocabulary.
        assert!(loaded.search_keywords(user(3), &["phone"], 1).is_ok());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interrupted_save_never_clobbers_the_previous_engine() {
        let dir = temp_dir("atomic");
        let engine = build_engine();
        save_engine(&dir, &engine).unwrap();

        // Simulate a crash mid-save: the staging directory save_engine uses
        // exists with only a prefix of the artifacts written.
        let staging = dir.parent().unwrap().join(format!(
            ".{}.staging.{}",
            dir.file_name().unwrap().to_string_lossy(),
            std::process::id()
        ));
        fs::create_dir_all(&staging).unwrap();
        fs::write(
            staging.join("graph.pitg"),
            pit_graph::snapshot::encode(engine.graph()),
        )
        .unwrap();
        fs::write(
            staging.join("topics.pitt"),
            pit_topics::snapshot::encode_space(engine.space()),
        )
        .unwrap();

        // The torn staging dir is not loadable, and the target still is.
        assert!(
            load_engine(&staging).is_err(),
            "partial write must not load"
        );
        let loaded = load_engine(&dir).expect("target engine survived the crash");
        assert_eq!(
            engine.search_user_term(user(3), TermId(0), 3).top_k,
            loaded.search_user_term(user(3), TermId(0), 3).top_k
        );

        // A later save sweeps the leftover staging dir and replaces the
        // engine wholesale, leaving no hidden siblings behind.
        save_engine(&dir, &engine).unwrap();
        assert!(load_engine(&dir).is_ok());
        let hidden: Vec<_> = fs::read_dir(dir.parent().unwrap())
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with(&format!(".{}.", dir.file_name().unwrap().to_string_lossy())))
            .collect();
        assert!(
            hidden.is_empty(),
            "stray staging dirs left behind: {hidden:?}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_replaces_an_existing_engine_wholesale() {
        let dir = temp_dir("replace");
        let engine = build_engine();
        save_engine(&dir, &engine).unwrap();
        // Drop a stray file into the live dir; a re-save must not keep it
        // (the directory is replaced, not patched file-by-file).
        fs::write(dir.join("stray.bin"), b"junk").unwrap();
        save_engine(&dir, &engine).unwrap();
        assert!(!dir.join("stray.bin").exists(), "stale artifact survived");
        assert!(load_engine(&dir).is_ok());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_rejects_missing_artifacts() {
        let dir = temp_dir("missing");
        fs::create_dir_all(&dir).unwrap();
        assert!(matches!(load_engine(&dir), Err(StoreError::Io(_))));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_rejects_corrupt_artifact() {
        let dir = temp_dir("corrupt");
        let engine = build_engine();
        save_engine(&dir, &engine).unwrap();
        // Truncate the propagation index file.
        let path = dir.join("prop.pitp");
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(load_engine(&dir), Err(StoreError::Corrupt(_))));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_rejects_mismatched_artifacts() {
        // Graph from one corpus, topics from another node count.
        let dir = temp_dir("mismatch");
        let engine = build_engine();
        save_engine(&dir, &engine).unwrap();
        // Overwrite topics with a space over a different node count.
        let mut b = TopicSpaceBuilder::new(3, 1);
        let t = b.add_topic(vec![TermId(0)]);
        b.assign(pit_graph::NodeId(0), t);
        fs::write(
            dir.join("topics.pitt"),
            pit_topics::snapshot::encode_space(&b.build()),
        )
        .unwrap();
        assert!(matches!(load_engine(&dir), Err(StoreError::Corrupt(_))));
        fs::remove_dir_all(&dir).unwrap();
    }
}
