//! Incremental maintenance of a built engine.
//!
//! Section 4.4: "the offline pre-processing is updated after a period of
//! time when the social network and topics have changed." A full rebuild is
//! always correct, but most of its cost is the per-node propagation tables;
//! [`PitEngine::apply_delta`] refreshes only what a delta can actually
//! affect:
//!
//! * **graph** — rebuilt from the edge delta (CSR is immutable; `O(|V|+|E|)`);
//! * **propagation index** — only the tables of nodes *downstream* of a new
//!   edge's head (within the enumeration depth) can change; they are
//!   recomputed exactly, the rest are provably untouched;
//! * **walk index** — rebuilt in full: it is seed-deterministic and its
//!   construction is the cheap offline stage, while any walk visiting an
//!   endpoint of a changed edge may resample;
//! * **representative sets** — topics are re-summarized when the delta can
//!   move their summary: a topic gained members, or any of its topic nodes
//!   or current representatives sits in the walk-affected region (within
//!   `L` hops of a changed edge, in either direction).
//!
//! The refresh is *localized*, not byte-identical to a from-scratch build:
//! topics far from every change keep their existing summaries even though a
//! from-scratch build would resample their walks identically anyway. The
//! tests pin down the exact guarantees.

use crate::engine::{PitEngine, SummarizerKind};
use pit_graph::{GraphError, NodeId, TermId, TopicId};
use pit_index::PropagationIndex;
use pit_search_core::TopicRepIndex;
use pit_summarize::{LrwSummarizer, RclSummarizer, SummarizeContext, Summarizer};
use pit_walk::{WalkIndex, WalkIndexParts};
use rustc_hash::FxHashSet;

/// A batch of changes to apply to a built engine.
#[derive(Clone, Debug, Default)]
pub struct Delta {
    /// New influence edges `(from, to, transition probability)`.
    pub new_edges: Vec<(NodeId, NodeId, f64)>,
    /// New topic mentions `(user, topic)`. Topics must already exist.
    pub new_assignments: Vec<(NodeId, TopicId)>,
}

impl Delta {
    /// Whether the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.new_edges.is_empty() && self.new_assignments.is_empty()
    }
}

/// What an [`PitEngine::apply_delta`] call actually did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UpdateReport {
    /// Γ tables recomputed (nodes downstream of new edges).
    pub refreshed_gamma_tables: usize,
    /// Topics whose representative sets were rebuilt.
    pub resummarized_topics: usize,
    /// Whether the walk index was rebuilt (false only for empty deltas).
    pub walk_index_rebuilt: bool,
    /// The query-visible blast radius of the delta (see [`DeltaScope`]).
    pub scope: DeltaScope,
}

/// The query-visible blast radius of a delta: which `(user, terms)` queries
/// can observe a different answer on the successor engine. A query reads
/// exactly three kinds of offline data — the Γ tables of the query user and
/// its upstream expansion candidates, the representative sets of its related
/// topics, and the term → topic postings (fixed at topic creation) — so a
/// query is unaffected when none of its probed tables were refreshed *and*
/// none of its related topics were re-summarized:
///
/// * Γ side: refreshed tables are downstream of a new edge's head, and a
///   query only probes tables of nodes that can reach the query user, so
///   every Γ-affected user sits in the downstream closure of the heads
///   ([`DeltaScope::edge_users`], computed on the post-delta graph).
/// * Rep side: a related topic is a topic sharing a term with the query, so
///   a re-summarized topic touches a query iff their term bags intersect
///   ([`DeltaScope::assignment_terms`] / [`DeltaScope::edge_terms`], split
///   by what caused the re-summarization).
///
/// Scope is always computed against the *full* engine (before any shard
/// slicing) so a serving tier can compare cached query keys against it
/// regardless of which shard answered them.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DeltaScope {
    /// Every node reachable from a new edge's head on the post-delta graph
    /// (heads included), sorted ascending: the users whose probed Γ tables
    /// may differ.
    pub edge_users: Vec<NodeId>,
    /// Terms of topics re-summarized because they gained a member, sorted
    /// and deduplicated.
    pub assignment_terms: Vec<TermId>,
    /// Terms of topics re-summarized because their walk region touches a
    /// new edge, sorted and deduplicated.
    pub edge_terms: Vec<TermId>,
}

impl DeltaScope {
    /// Whether the delta can change no query at all.
    pub fn is_empty(&self) -> bool {
        self.edge_users.is_empty() && self.assignment_terms.is_empty() && self.edge_terms.is_empty()
    }

    /// Whether `user`'s probed Γ region intersects the refreshed tables.
    pub fn touches_user(&self, user: NodeId) -> bool {
        self.edge_users.binary_search(&user).is_ok()
    }

    /// Whether any of `terms` belongs to an assignment-re-summarized topic.
    pub fn touches_assignment_terms(&self, terms: &[TermId]) -> bool {
        terms
            .iter()
            .any(|t| self.assignment_terms.binary_search(t).is_ok())
    }

    /// Whether any of `terms` belongs to an edge-re-summarized topic.
    pub fn touches_edge_terms(&self, terms: &[TermId]) -> bool {
        terms
            .iter()
            .any(|t| self.edge_terms.binary_search(t).is_ok())
    }
}

impl PitEngine {
    /// Apply a [`Delta`] in place, refreshing only the affected offline
    /// artifacts. See the module docs for the exact guarantees.
    ///
    /// # Errors
    /// Returns a [`GraphError`] when the delta contains an invalid edge
    /// (out-of-range endpoint, self-loop, bad probability, or a conflicting
    /// duplicate of an existing edge).
    pub fn apply_delta(&mut self, delta: &Delta) -> Result<UpdateReport, GraphError> {
        if delta.is_empty() {
            return Ok(UpdateReport::default());
        }
        let (next, report) = self.with_delta(delta)?;
        *self = next;
        Ok(report)
    }

    /// Build the engine that [`PitEngine::apply_delta`] would leave behind,
    /// without touching `self`. This is the serving-side refresh primitive:
    /// a live daemon keeps answering queries from the current engine while
    /// the successor is constructed, then swaps atomically.
    ///
    /// An empty delta yields a clone of the current engine (all artifacts
    /// are shared-nothing copies) with a default report.
    ///
    /// # Errors
    /// As [`PitEngine::apply_delta`].
    pub fn with_delta(&self, delta: &Delta) -> Result<(PitEngine, UpdateReport), GraphError> {
        self.with_delta_scoped(delta, None)
    }

    /// Shard-aware [`PitEngine::with_delta`]: apply `delta` to a shard slice
    /// without resurrecting the artifacts the slice does not own. Γ tables
    /// are refreshed only for *owned* affected nodes (unowned tables stay
    /// empty), and the rebuilt walk index is re-sliced to the shard's users.
    /// Re-summarization runs against the *full* rebuilt walk index — walks
    /// are seed-deterministic over the replicated graph, so every shard
    /// derives bit-identical representative sets without coordination, and
    /// the shard invariant `slice(full.with_delta(d)) ==
    /// slice(full).with_delta_scoped(d, spec)` holds exactly.
    ///
    /// With `shard == None` this is exactly [`PitEngine::with_delta`].
    ///
    /// # Errors
    /// As [`PitEngine::apply_delta`].
    pub fn with_delta_scoped(
        &self,
        delta: &Delta,
        shard: Option<&crate::shard::ShardSpec>,
    ) -> Result<(PitEngine, UpdateReport), GraphError> {
        if delta.is_empty() {
            let clone = PitEngine::from_parts(
                self.graph().clone(),
                self.space().clone(),
                self.vocab().cloned(),
                self.walks().clone(),
                self.propagation().clone(),
                self.reps().clone(),
                self.summarizer().clone(),
                self.max_expand_rounds(),
            );
            return Ok((clone, UpdateReport::default()));
        }
        for &(v, t) in &delta.new_assignments {
            self.graph().check_node(v)?;
            assert!(
                t.index() < self.space().topic_count(),
                "assignment references unknown topic {t}"
            );
        }

        // 1. Rebuild the graph with the new edges.
        let mut builder = self.graph().to_builder();
        for &(u, v, p) in &delta.new_edges {
            builder.add_edge(u, v, p)?;
        }
        let new_graph = builder.build()?;

        // 2. Rebuild the topic space with the new assignments.
        let new_space = if delta.new_assignments.is_empty() {
            self.space().clone()
        } else {
            let mut b = self.space().to_builder();
            for &(v, t) in &delta.new_assignments {
                b.assign(v, t);
            }
            b.build()
        };

        // 3. Localized propagation-index refresh: only nodes downstream of a
        //    new edge's head can gain or lose θ-surviving in-paths.
        let heads: Vec<NodeId> = delta.new_edges.iter().map(|&(_, v, _)| v).collect();
        // Cache-invalidation scope, always on the *full* post-delta graph
        // (before the shard retain below): a query probes the Γ tables of
        // nodes that can reach it, so every query whose probe region meets a
        // refreshed table sits in the unbounded downstream closure of the
        // heads. `downstream_within` returns its frontier sorted.
        let scope_users = if heads.is_empty() {
            Vec::new()
        } else {
            new_graph.downstream_within(&heads, usize::MAX)
        };
        let mut prop: PropagationIndex = self.propagation().clone();
        let mut affected_gamma = if heads.is_empty() {
            Vec::new()
        } else {
            new_graph.downstream_within(&heads, prop.config().max_depth)
        };
        if let Some(spec) = shard {
            // Unowned tables are empty by the shard invariant and must stay
            // so; recomputing them here would silently un-slice the engine.
            affected_gamma.retain(|&v| spec.owns(v));
        }
        prop.refresh_nodes(&new_graph, &affected_gamma);

        // 4. Walk index: deterministic full rebuild against the new graph.
        let parts = match self.summarizer() {
            SummarizerKind::Rcl(_) => WalkIndexParts::ALL,
            SummarizerKind::Lrw(_) => WalkIndexParts::FOR_LRW,
        };
        let walks = WalkIndex::build_parts(&new_graph, *self.walks().config(), parts);

        // 5. Re-summarize affected topics: those that gained members, plus
        //    those whose topic nodes or current representatives are within L
        //    hops of a changed edge in either direction (their walks, and
        //    hence their summaries, may have changed).
        let l = walks.l();
        let mut walk_region: FxHashSet<NodeId> = FxHashSet::default();
        for &(u, v, _) in &delta.new_edges {
            walk_region.extend(new_graph.downstream_within(&[u, v], l));
            // Upstream side: nodes whose walks can reach the changed edge.
            walk_region.extend(upstream_within(&new_graph, &[u, v], l));
        }
        let mut affected_topics: FxHashSet<TopicId> =
            delta.new_assignments.iter().map(|&(_, t)| t).collect();
        for t in new_space.topics() {
            if affected_topics.contains(&t) {
                continue;
            }
            let touches = new_space
                .topic_nodes(t)
                .iter()
                .any(|n| walk_region.contains(n))
                || self
                    .reps()
                    .get(t)
                    .nodes()
                    .iter()
                    .any(|n| walk_region.contains(n));
            if touches {
                affected_topics.insert(t);
            }
        }
        let mut affected_topics: Vec<TopicId> = affected_topics.into_iter().collect();
        affected_topics.sort_unstable();

        let mut reps: TopicRepIndex = self.reps().clone();
        {
            let ctx = SummarizeContext {
                graph: &new_graph,
                space: &new_space,
                walks: &walks,
            };
            let fresh = match self.summarizer() {
                SummarizerKind::Rcl(cfg) => {
                    let s = RclSummarizer::new(*cfg);
                    affected_topics
                        .iter()
                        .map(|&t| s.summarize(&ctx, t))
                        .collect::<Vec<_>>()
                }
                SummarizerKind::Lrw(cfg) => {
                    let s = LrwSummarizer::new(*cfg);
                    affected_topics
                        .iter()
                        .map(|&t| s.summarize(&ctx, t))
                        .collect::<Vec<_>>()
                }
            };
            for set in fresh {
                reps.replace(set);
            }
        }

        // Split the re-summarized topics' term bags by cause: a topic named
        // in the delta re-summarizes because it gained a member, the rest
        // because their walks sit near a changed edge.
        let assigned: FxHashSet<TopicId> = delta.new_assignments.iter().map(|&(_, t)| t).collect();
        let mut assignment_terms: Vec<TermId> = Vec::new();
        let mut edge_terms: Vec<TermId> = Vec::new();
        for &t in &affected_topics {
            let bag = if assigned.contains(&t) {
                &mut assignment_terms
            } else {
                &mut edge_terms
            };
            bag.extend_from_slice(new_space.topic_terms(t));
        }
        assignment_terms.sort_unstable();
        assignment_terms.dedup();
        edge_terms.sort_unstable();
        edge_terms.dedup();

        let report = UpdateReport {
            refreshed_gamma_tables: affected_gamma.len(),
            resummarized_topics: affected_topics.len(),
            walk_index_rebuilt: true,
            scope: DeltaScope {
                edge_users: scope_users,
                assignment_terms,
                edge_terms,
            },
        };
        // Summarization above needed the full walk index; the stored slice
        // keeps only the shard's own rows.
        let walks = match shard {
            Some(spec) => walks.sliced(&|v| spec.owns(v)),
            None => walks,
        };
        let next = PitEngine::from_parts(
            new_graph,
            new_space,
            self.vocab().cloned(),
            walks,
            prop,
            reps,
            self.summarizer().clone(),
            self.max_expand_rounds(),
        );
        Ok((next, report))
    }
}

/// Reverse BFS: every node that can reach any of `targets` within
/// `max_depth` hops (targets included).
fn upstream_within(g: &pit_graph::CsrGraph, targets: &[NodeId], max_depth: usize) -> Vec<NodeId> {
    let mut dist = vec![u32::MAX; g.node_count()];
    let mut queue = std::collections::VecDeque::new();
    for &t in targets {
        if dist[t.index()] == u32::MAX {
            dist[t.index()] = 0;
            queue.push_back(t);
        }
    }
    let mut out = Vec::new();
    while let Some(u) = queue.pop_front() {
        out.push(u);
        let du = dist[u.index()];
        if du as usize >= max_depth {
            continue;
        }
        for &w in g.in_neighbors(u) {
            if dist[w.index()] == u32::MAX {
                dist[w.index()] = du + 1;
                queue.push_back(w);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pit_graph::fixtures::{figure1_graph, figure1_topics, user};
    use pit_graph::TermId;
    use pit_index::PropIndexConfig;
    use pit_topics::TopicSpaceBuilder;
    use pit_walk::WalkConfig;

    fn engine() -> PitEngine {
        let graph = figure1_graph();
        let mut b = TopicSpaceBuilder::new(graph.node_count(), 1);
        for members in &figure1_topics() {
            let t = b.add_topic(vec![TermId(0)]);
            for &m in members {
                b.assign(m, t);
            }
        }
        PitEngine::builder()
            .walk(WalkConfig::new(4, 32).with_seed(9))
            .propagation(PropIndexConfig::with_theta(0.01))
            // Figure-1 calibration (see examples/quickstart.rs): low damping
            // keeps representatives at the influence sources of this 15-node
            // DAG, μ = 1 keeps all of them.
            .summarizer(SummarizerKind::Lrw(pit_summarize::LrwConfig {
                lambda: 0.2,
                mu: 1.0,
                ..Default::default()
            }))
            .build(graph, b.build())
    }

    #[test]
    fn empty_delta_is_a_noop() {
        let mut e = engine();
        let before = e.search_user_term(user(3), TermId(0), 3);
        let report = e.apply_delta(&Delta::default()).unwrap();
        assert_eq!(report, UpdateReport::default());
        let after = e.search_user_term(user(3), TermId(0), 3);
        assert_eq!(before.top_k, after.top_k);
    }

    #[test]
    fn gamma_refresh_matches_fresh_build_everywhere() {
        let mut e = engine();
        let delta = Delta {
            // A strong new path into user 3's neighborhood.
            new_edges: vec![(user(11), user(6), 0.9)],
            new_assignments: vec![],
        };
        let report = e.apply_delta(&delta).unwrap();
        assert!(report.refreshed_gamma_tables > 0);
        assert!(report.walk_index_rebuilt);

        // Every Γ table — refreshed or not — must equal a from-scratch build
        // on the updated graph.
        let fresh = pit_index::PropagationIndex::build(e.graph(), *e.propagation().config());
        for v in e.graph().nodes() {
            assert_eq!(
                e.propagation().gamma(v),
                fresh.gamma(v),
                "Γ({v}) diverged from fresh build"
            );
        }
    }

    #[test]
    fn new_edge_changes_search_results() {
        let mut e = engine();
        let before = e.search_user_term(user(7), TermId(0), 1);
        // t2 currently has no influence on user 7; wire topic-2 member user 4
        // directly to 7 with a strong edge.
        let delta = Delta {
            new_edges: vec![(user(4), user(7), 0.9)],
            new_assignments: vec![],
        };
        e.apply_delta(&delta).unwrap();
        let after = e.search_user_term(user(7), TermId(0), 1);
        // Before: HTC (t3) wins via 11→7. After, Samsung (t2) must at least
        // gain score; with a 0.9 edge it takes the top slot.
        assert_ne!(before.top_k, after.top_k, "delta had no effect");
        assert_eq!(after.top_k[0].topic, TopicId(1), "{after:?}");
    }

    #[test]
    fn new_assignment_resummarizes_topic() {
        let mut e = engine();
        // User 5 (a strong influencer of user 3) starts mentioning t3.
        let delta = Delta {
            new_edges: vec![],
            new_assignments: vec![(user(5), TopicId(2))],
        };
        let before = e.search_user_term(user(3), TermId(0), 3);
        let report = e.apply_delta(&delta).unwrap();
        assert!(report.resummarized_topics >= 1);
        assert!(e.space().node_has_topic(user(5), TopicId(2)));
        let after = e.search_user_term(user(3), TermId(0), 3);
        let score = |out: &pit_search_core::SearchOutcome, t: u32| {
            out.top_k
                .iter()
                .find(|s| s.topic == TopicId(t))
                .map(|s| s.score)
                .unwrap_or(0.0)
        };
        assert!(
            score(&after, 2) > score(&before, 2),
            "t3 should gain influence on user 3: {before:?} -> {after:?}"
        );
    }

    #[test]
    fn with_delta_leaves_the_source_engine_untouched() {
        let e = engine();
        let before = e.search_user_term(user(7), TermId(0), 3);
        let delta = Delta {
            new_edges: vec![(user(4), user(7), 0.9)],
            new_assignments: vec![],
        };
        let (next, report) = e.with_delta(&delta).unwrap();
        assert!(report.walk_index_rebuilt);
        // The source still serves the pre-delta answer…
        assert_eq!(
            before.top_k,
            e.search_user_term(user(7), TermId(0), 3).top_k
        );
        // …while the successor is exactly what apply_delta would produce.
        let after = next.search_user_term(user(7), TermId(0), 3);
        assert_ne!(before.top_k, after.top_k, "delta had no effect");
        let mut inplace = engine();
        inplace.apply_delta(&delta).unwrap();
        assert_eq!(
            after.top_k,
            inplace.search_user_term(user(7), TermId(0), 3).top_k
        );
    }

    #[test]
    fn with_delta_on_empty_delta_is_a_deep_clone() {
        let e = engine();
        let (clone, report) = e.with_delta(&Delta::default()).unwrap();
        assert_eq!(report, UpdateReport::default());
        assert_eq!(
            e.search_user_term(user(3), TermId(0), 3).top_k,
            clone.search_user_term(user(3), TermId(0), 3).top_k
        );
    }

    #[test]
    fn rejects_invalid_delta_edges() {
        let mut e = engine();
        let bad = Delta {
            new_edges: vec![(user(1), user(1), 0.5)],
            new_assignments: vec![],
        };
        assert!(e.apply_delta(&bad).is_err());
        let bad = Delta {
            new_edges: vec![(user(1), user(2), 1.5)],
            new_assignments: vec![],
        };
        assert!(e.apply_delta(&bad).is_err());
    }

    #[test]
    fn scoped_delta_commutes_with_slicing() {
        // The shard invariant: updating a slice in place must land exactly
        // where slicing the updated full engine would — same Γ tables, same
        // representative sets — for every shard of every partition width.
        use crate::shard::{slice_engine, ShardSpec};
        let e = engine();
        let delta = Delta {
            new_edges: vec![(user(11), user(6), 0.9)],
            new_assignments: vec![(user(5), TopicId(2))],
        };
        let (full_next, full_report) = e.with_delta(&delta).unwrap();
        for count in [2u32, 3] {
            for i in 0..count {
                let spec = ShardSpec::new(i, count);
                let slice = slice_engine(&e, spec);
                let (next, report) = slice.with_delta_scoped(&delta, Some(&spec)).unwrap();
                let expect = slice_engine(&full_next, spec);
                for v in next.graph().nodes() {
                    assert_eq!(
                        next.propagation().gamma(v),
                        expect.propagation().gamma(v),
                        "shard {spec}: Γ({v}) diverged"
                    );
                }
                for t in next.space().topics() {
                    assert_eq!(
                        next.reps().get(t),
                        expect.reps().get(t),
                        "shard {spec}: representatives of {t} diverged"
                    );
                }
                assert!(report.walk_index_rebuilt);
                assert!(
                    report.refreshed_gamma_tables <= full_report.refreshed_gamma_tables,
                    "a shard refreshes no more tables than the full engine"
                );
            }
        }
    }

    #[test]
    fn delta_scope_is_the_head_closure_plus_affected_term_bags() {
        let e = engine();
        // Edge-only delta: the user scope is exactly the downstream closure
        // of the head on the post-delta graph, and every re-summarized topic
        // files its terms under the edge cause.
        let delta = Delta {
            new_edges: vec![(user(4), user(7), 0.9)],
            new_assignments: vec![],
        };
        let (next, report) = e.with_delta(&delta).unwrap();
        let expect = next.graph().downstream_within(&[user(7)], usize::MAX);
        assert_eq!(report.scope.edge_users, expect);
        assert!(report.scope.touches_user(user(7)));
        assert!(report.scope.assignment_terms.is_empty());
        assert!(report.resummarized_topics > 0);
        // Figure 1 has a single term, so any re-summarized topic puts
        // TermId(0) in the edge bag.
        assert_eq!(report.scope.edge_terms, vec![TermId(0)]);
        assert!(report.scope.touches_edge_terms(&[TermId(0)]));

        // Assignment-only delta: no Γ table refreshes, no edge terms; the
        // assigned topic's terms land in the assignment bag.
        let delta = Delta {
            new_edges: vec![],
            new_assignments: vec![(user(5), TopicId(2))],
        };
        let (_, report) = e.with_delta(&delta).unwrap();
        assert!(report.scope.edge_users.is_empty());
        assert!(report.scope.edge_terms.is_empty());
        assert_eq!(report.scope.assignment_terms, vec![TermId(0)]);
        assert!(report.scope.touches_assignment_terms(&[TermId(0)]));
        assert!(!report.scope.is_empty());
    }

    #[test]
    fn upstream_within_is_reverse_reachability() {
        let g = figure1_graph();
        // Nodes that can reach user 3 within 1 hop: {3, 1, 5, 6}.
        let mut got = upstream_within(&g, &[user(3)], 1);
        got.sort_unstable();
        let mut expect = vec![user(3), user(1), user(5), user(6)];
        expect.sort_unstable();
        assert_eq!(got, expect);
    }
}
