//! The end-to-end PIT-Search engine: offline pipeline + online queries.

use pit_graph::{CsrGraph, NodeId, TermId};
use pit_index::{PropIndexConfig, PropagationIndex};
use pit_search_core::{
    CancelToken, PersonalizedSearcher, SearchConfig, SearchError, SearchOutcome, TopicRepIndex,
};
use pit_summarize::{LrwConfig, LrwSummarizer, RclConfig, RclSummarizer, SummarizeContext};
use pit_topics::{KeywordQuery, TopicSpace, Vocabulary};
use pit_walk::{WalkConfig, WalkIndex, WalkIndexParts};

/// Which summarization algorithm the offline stage runs.
#[derive(Clone, Debug)]
pub enum SummarizerKind {
    /// RCL-A (Section 3): random clustering + centroid selection.
    Rcl(RclConfig),
    /// LRW-A (Section 4): diversified PageRank + absorbing migration.
    Lrw(LrwConfig),
}

impl SummarizerKind {
    /// LRW-A with default parameters — the paper's recommended method.
    pub fn default_lrw() -> Self {
        SummarizerKind::Lrw(LrwConfig::default())
    }

    /// RCL-A with default parameters.
    pub fn default_rcl() -> Self {
        SummarizerKind::Rcl(RclConfig::default())
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            SummarizerKind::Rcl(_) => "RCL-A",
            SummarizerKind::Lrw(_) => "LRW-A",
        }
    }
}

/// Configures and builds a [`PitEngine`].
#[derive(Clone, Debug)]
pub struct PitEngineBuilder {
    walk: WalkConfig,
    prop: PropIndexConfig,
    summarizer: SummarizerKind,
    max_expand_rounds: usize,
}

impl Default for PitEngineBuilder {
    fn default() -> Self {
        PitEngineBuilder {
            walk: WalkConfig::new(5, 100),
            prop: PropIndexConfig::default(),
            summarizer: SummarizerKind::default_lrw(),
            max_expand_rounds: 4,
        }
    }
}

impl PitEngineBuilder {
    /// Walk-index parameters (`L`, `R`, seed, policy).
    pub fn walk(mut self, config: WalkConfig) -> Self {
        self.walk = config;
        self
    }

    /// Propagation-index parameters (`θ`, depth cap).
    pub fn propagation(mut self, config: PropIndexConfig) -> Self {
        self.prop = config;
        self
    }

    /// Summarization algorithm.
    pub fn summarizer(mut self, kind: SummarizerKind) -> Self {
        self.summarizer = kind;
        self
    }

    /// Cap on online EXPAND rounds.
    pub fn max_expand_rounds(mut self, rounds: usize) -> Self {
        self.max_expand_rounds = rounds;
        self
    }

    /// Run the full offline stage: walk index, per-topic representative
    /// sets, and the personalized propagation index.
    pub fn build(self, graph: CsrGraph, space: TopicSpace) -> PitEngine {
        self.build_with_vocab(graph, space, None)
    }

    /// As [`PitEngineBuilder::build`] but retaining a vocabulary so queries
    /// can be issued by keyword string.
    pub fn build_with_vocab(
        self,
        graph: CsrGraph,
        space: TopicSpace,
        vocab: Option<Vocabulary>,
    ) -> PitEngine {
        let parts = match self.summarizer {
            SummarizerKind::Rcl(_) => WalkIndexParts::ALL,
            SummarizerKind::Lrw(_) => WalkIndexParts::FOR_LRW,
        };
        let walks = WalkIndex::build_parts(&graph, self.walk, parts);
        let reps = {
            let ctx = SummarizeContext {
                graph: &graph,
                space: &space,
                walks: &walks,
            };
            match &self.summarizer {
                SummarizerKind::Rcl(cfg) => TopicRepIndex::build(&ctx, &RclSummarizer::new(*cfg)),
                SummarizerKind::Lrw(cfg) => TopicRepIndex::build(&ctx, &LrwSummarizer::new(*cfg)),
            }
        };
        let prop = PropagationIndex::build(&graph, self.prop);
        PitEngine {
            graph,
            space,
            vocab,
            walks,
            prop,
            reps,
            summarizer: self.summarizer,
            max_expand_rounds: self.max_expand_rounds,
        }
    }
}

/// A fully materialized PIT-Search system: owns the graph, topic space and
/// all three offline indexes, and answers online top-k queries.
pub struct PitEngine {
    graph: CsrGraph,
    space: TopicSpace,
    vocab: Option<Vocabulary>,
    walks: WalkIndex,
    prop: PropagationIndex,
    reps: TopicRepIndex,
    summarizer: SummarizerKind,
    max_expand_rounds: usize,
}

impl PitEngine {
    /// Start configuring an engine.
    pub fn builder() -> PitEngineBuilder {
        PitEngineBuilder::default()
    }

    /// Assemble an engine from pre-built parts (e.g. loaded from a
    /// [`crate::store`] directory), skipping the offline stage entirely.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        graph: CsrGraph,
        space: TopicSpace,
        vocab: Option<Vocabulary>,
        walks: WalkIndex,
        prop: PropagationIndex,
        reps: TopicRepIndex,
        summarizer: SummarizerKind,
        max_expand_rounds: usize,
    ) -> Self {
        PitEngine {
            graph,
            space,
            vocab,
            walks,
            prop,
            reps,
            summarizer,
            max_expand_rounds,
        }
    }

    /// Run a query built from term ids.
    ///
    /// # Panics
    /// Panics if `query.user` is outside the graph; use
    /// [`PitEngine::try_search`] for a typed error instead.
    pub fn search(&self, query: &KeywordQuery, k: usize) -> SearchOutcome {
        match self.try_search(query, k, &CancelToken::none()) {
            Ok(outcome) => outcome,
            Err(e) => panic!("{e}"),
        }
    }

    /// Run a query under a cancellation/deadline token, without panicking.
    ///
    /// # Errors
    /// [`SearchError::UserOutOfRange`] for an unindexed user, or
    /// [`SearchError::Cancelled`] when `cancel` fires mid-search.
    pub fn try_search(
        &self,
        query: &KeywordQuery,
        k: usize,
        cancel: &CancelToken,
    ) -> Result<SearchOutcome, SearchError> {
        self.try_search_traced(query, k, cancel, &mut pit_search_core::NoTracer)
    }

    /// [`PitEngine::try_search`] with stage callbacks for the serving
    /// stack's per-query traces (see [`pit_search_core::SearchTracer`]).
    ///
    /// # Errors
    /// Same as [`PitEngine::try_search`].
    pub fn try_search_traced(
        &self,
        query: &KeywordQuery,
        k: usize,
        cancel: &CancelToken,
        tracer: &mut dyn pit_search_core::SearchTracer,
    ) -> Result<SearchOutcome, SearchError> {
        let mut scratch = pit_search_core::SearchScratch::new();
        self.try_search_traced_with(query, k, cancel, tracer, &mut scratch)
    }

    /// [`PitEngine::try_search_traced`] with a caller-owned
    /// [`pit_search_core::SearchScratch`]: serving workers keep one scratch
    /// per thread so repeated queries reuse every per-query buffer.
    ///
    /// # Errors
    /// Same as [`PitEngine::try_search`].
    pub fn try_search_traced_with(
        &self,
        query: &KeywordQuery,
        k: usize,
        cancel: &CancelToken,
        tracer: &mut dyn pit_search_core::SearchTracer,
        scratch: &mut pit_search_core::SearchScratch,
    ) -> Result<SearchOutcome, SearchError> {
        let config = SearchConfig {
            k,
            max_expand_rounds: self.max_expand_rounds,
            prune: true,
        };
        PersonalizedSearcher::new(&self.space, &self.prop, &self.reps, config)
            .try_search_traced_with(query, cancel, tracer, scratch)
    }

    /// Convenience: single-term query by id.
    pub fn search_user_term(&self, user: NodeId, term: TermId, k: usize) -> SearchOutcome {
        self.search(&KeywordQuery::new(user, vec![term]), k)
    }

    /// Convenience: query by keyword strings. Unknown keywords are reported
    /// rather than silently dropped.
    ///
    /// # Errors
    /// Returns the offending keyword when it is not in the vocabulary, or
    /// when the engine was built without one.
    pub fn search_keywords(
        &self,
        user: NodeId,
        keywords: &[&str],
        k: usize,
    ) -> Result<SearchOutcome, String> {
        let vocab = self
            .vocab
            .as_ref()
            .ok_or_else(|| "engine was built without a vocabulary".to_string())?;
        let terms = keywords
            .iter()
            .map(|kw| {
                vocab
                    .get(kw)
                    .ok_or_else(|| format!("unknown keyword: {kw}"))
            })
            .collect::<Result<Vec<TermId>, String>>()?;
        Ok(self.search(&KeywordQuery::new(user, terms), k))
    }

    /// The social graph.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// The topic space.
    pub fn space(&self) -> &TopicSpace {
        &self.space
    }

    /// The vocabulary, when retained.
    pub fn vocab(&self) -> Option<&Vocabulary> {
        self.vocab.as_ref()
    }

    /// The sampled-walk index.
    pub fn walks(&self) -> &WalkIndex {
        &self.walks
    }

    /// The personalized propagation index.
    pub fn propagation(&self) -> &PropagationIndex {
        &self.prop
    }

    /// The topic-to-representative index.
    pub fn reps(&self) -> &TopicRepIndex {
        &self.reps
    }

    /// Which summarizer built the representative sets.
    pub fn summarizer(&self) -> &SummarizerKind {
        &self.summarizer
    }

    /// The online EXPAND round cap.
    pub fn max_expand_rounds(&self) -> usize {
        self.max_expand_rounds
    }

    /// Total resident size of the three offline indexes, in bytes.
    pub fn index_bytes(&self) -> usize {
        self.walks.heap_size_bytes() + self.prop.heap_size_bytes() + self.reps.heap_size_bytes()
    }

    /// Bytes of index data served zero-copy from a flat snapshot mapping
    /// (0 for engines built in memory or deep-copied off disk). Feeds the
    /// `pit_reload_bytes_mapped` gauge.
    pub fn mapped_bytes(&self) -> usize {
        self.graph.mapped_bytes() + self.walks.mapped_bytes() + self.prop.mapped_bytes()
    }

    /// How this engine's arrays are backed: `"flat-mapped"` when any index
    /// section is a borrowed window of the snapshot mapping, `"owned"`
    /// otherwise. Surfaced as the `snapshot_format` STATS key.
    pub fn snapshot_format(&self) -> &'static str {
        if self.mapped_bytes() > 0 {
            "flat-mapped"
        } else {
            "owned"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pit_graph::fixtures;
    use pit_topics::TopicSpaceBuilder;

    fn fig1_engine(kind: SummarizerKind) -> PitEngine {
        let graph = fixtures::figure1_graph();
        let mut b = TopicSpaceBuilder::new(graph.node_count(), 1);
        for nodes in &fixtures::figure1_topics() {
            let t = b.add_topic(vec![TermId(0)]);
            for &n in nodes {
                b.assign(n, t);
            }
        }
        PitEngine::builder()
            .walk(WalkConfig::new(4, 32).with_seed(9))
            .propagation(PropIndexConfig::with_theta(0.01))
            .summarizer(kind)
            .build(graph, b.build())
    }

    #[test]
    fn lrw_engine_answers_example1() {
        let engine = fig1_engine(SummarizerKind::default_lrw());
        let out = engine.search_user_term(fixtures::user(3), TermId(0), 3);
        assert_eq!(out.candidate_topics, 3);
        assert_eq!(out.top_k.len(), 3);
        // All three topics scored; scores descending.
        assert!(out.top_k.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn rcl_engine_runs() {
        let engine = fig1_engine(SummarizerKind::Rcl(RclConfig {
            c_size: 2,
            sample_rate: 1.0,
            ..RclConfig::default()
        }));
        let out = engine.search_user_term(fixtures::user(3), TermId(0), 2);
        assert_eq!(out.top_k.len(), 2);
        assert!(engine.index_bytes() > 0);
    }

    #[test]
    fn keyword_search_requires_vocab() {
        let engine = fig1_engine(SummarizerKind::default_lrw());
        let err = engine
            .search_keywords(fixtures::user(3), &["phone"], 1)
            .unwrap_err();
        assert!(err.contains("vocabulary"));
    }

    #[test]
    fn keyword_search_with_vocab() {
        let graph = fixtures::figure1_graph();
        let mut vocab = Vocabulary::new();
        let phone = vocab.intern("phone");
        let mut b = TopicSpaceBuilder::new(graph.node_count(), 1);
        for nodes in &fixtures::figure1_topics() {
            let t = b.add_topic(vec![phone]);
            for &n in nodes {
                b.assign(n, t);
            }
        }
        let engine = PitEngine::builder()
            .walk(WalkConfig::new(4, 16))
            .build_with_vocab(graph, b.build(), Some(vocab));
        let out = engine
            .search_keywords(fixtures::user(3), &["phone"], 2)
            .unwrap();
        assert_eq!(out.top_k.len(), 2);
        let err = engine
            .search_keywords(fixtures::user(3), &["tablet"], 2)
            .unwrap_err();
        assert!(err.contains("tablet"));
    }
}
