//! The upper-bound pruning of Algorithm 10/11 must never change the result
//! relative to running every topic to exhaustion — across datasets, seeds,
//! users and k.

use pit_datasets::{generate, paper_specs, DatasetKind, DatasetSpec};
use pit_graph::{NodeId, TermId, TopicId};
use pit_index::{PropIndexConfig, PropagationIndex};
use pit_search_core::{PersonalizedSearcher, SearchConfig, TopicRepIndex};
use pit_summarize::{LrwConfig, LrwSummarizer, SummarizeContext};
use pit_topics::KeywordQuery;
use pit_walk::{WalkConfig, WalkIndex, WalkIndexParts};

fn check_spec(spec: &DatasetSpec, theta: f64) {
    let ds = generate(spec);
    let walks = WalkIndex::build_parts(
        &ds.graph,
        WalkConfig::new(4, 12).with_seed(spec.seed),
        WalkIndexParts::FOR_LRW,
    );
    let prop = PropagationIndex::build(&ds.graph, PropIndexConfig::with_theta(theta));
    let ctx = SummarizeContext {
        graph: &ds.graph,
        space: &ds.space,
        walks: &walks,
    };
    let reps = TopicRepIndex::build(
        &ctx,
        &LrwSummarizer::new(LrwConfig {
            rep_count: Some(6),
            ..LrwConfig::default()
        }),
    );

    for k in [1usize, 5, 20] {
        for u in [0usize, 99, 500] {
            let q = KeywordQuery::new(NodeId::from_index(u), vec![TermId(0)]);
            let pruned = PersonalizedSearcher::new(
                &ds.space,
                &prop,
                &reps,
                SearchConfig {
                    k,
                    max_expand_rounds: 6,
                    prune: true,
                },
            )
            .search(&q);
            let full = PersonalizedSearcher::new(
                &ds.space,
                &prop,
                &reps,
                SearchConfig {
                    k,
                    max_expand_rounds: 6,
                    prune: false,
                },
            )
            .search(&q);
            let a: Vec<TopicId> = pruned.top_k.iter().map(|s| s.topic).collect();
            let b: Vec<TopicId> = full.top_k.iter().map(|s| s.topic).collect();
            assert_eq!(
                a, b,
                "{}: pruning changed the top-{k} for user {u} \
                 (pruned {} topics)",
                spec.name, pruned.pruned_topics
            );
        }
    }
}

#[test]
fn pruning_safe_on_power_law_graph() {
    let mut spec = paper_specs(100)[0].clone();
    spec.nodes = 1_000;
    check_spec(&spec, 0.01);
}

#[test]
fn pruning_safe_on_degree_band_graph() {
    let spec = DatasetSpec {
        name: "band-test".into(),
        nodes: 1_000,
        kind: DatasetKind::DegreeBand { lo: 4, hi: 9 },
        topics: pit_datasets::spec::scaled_topic_config(1_000, 33),
        seed: 33,
    };
    check_spec(&spec, 0.02);
}

#[test]
fn pruning_safe_across_seeds() {
    for seed in [1u64, 2, 3] {
        let spec = DatasetSpec {
            name: format!("seed-{seed}"),
            nodes: 600,
            kind: DatasetKind::PowerLaw { edges_per_node: 3 },
            topics: pit_datasets::spec::scaled_topic_config(600, seed),
            seed,
        };
        check_spec(&spec, 0.01);
    }
}
