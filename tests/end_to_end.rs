//! End-to-end pipeline tests: offline stage + online search on both the
//! paper's fixtures and generated datasets.

use pit::{PitEngine, SummarizerKind};
use pit_datasets::{generate, paper_specs};
use pit_graph::fixtures::{figure1_graph, figure1_topics, user};
use pit_graph::{TermId, TopicId};
use pit_index::PropIndexConfig;
use pit_summarize::LrwConfig;
use pit_topics::{KeywordQuery, TopicSpaceBuilder};
use pit_walk::WalkConfig;

fn example1_engine() -> PitEngine {
    let graph = figure1_graph();
    let mut b = TopicSpaceBuilder::new(graph.node_count(), 1);
    for members in &figure1_topics() {
        let t = b.add_topic(vec![TermId(0)]);
        for &m in members {
            b.assign(m, t);
        }
    }
    PitEngine::builder()
        .walk(WalkConfig::new(4, 64).with_seed(42))
        .propagation(PropIndexConfig::with_theta(0.005))
        .summarizer(SummarizerKind::Lrw(LrwConfig {
            lambda: 0.2,
            mu: 1.0,
            ..Default::default()
        }))
        .build(graph, b.build())
}

/// The paper's Example 1: same query, three users, three different winners.
#[test]
fn example1_personalization() {
    let engine = example1_engine();
    let expect = [(3u32, TopicId(1)), (7, TopicId(2)), (14, TopicId(1))];
    for (u, winner) in expect {
        let out = engine.search_user_term(user(u), TermId(0), 1);
        assert_eq!(out.top_k[0].topic, winner, "user {u}: got {:?}", out.top_k);
    }
}

/// Example 1's influence values survive the full pipeline: Samsung ≈ 0.188
/// for User 3, as in the paper's worked table.
#[test]
fn example1_scores_match_paper() {
    let engine = example1_engine();
    let out = engine.search_user_term(user(3), TermId(0), 3);
    let samsung = out
        .top_k
        .iter()
        .find(|s| s.topic == TopicId(1))
        .expect("t2 present");
    assert!(
        (samsung.score - 0.188).abs() < 0.02,
        "Samsung score {} far from paper's 0.188",
        samsung.score
    );
    let apple = out
        .top_k
        .iter()
        .find(|s| s.topic == TopicId(0))
        .expect("t1 present");
    assert!(
        (apple.score - 0.137).abs() < 0.02,
        "Apple score {} far from paper's 0.137",
        apple.score
    );
}

/// The engine is deterministic end to end for a fixed seed.
#[test]
fn engine_is_deterministic() {
    let a = example1_engine();
    let b = example1_engine();
    for u in [3u32, 7, 14] {
        let oa = a.search_user_term(user(u), TermId(0), 3);
        let ob = b.search_user_term(user(u), TermId(0), 3);
        assert_eq!(oa.top_k, ob.top_k, "user {u} diverged");
    }
}

/// A light spec for integration tests (the real data_2k spec carries the
/// paper's 4000-topic space, far too heavy for a unit-style test).
fn light_spec(nodes: usize, seed: u64) -> pit_datasets::DatasetSpec {
    pit_datasets::DatasetSpec {
        name: format!("light-{seed}"),
        nodes,
        kind: pit_datasets::DatasetKind::PowerLaw { edges_per_node: 4 },
        topics: pit_datasets::spec::scaled_topic_config(nodes, seed),
        seed,
    }
}

/// Full pipeline on a generated dataset: every workload query returns a
/// well-formed result and prunes/probes sensibly.
#[test]
fn generated_dataset_pipeline() {
    let mut spec = paper_specs(1000)[1].clone(); // data_350k shrunk to 1000+
    spec.nodes = 1_200;
    spec.topics = pit_datasets::spec::scaled_topic_config(1_200, spec.seed);
    let ds = generate(&spec);
    let engine = PitEngine::builder()
        .walk(WalkConfig::new(4, 16).with_seed(7))
        .propagation(PropIndexConfig::with_theta(0.02))
        .summarizer(SummarizerKind::Lrw(LrwConfig {
            rep_count: Some(8),
            ..LrwConfig::default()
        }))
        .build_with_vocab(ds.graph, ds.space, Some(ds.vocab));

    let k = 5;
    for term in 0..4u32 {
        for u in [0usize, 123, 777] {
            let q = KeywordQuery::new(pit_graph::NodeId::from_index(u), vec![TermId(term)]);
            let out = engine.search(&q, k);
            assert!(out.top_k.len() <= k);
            assert!(
                out.top_k.len() == k.min(out.candidate_topics),
                "term {term}, user {u}: expected a full result, got {}/{}",
                out.top_k.len(),
                out.candidate_topics
            );
            // Scores sorted descending and finite.
            assert!(out.top_k.windows(2).all(|w| w[0].score >= w[1].score));
            assert!(out
                .top_k
                .iter()
                .all(|s| s.score.is_finite() && s.score >= 0.0));
        }
    }
}

/// Both summarizers approximate the same reference (BasePropagation, the
/// exact-by-index engine) far above chance.
///
/// Note on ordering: the paper's Twitter evaluation has LRW-A above RCL-A.
/// On sparse synthetic graphs the sampled common-reachability test groups
/// almost nothing, so RCL-A degenerates to singleton clusters whose
/// centroids are the topic nodes themselves — a near-exact (if bulky)
/// summary — while LRW-A's hub representatives genuinely compress and lose
/// precision. We therefore assert quality floors for both rather than the
/// Twitter-specific ordering; EXPERIMENTS.md discusses the inversion.
#[test]
fn summarizers_beat_chance_against_reference() {
    let ds = generate(&light_spec(1_000, 0xD2C0));
    let lrw = PitEngine::builder()
        .walk(WalkConfig::new(4, 32).with_seed(5))
        .propagation(PropIndexConfig::with_theta(0.005))
        .summarizer(SummarizerKind::Lrw(LrwConfig {
            rep_count: Some(80),
            ..LrwConfig::default()
        }))
        .build(ds.graph.clone(), ds.space.clone());
    let rcl = PitEngine::builder()
        .walk(WalkConfig::new(4, 32).with_seed(5))
        .propagation(PropIndexConfig::with_theta(0.005))
        .summarizer(SummarizerKind::Rcl(pit_summarize::RclConfig {
            c_size: 50,
            sample_rate: 0.2,
            ..pit_summarize::RclConfig::default()
        }))
        .build(ds.graph.clone(), ds.space.clone());
    let reference = {
        let prop =
            pit_index::PropagationIndex::build(&ds.graph, PropIndexConfig::with_theta(0.005));
        move |q: &KeywordQuery, k: usize| -> Vec<TopicId> {
            let engine = pit_baselines::BasePropagation::new(&ds.space, &prop);
            pit_baselines::rank_top_k(&engine, &ds.space, q, k)
                .into_iter()
                .map(|r| r.topic)
                .collect()
        }
    };

    let k = 10;
    let users = [3usize, 50, 123, 250, 400, 600, 777, 999];
    let (mut p_lrw, mut p_rcl) = (0.0, 0.0);
    for &u in &users {
        let q = KeywordQuery::new(pit_graph::NodeId::from_index(u), vec![TermId(0)]);
        let truth = reference(&q, k);
        let a: Vec<TopicId> = lrw.search(&q, k).top_k.iter().map(|s| s.topic).collect();
        let b: Vec<TopicId> = rcl.search(&q, k).top_k.iter().map(|s| s.topic).collect();
        p_lrw += pit_eval::precision_at_k(&a, &truth, k);
        p_rcl += pit_eval::precision_at_k(&b, &truth, k);
    }
    p_lrw /= users.len() as f64;
    p_rcl /= users.len() as f64;
    // Chance at k = 10 over ~80+ candidate topics is ≤ 0.13; require ~2×
    // that. The floor is a quality guard, not a calibration target — exact
    // precision shifts with the RNG stream behind the synthetic corpus.
    assert!(p_lrw > 0.25, "LRW-A precision too low: {p_lrw}");
    assert!(p_rcl > 0.25, "RCL-A precision too low: {p_rcl}");
}
