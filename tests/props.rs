//! Cross-crate property-based tests: the online search against brute force,
//! summarization invariants, and baseline consistency on random graphs.

use pit_baselines::exact::sum_simple_path_probs;
use pit_graph::{GraphBuilder, NodeId, TermId, TopicId};
use pit_index::{PropIndexConfig, PropagationIndex};
use pit_search_core::{PersonalizedSearcher, SearchConfig, TopicRepIndex};
use pit_summarize::{LrwConfig, LrwSummarizer, RepresentativeSet, SummarizeContext, Summarizer};
use pit_topics::{KeywordQuery, TopicSpaceBuilder};
use pit_walk::{WalkConfig, WalkIndex};
use proptest::prelude::*;
use rustc_hash::FxHashSet;

/// A random small directed graph plus a random topic assignment.
#[derive(Debug, Clone)]
struct Instance {
    n: usize,
    edges: Vec<(u32, u32, f64)>,
    /// topic -> member node ids.
    topics: Vec<Vec<u32>>,
}

fn instance() -> impl Strategy<Value = Instance> {
    (4usize..=14).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32, 0.1f64..0.9f64)
            .prop_filter("no self-loops", |(a, b, _)| a != b);
        let edges = proptest::collection::vec(edge, n..4 * n).prop_map(move |mut es| {
            let mut seen = FxHashSet::default();
            es.retain(|&(a, b, _)| seen.insert((a, b)));
            es
        });
        let topic = proptest::collection::vec(0..n as u32, 1..=4).prop_map(|mut t| {
            t.sort_unstable();
            t.dedup();
            t
        });
        let topics = proptest::collection::vec(topic, 2..=4);
        (edges, topics).prop_map(move |(edges, topics)| Instance { n, edges, topics })
    })
}

struct Built {
    graph: pit_graph::CsrGraph,
    space: pit_topics::TopicSpace,
    prop: PropagationIndex,
    reps: TopicRepIndex,
}

fn build(inst: &Instance, theta: f64) -> Built {
    let mut b = GraphBuilder::new(inst.n);
    for &(u, v, p) in &inst.edges {
        b.add_edge(NodeId(u), NodeId(v), p).unwrap();
    }
    let graph = b.build().unwrap();
    let mut tb = TopicSpaceBuilder::new(inst.n, 1);
    for members in &inst.topics {
        let t = tb.add_topic(vec![TermId(0)]);
        for &m in members {
            tb.assign(NodeId(m), t);
        }
    }
    let space = tb.build();
    let walks = WalkIndex::build(&graph, WalkConfig::new(3, 8).with_seed(1));
    let prop = PropagationIndex::build(&graph, PropIndexConfig::with_theta(theta));
    let ctx = SummarizeContext {
        graph: &graph,
        space: &space,
        walks: &walks,
    };
    let reps = TopicRepIndex::build(&ctx, &LrwSummarizer::new(LrwConfig::default()));
    Built {
        graph,
        space,
        prop,
        reps,
    }
}

/// Brute-force reference: score of each topic by summing, over its
/// representatives, weight × Γ(v) entry (round-0 semantics, no expansion).
fn brute_force_scores(built: &Built, user: NodeId) -> Vec<(TopicId, f64)> {
    let gamma = built.prop.gamma(user);
    built
        .space
        .topics()
        .map(|t| {
            let set = built.reps.get(t);
            let score: f64 = set
                .iter()
                .filter_map(|(x, w)| gamma.get(x).map(|p| p * w))
                .sum();
            (t, score)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The searcher's round-0 scores equal the brute-force reference
    /// (pruning and expansion disabled), and the top-k is the k best.
    #[test]
    fn search_matches_brute_force(inst in instance()) {
        let built = build(&inst, 0.05);
        let user = NodeId(0);
        let searcher = PersonalizedSearcher::new(
            &built.space,
            &built.prop,
            &built.reps,
            SearchConfig { k: built.space.topic_count(), max_expand_rounds: 0, prune: false },
        );
        let out = searcher.search(&KeywordQuery::new(user, vec![TermId(0)]));
        let mut expect = brute_force_scores(&built, user);
        expect.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        prop_assert_eq!(out.top_k.len(), expect.len());
        for (got, (t, s)) in out.top_k.iter().zip(expect.iter()) {
            prop_assert_eq!(got.topic, *t);
            prop_assert!((got.score - s).abs() < 1e-12,
                "topic {}: {} vs {}", t, got.score, s);
        }
    }

    /// Pruning never changes the returned top-k set on random instances.
    #[test]
    fn pruning_is_safe(inst in instance(), k in 1usize..5) {
        let built = build(&inst, 0.02);
        for u in 0..inst.n.min(4) {
            let q = KeywordQuery::new(NodeId(u as u32), vec![TermId(0)]);
            let pruned = PersonalizedSearcher::new(
                &built.space, &built.prop, &built.reps,
                SearchConfig { k, max_expand_rounds: 5, prune: true },
            ).search(&q);
            let full = PersonalizedSearcher::new(
                &built.space, &built.prop, &built.reps,
                SearchConfig { k, max_expand_rounds: 5, prune: false },
            ).search(&q);
            let a: Vec<TopicId> = pruned.top_k.iter().map(|s| s.topic).collect();
            let b: Vec<TopicId> = full.top_k.iter().map(|s| s.topic).collect();
            prop_assert_eq!(a, b, "user {} k {}", u, k);
        }
    }

    /// Summarization invariants: weights non-negative, total ≤ 1, and every
    /// representative set is bounded by its configuration.
    #[test]
    fn summaries_are_well_formed(inst in instance()) {
        let built = build(&inst, 0.05);
        for t in built.space.topics() {
            let set: &RepresentativeSet = built.reps.get(t);
            prop_assert!(set.total_weight() <= 1.0 + 1e-9, "topic {}: {}", t, set.total_weight());
            for (_, w) in set.iter() {
                prop_assert!(w >= 0.0 && w.is_finite());
            }
        }
    }

    /// Γ(v) entries are genuine lower bounds on the exact (simple-path)
    /// propagation probability: thresholded path enumeration can only omit
    /// probability mass, never invent it.
    #[test]
    fn gamma_entries_below_exact_path_sum(inst in instance()) {
        let built = build(&inst, 0.05);
        for v in built.graph.nodes().take(4) {
            for (u, p) in built.prop.gamma(v).iter() {
                let exact = sum_simple_path_probs(&built.graph, u, v);
                prop_assert!(p <= exact + 1e-9,
                    "Γ({})[{}] = {} exceeds exact {}", v, u, p, exact);
            }
        }
    }

    /// The LRW summarizer is deterministic as a function of its inputs.
    #[test]
    fn summarizer_deterministic(inst in instance()) {
        let a = build(&inst, 0.05);
        let b = build(&inst, 0.05);
        for t in a.space.topics() {
            prop_assert_eq!(a.reps.get(t), b.reps.get(t));
        }
    }
}

/// Non-proptest sanity: the LRW summarizer respects explicit rep counts on a
/// fixed random instance.
#[test]
fn rep_count_respected() {
    let inst = Instance {
        n: 10,
        edges: (0..9u32).map(|i| (i, i + 1, 0.5)).collect(),
        topics: vec![vec![0, 2, 4, 6, 8]],
    };
    let mut b = GraphBuilder::new(inst.n);
    for &(u, v, p) in &inst.edges {
        b.add_edge(NodeId(u), NodeId(v), p).unwrap();
    }
    let graph = b.build().unwrap();
    let mut tb = TopicSpaceBuilder::new(inst.n, 1);
    let t = tb.add_topic(vec![TermId(0)]);
    for &m in &inst.topics[0] {
        tb.assign(NodeId(m), t);
    }
    let space = tb.build();
    let walks = WalkIndex::build(&graph, WalkConfig::new(3, 8));
    let ctx = SummarizeContext {
        graph: &graph,
        space: &space,
        walks: &walks,
    };
    for count in 1..=5usize {
        let set = LrwSummarizer::new(LrwConfig {
            rep_count: Some(count),
            ..LrwConfig::default()
        })
        .summarize(&ctx, t);
        assert_eq!(set.len(), count);
    }
}
