//! Corruption fuzzing for every binary snapshot format: decoders must never
//! panic on malformed input — truncations, byte flips, random garbage — only
//! return errors (or, for benign flips such as a probability's low bits,
//! succeed).

use pit_graph::fixtures::{figure1_graph, figure1_topics, figure3_graph};
use pit_graph::{TermId, TopicId};
use pit_index::{PropIndexConfig, PropagationIndex};
use pit_search_core::TopicRepIndex;
use pit_summarize::RepresentativeSet;
use pit_topics::TopicSpaceBuilder;
use pit_walk::{WalkConfig, WalkIndex};
use proptest::prelude::*;

fn space() -> pit_topics::TopicSpace {
    let g = figure1_graph();
    let mut b = TopicSpaceBuilder::new(g.node_count(), 2);
    for members in &figure1_topics() {
        let t = b.add_topic(vec![TermId(0), TermId(1)]);
        for &m in members {
            b.assign(m, t);
        }
    }
    b.build()
}

/// All snapshot payloads under test, with a closure that decodes them.
type Decoder = fn(&[u8]) -> bool;

fn payloads() -> Vec<(String, Vec<u8>, Decoder)> {
    let graph = figure1_graph();
    let walks = WalkIndex::build(&graph, WalkConfig::new(3, 4));
    let prop = PropagationIndex::build(&figure3_graph(), PropIndexConfig::default());
    let reps = TopicRepIndex::from_sets(vec![RepresentativeSet::new(
        TopicId(0),
        vec![(pit_graph::NodeId(1), 0.5)],
    )]);
    let space = space();
    let mut vocab = pit_topics::Vocabulary::new();
    vocab.intern("phone");
    vocab.intern("tablet");

    vec![
        (
            "graph".into(),
            pit_graph::snapshot::encode(&graph).to_vec(),
            |b| pit_graph::snapshot::decode(b).is_ok(),
        ),
        (
            "walks".into(),
            pit_walk::snapshot::encode(&walks).to_vec(),
            |b| pit_walk::snapshot::decode(b).is_ok(),
        ),
        (
            "prop".into(),
            pit_index::snapshot::encode(&prop).to_vec(),
            |b| pit_index::snapshot::decode(b).is_ok(),
        ),
        (
            "reps".into(),
            pit_search_core::snapshot::encode(&reps).to_vec(),
            |b| pit_search_core::snapshot::decode(b).is_ok(),
        ),
        (
            "space".into(),
            pit_topics::snapshot::encode_space(&space).to_vec(),
            |b| pit_topics::snapshot::decode_space(b).is_ok(),
        ),
        (
            "vocab".into(),
            pit_topics::snapshot::encode_vocab(&vocab).to_vec(),
            |b| pit_topics::snapshot::decode_vocab(b).is_ok(),
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Truncation at any point never panics and (except trivial cases)
    /// errors out.
    #[test]
    fn truncation_never_panics(cut_pct in 0u32..100) {
        for (name, bytes, decode_ok) in payloads() {
            let cut = (bytes.len() as u64 * cut_pct as u64 / 100) as usize;
            if cut == bytes.len() {
                continue;
            }
            // Must not panic; truncated payloads must fail.
            prop_assert!(!decode_ok(&bytes[..cut]), "{name}: truncated decode succeeded");
        }
    }

    /// Random single-byte flips never panic.
    #[test]
    fn byte_flips_never_panic(pos_pct in 0u32..100, xor in 1u8..=255) {
        for (_name, mut bytes, decode_ok) in payloads() {
            let pos = (bytes.len() as u64 * pos_pct as u64 / 100) as usize;
            let pos = pos.min(bytes.len() - 1);
            bytes[pos] ^= xor;
            // Outcome may be Ok (benign flip in a float) or Err — the only
            // failure mode is a panic, which proptest would catch.
            let _ = decode_ok(&bytes);
        }
    }

    /// Entirely random garbage never panics and never decodes.
    #[test]
    fn garbage_never_decodes(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        for (name, _, decode_ok) in payloads() {
            // Exclude the astronomically unlikely case of valid magic+layout
            // by checking the first bytes differ from any known magic.
            if bytes.len() >= 4 && (&bytes[..3] == b"PIT") {
                continue;
            }
            prop_assert!(!decode_ok(&bytes), "{name}: garbage decoded");
        }
    }
}
