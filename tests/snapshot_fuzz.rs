//! Corruption fuzzing for every binary snapshot format: decoders must never
//! panic on malformed input — truncations, byte flips, random garbage — only
//! return errors (or, for benign flips such as a probability's low bits,
//! succeed).
//!
//! The `flat` module runs the same battery against the flat engine
//! container (`engine.pitf`): truncations, bit flips, misaligned section
//! offsets, overlapping and out-of-order section-table entries, and wrong
//! checksums must each yield a typed error — never a panic, and never a
//! silently-wrong engine (any corruption the checksummed loader accepts
//! must leave every ranking bit-identical to the pristine snapshot's).

use pit_graph::fixtures::{figure1_graph, figure1_topics, figure3_graph};
use pit_graph::{TermId, TopicId};
use pit_index::{PropIndexConfig, PropagationIndex};
use pit_search_core::TopicRepIndex;
use pit_summarize::RepresentativeSet;
use pit_topics::TopicSpaceBuilder;
use pit_walk::{WalkConfig, WalkIndex};
use proptest::prelude::*;

fn space() -> pit_topics::TopicSpace {
    let g = figure1_graph();
    let mut b = TopicSpaceBuilder::new(g.node_count(), 2);
    for members in &figure1_topics() {
        let t = b.add_topic(vec![TermId(0), TermId(1)]);
        for &m in members {
            b.assign(m, t);
        }
    }
    b.build()
}

/// All snapshot payloads under test, with a closure that decodes them.
type Decoder = fn(&[u8]) -> bool;

fn payloads() -> Vec<(String, Vec<u8>, Decoder)> {
    let graph = figure1_graph();
    let walks = WalkIndex::build(&graph, WalkConfig::new(3, 4));
    let prop = PropagationIndex::build(&figure3_graph(), PropIndexConfig::default());
    let reps = TopicRepIndex::from_sets(vec![RepresentativeSet::new(
        TopicId(0),
        vec![(pit_graph::NodeId(1), 0.5)],
    )]);
    let space = space();
    let mut vocab = pit_topics::Vocabulary::new();
    vocab.intern("phone");
    vocab.intern("tablet");

    vec![
        (
            "graph".into(),
            pit_graph::snapshot::encode(&graph).to_vec(),
            |b| pit_graph::snapshot::decode(b).is_ok(),
        ),
        (
            "walks".into(),
            pit_walk::snapshot::encode(&walks).to_vec(),
            |b| pit_walk::snapshot::decode(b).is_ok(),
        ),
        (
            "prop".into(),
            pit_index::snapshot::encode(&prop).to_vec(),
            |b| pit_index::snapshot::decode(b).is_ok(),
        ),
        (
            "reps".into(),
            pit_search_core::snapshot::encode(&reps).to_vec(),
            |b| pit_search_core::snapshot::decode(b).is_ok(),
        ),
        (
            "space".into(),
            pit_topics::snapshot::encode_space(&space).to_vec(),
            |b| pit_topics::snapshot::decode_space(b).is_ok(),
        ),
        (
            "vocab".into(),
            pit_topics::snapshot::encode_vocab(&vocab).to_vec(),
            |b| pit_topics::snapshot::decode_vocab(b).is_ok(),
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Truncation at any point never panics and (except trivial cases)
    /// errors out.
    #[test]
    fn truncation_never_panics(cut_pct in 0u32..100) {
        for (name, bytes, decode_ok) in payloads() {
            let cut = (bytes.len() as u64 * cut_pct as u64 / 100) as usize;
            if cut == bytes.len() {
                continue;
            }
            // Must not panic; truncated payloads must fail.
            prop_assert!(!decode_ok(&bytes[..cut]), "{name}: truncated decode succeeded");
        }
    }

    /// Random single-byte flips never panic.
    #[test]
    fn byte_flips_never_panic(pos_pct in 0u32..100, xor in 1u8..=255) {
        for (_name, mut bytes, decode_ok) in payloads() {
            let pos = (bytes.len() as u64 * pos_pct as u64 / 100) as usize;
            let pos = pos.min(bytes.len() - 1);
            bytes[pos] ^= xor;
            // Outcome may be Ok (benign flip in a float) or Err — the only
            // failure mode is a panic, which proptest would catch.
            let _ = decode_ok(&bytes);
        }
    }

    /// Entirely random garbage never panics and never decodes.
    #[test]
    fn garbage_never_decodes(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        for (name, _, decode_ok) in payloads() {
            // Exclude the astronomically unlikely case of valid magic+layout
            // by checking the first bytes differ from any known magic.
            if bytes.len() >= 4 && (&bytes[..3] == b"PIT") {
                continue;
            }
            prop_assert!(!decode_ok(&bytes), "{name}: garbage decoded");
        }
    }
}

/// Format-fuzzing of the flat engine container through the real loaders.
mod flat {
    use pit::engine::PitEngine;
    use pit::store::{self, StoreError};
    use pit_graph::fixtures::{figure1_graph, figure1_topics, user};
    use pit_graph::TermId;
    use pit_store::{fnv64_words, FlatError, FlatFile};
    use pit_topics::TopicSpaceBuilder;
    use pit_walk::WalkConfig;
    use proptest::prelude::*;
    use std::fs;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::OnceLock;

    // Mirrors of the container geometry (crates/store/src/flat.rs): the
    // 32-byte header is followed by 32-byte section-table entries.
    const HEADER_LEN: usize = 32;
    const ENTRY_LEN: usize = 32;

    struct Baseline {
        bytes: Vec<u8>,
        rankings: Vec<Vec<(u32, u64)>>,
    }

    /// Top-k topic ids and exact score bits for every figure-1 user — the
    /// "silently wrong engine" oracle.
    fn rank(engine: &PitEngine) -> Vec<Vec<(u32, u64)>> {
        (1..=15u32)
            .map(|u| {
                engine
                    .search_user_term(user(u), TermId(0), 4)
                    .top_k
                    .iter()
                    .map(|s| (s.topic.0, s.score.to_bits()))
                    .collect()
            })
            .collect()
    }

    fn baseline() -> &'static Baseline {
        static B: OnceLock<Baseline> = OnceLock::new();
        B.get_or_init(|| {
            let graph = figure1_graph();
            let mut vocab = pit_topics::Vocabulary::new();
            let phone = vocab.intern("phone");
            let mut b = TopicSpaceBuilder::new(graph.node_count(), 1);
            for members in &figure1_topics() {
                let t = b.add_topic(vec![phone]);
                for &m in members {
                    b.assign(m, t);
                }
            }
            let engine = PitEngine::builder()
                .walk(WalkConfig::new(4, 16).with_seed(3))
                .build_with_vocab(graph, b.build(), Some(vocab));
            let dir = scratch_dir("baseline");
            store::save_engine(&dir, &engine).unwrap();
            let bytes = fs::read(dir.join(store::FLAT_FILE)).unwrap();
            let _ = fs::remove_dir_all(&dir);
            let rankings = rank(&engine);
            Baseline { bytes, rankings }
        })
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("pit-flatfuzz-{tag}-{}", std::process::id()))
    }

    /// Write `bytes` as an engine.pitf and run the checksummed loader on
    /// it. The scratch dir is unlinked immediately — a mapped engine keeps
    /// serving from the unlinked inode.
    fn try_load(bytes: &[u8]) -> Result<PitEngine, StoreError> {
        static CASE: AtomicUsize = AtomicUsize::new(0);
        let dir = scratch_dir(&format!("case-{}", CASE.fetch_add(1, Ordering::Relaxed)));
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(store::FLAT_FILE), bytes).unwrap();
        let out = store::load_engine(&dir);
        let _ = fs::remove_dir_all(&dir);
        out
    }

    /// Open `bytes` at the container layer, for typed-FlatError asserts.
    fn try_open(bytes: &[u8]) -> Result<FlatFile, FlatError> {
        static CASE: AtomicUsize = AtomicUsize::new(0);
        let dir = scratch_dir(&format!("open-{}", CASE.fetch_add(1, Ordering::Relaxed)));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(store::FLAT_FILE);
        fs::write(&path, bytes).unwrap();
        let out = FlatFile::open(&path);
        let _ = fs::remove_dir_all(&dir);
        out
    }

    fn section_count(bytes: &[u8]) -> usize {
        u16::from_le_bytes([bytes[6], bytes[7]]) as usize
    }

    /// Recompute the header's table checksum after editing table entries,
    /// so corruption tests reach the validation layer under test instead
    /// of tripping the table checksum first.
    fn resign_table(bytes: &mut [u8]) {
        let end = HEADER_LEN + section_count(bytes) * ENTRY_LEN;
        let sum = fnv64_words(&bytes[HEADER_LEN..end]);
        bytes[16..24].copy_from_slice(&sum.to_le_bytes());
    }

    /// Loading `bytes` either fails with a typed error or produces an
    /// engine whose every ranking is bit-identical to the pristine one.
    fn assert_rejected_or_identical(bytes: &[u8], what: &str) {
        if let Ok(engine) = try_load(bytes) {
            assert_eq!(
                rank(&engine),
                baseline().rankings,
                "{what}: corrupted snapshot loaded with different rankings"
            );
        }
    }

    #[test]
    fn version_skew_is_reported_as_unsupported() {
        let mut bytes = baseline().bytes.clone();
        bytes[4..6].copy_from_slice(&2u16.to_le_bytes());
        assert!(matches!(
            try_open(&bytes),
            Err(FlatError::UnsupportedVersion { found: 2, .. })
        ));
        assert!(matches!(
            try_load(&bytes),
            Err(StoreError::UnsupportedVersion(_))
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Truncation at any point yields a typed error, never a panic.
        #[test]
        fn flat_truncation_yields_typed_error(cut_pct in 0u32..100) {
            let b = baseline();
            let cut = ((b.bytes.len() as u64 * cut_pct as u64 / 100) as usize)
                .min(b.bytes.len() - 1);
            prop_assert!(
                try_load(&b.bytes[..cut]).is_err(),
                "truncated container loaded"
            );
        }

        /// A single flipped byte anywhere in the file is either rejected
        /// (header, table, and every payload are checksummed) or lands in
        /// reserved/padding bytes and changes nothing.
        #[test]
        fn flat_byte_flip_never_yields_a_silently_wrong_engine(
            pos_pct in 0u32..100,
            xor in 1u8..=255,
        ) {
            let mut bytes = baseline().bytes.clone();
            let pos = ((bytes.len() as u64 * pos_pct as u64 / 100) as usize)
                .min(bytes.len() - 1);
            bytes[pos] ^= xor;
            assert_rejected_or_identical(&bytes, "byte flip");
        }

        /// Breaking a section's 16-byte payload alignment is caught in the
        /// structural pass.
        #[test]
        fn flat_misaligned_section_offset_is_rejected(idx in 0usize..32, bump in 1u64..16) {
            let mut bytes = baseline().bytes.clone();
            let idx = idx % section_count(&bytes);
            let at = HEADER_LEN + idx * ENTRY_LEN + 8;
            let offset = u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
            bytes[at..at + 8].copy_from_slice(&(offset + bump).to_le_bytes());
            resign_table(&mut bytes);
            prop_assert!(matches!(
                try_open(&bytes),
                Err(FlatError::Misaligned { .. })
            ));
            prop_assert!(matches!(try_load(&bytes), Err(StoreError::Corrupt(_))));
        }

        /// Swapping two table entries breaks the offset-sorted invariant;
        /// zero-length neighbours can tie on offset, so the oracle is
        /// rejected-or-identical.
        #[test]
        fn flat_out_of_order_entries_are_rejected(idx in 1usize..32) {
            let mut bytes = baseline().bytes.clone();
            let n = section_count(&bytes);
            let idx = 1 + (idx - 1) % (n - 1);
            let (a, b) = (HEADER_LEN + (idx - 1) * ENTRY_LEN, HEADER_LEN + idx * ENTRY_LEN);
            for i in 0..ENTRY_LEN {
                bytes.swap(a + i, b + i);
            }
            resign_table(&mut bytes);
            assert_rejected_or_identical(&bytes, "entry swap");
        }

        /// Pointing a section at its predecessor's payload overlaps the two
        /// ranges (or, for empty predecessors, shifts the window under a
        /// now-wrong checksum).
        #[test]
        fn flat_overlapping_sections_are_rejected(idx in 1usize..32) {
            let mut bytes = baseline().bytes.clone();
            let n = section_count(&bytes);
            let idx = 1 + (idx - 1) % (n - 1);
            let (prev, at) = (
                HEADER_LEN + (idx - 1) * ENTRY_LEN + 8,
                HEADER_LEN + idx * ENTRY_LEN + 8,
            );
            let prev_offset: [u8; 8] = bytes[prev..prev + 8].try_into().unwrap();
            bytes[at..at + 8].copy_from_slice(&prev_offset);
            resign_table(&mut bytes);
            assert_rejected_or_identical(&bytes, "overlap");
        }

        /// A wrong payload checksum passes the structural open (so the
        /// fast, trusted-staging loader stays O(sections)) but the default
        /// checksummed loader rejects it.
        #[test]
        fn flat_wrong_checksum_is_rejected_by_the_verified_loader(
            idx in 0usize..32,
            xor in 1u8..=255,
        ) {
            let mut bytes = baseline().bytes.clone();
            let idx = idx % section_count(&bytes);
            let at = HEADER_LEN + idx * ENTRY_LEN + 24;
            bytes[at] ^= xor;
            resign_table(&mut bytes);
            prop_assert!(try_open(&bytes).is_ok(), "structural open must pass");
            prop_assert!(matches!(try_load(&bytes), Err(StoreError::Corrupt(_))));
        }

        /// Random garbage never opens as a flat container.
        #[test]
        fn flat_garbage_never_loads(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
            if !(bytes.len() >= 3 && &bytes[..3] == b"PIT") {
                prop_assert!(try_load(&bytes).is_err(), "garbage loaded as an engine");
            }
        }
    }
}
