//! Allocation-freedom regression for the query hot path.
//!
//! This binary installs [`pit_eval::alloc::CountingAllocator`] as its global
//! allocator and counts *allocation calls* (not bytes) across the search
//! driver's round loop. After a warm-up query has sized the per-worker
//! [`SearchScratch`] buffers, re-running the same query's probe/feed loop
//! against a flat-mapped engine must perform **zero** heap allocations —
//! this is the contract that lets a serving worker answer steady-state
//! queries without touching the allocator. A full search is allowed a
//! small constant number of allocations (the `related_topics` gather in
//! `begin` and the `top_k` vector in `finish`), and that constant is
//! pinned here so a regression shows up as a number, not a hunch.

use pit::engine::PitEngine;
use pit::store;
use pit_eval::alloc::{alloc_calls, CountingAllocator};
use pit_graph::fixtures::{figure1_graph, figure1_topics, user};
use pit_search_core::{CancelToken, NoTracer, SearchConfig, SearchDriver, SearchScratch};
use pit_topics::{KeywordQuery, TopicSpaceBuilder};
use pit_walk::WalkConfig;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Build the figure-1 engine, round-trip it through a flat snapshot, and
/// return the mapped load — the hot path under test is the one production
/// workers run: query execution over arrays borrowed from the file mapping.
fn mapped_engine() -> PitEngine {
    let graph = figure1_graph();
    let mut vocab = pit_topics::Vocabulary::new();
    let phone = vocab.intern("phone");
    let mut b = TopicSpaceBuilder::new(graph.node_count(), 1);
    for members in &figure1_topics() {
        let t = b.add_topic(vec![phone]);
        for &m in members {
            b.assign(m, t);
        }
    }
    let built = PitEngine::builder()
        .walk(WalkConfig::new(4, 16).with_seed(7))
        .build_with_vocab(graph, b.build(), Some(vocab));
    let dir = std::env::temp_dir().join(format!("pit-alloc-reg-{}", std::process::id()));
    store::save_engine(&dir, &built).unwrap();
    let engine = store::load_engine(&dir).unwrap();
    // A mapped engine keeps serving from the unlinked inode.
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(engine.snapshot_format(), "flat-mapped");
    engine
}

/// Drive one query through the round loop by hand, so the measurement
/// bracket can exclude `begin` (which gathers the query's topic list) and
/// `finish` (which allocates the returned `top_k`). Returns the number of
/// allocation calls observed strictly inside the probe/feed loop.
fn loop_alloc_calls(
    engine: &PitEngine,
    query: &KeywordQuery,
    scratch: &mut SearchScratch,
) -> usize {
    let cancel = CancelToken::none();
    let mut tracer = NoTracer;
    let prop = engine.propagation();
    let mut driver = SearchDriver::begin(
        engine.space(),
        engine.reps(),
        SearchConfig::top(3),
        query,
        prop.len(),
        prop.config().theta,
        &cancel,
        &mut tracer,
        scratch,
    )
    .unwrap();
    let before = alloc_calls();
    while driver.round_begin(&cancel, &mut tracer).unwrap() {
        let mut i = 0;
        while let Some((u, ep_u)) = driver.round_probe(i) {
            driver
                .feed_gamma(&cancel, &mut tracer, prop.gamma(u), ep_u)
                .unwrap();
            i += 1;
        }
    }
    let after = alloc_calls();
    let outcome = driver.finish(&mut tracer);
    assert!(!outcome.top_k.is_empty(), "query must do real work");
    after - before
}

#[test]
fn warm_round_loop_is_allocation_free() {
    let engine = mapped_engine();
    let query = KeywordQuery::new(user(3), vec![pit_graph::TermId(0)]);
    let mut scratch = SearchScratch::new();

    // Warm-up: two passes size every scratch buffer (rep map, rings, probe
    // buffer, visited set) for this query shape — hash-map growth amortizes
    // over the first two runs before the capacities converge.
    let cold = loop_alloc_calls(&engine, &query, &mut scratch);
    let settle = loop_alloc_calls(&engine, &query, &mut scratch);
    assert!(cold >= settle, "warm-up must monotonically settle");

    let warm1 = loop_alloc_calls(&engine, &query, &mut scratch);
    let warm2 = loop_alloc_calls(&engine, &query, &mut scratch);

    assert_eq!(
        warm1, 0,
        "warm probe/feed loop allocated (cold run had {cold} calls)"
    );
    assert_eq!(warm2, 0, "second warm loop allocated");
}

#[test]
fn warm_full_search_allocates_only_the_result() {
    let engine = mapped_engine();
    let query = KeywordQuery::new(user(3), vec![pit_graph::TermId(0)]);
    let cancel = CancelToken::none();
    let mut tracer = NoTracer;
    let mut scratch = SearchScratch::new();

    // Two warm-up passes through the public entry point.
    for _ in 0..2 {
        engine
            .try_search_traced_with(&query, 3, &cancel, &mut tracer, &mut scratch)
            .unwrap();
    }

    let before = alloc_calls();
    let out = engine
        .try_search_traced_with(&query, 3, &cancel, &mut tracer, &mut scratch)
        .unwrap();
    let delta = alloc_calls() - before;
    assert!(!out.top_k.is_empty());

    // `begin` gathers the related-topic list, `finish` allocates the
    // returned top_k vector; everything in between must come from scratch.
    // The exact constant is pinned loosely (<= 8) so incidental churn in
    // those two bookends doesn't flake the test, while a hot-path
    // regression (per-probe or per-round allocation) blows well past it.
    assert!(
        delta <= 8,
        "warm full search made {delta} allocation calls (expected <= 8)"
    );
}
