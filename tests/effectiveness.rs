//! Effectiveness of the approximate methods against the exact baselines, on
//! data_2k-sized instances — the integration-level counterpart of the
//! paper's Figure 10.

use pit_baselines::{rank_top_k, BaseMatrix, BasePropagation};
use pit_datasets::{generate, paper_specs};
use pit_graph::{NodeId, TermId, TopicId};
use pit_index::{PropIndexConfig, PropagationIndex};
use pit_search_core::{PersonalizedSearcher, SearchConfig, TopicRepIndex};
use pit_summarize::{LrwConfig, LrwSummarizer, SummarizeContext};
use pit_topics::KeywordQuery;
use pit_walk::{WalkConfig, WalkIndex, WalkIndexParts};

struct Setup {
    ds: pit_datasets::Dataset,
    prop: PropagationIndex,
    lrw_reps: TopicRepIndex,
}

fn setup() -> Setup {
    let mut spec = paper_specs(100)[0].clone(); // data_2k family
    spec.nodes = 1_500;
    let ds = generate(&spec);
    let walks = WalkIndex::build_parts(
        &ds.graph,
        WalkConfig::new(4, 24).with_seed(17),
        WalkIndexParts::FOR_LRW,
    );
    let prop = PropagationIndex::build(&ds.graph, PropIndexConfig::with_theta(0.002));
    let ctx = SummarizeContext {
        graph: &ds.graph,
        space: &ds.space,
        walks: &walks,
    };
    let lrw_reps = TopicRepIndex::build(
        &ctx,
        &LrwSummarizer::new(LrwConfig {
            rep_count: Some(100),
            ..LrwConfig::default()
        }),
    );
    Setup { ds, prop, lrw_reps }
}

fn queries(_ds: &pit_datasets::Dataset) -> Vec<KeywordQuery> {
    [7usize, 311, 642, 1100, 1499]
        .iter()
        .map(|&u| KeywordQuery::new(NodeId::from_index(u), vec![TermId(1)]))
        .collect()
}

/// BasePropagation tracks the BaseMatrix ground truth closely (paper: ≈0.85+
/// precision, near 1 at small k).
#[test]
fn base_propagation_tracks_ground_truth() {
    let s = setup();
    let matrix = BaseMatrix::new(&s.ds.graph, &s.ds.space);
    let bp = BasePropagation::new(&s.ds.space, &s.prop);
    let k = 10;
    let mut precision = 0.0;
    let qs = queries(&s.ds);
    for q in &qs {
        let truth: Vec<TopicId> = rank_top_k(&matrix, &s.ds.space, q, k)
            .into_iter()
            .map(|r| r.topic)
            .collect();
        let got: Vec<TopicId> = rank_top_k(&bp, &s.ds.space, q, k)
            .into_iter()
            .map(|r| r.topic)
            .collect();
        precision += pit_eval::precision_at_k(&got, &truth, k);
    }
    precision /= qs.len() as f64;
    assert!(
        precision >= 0.6,
        "BasePropagation precision vs BaseMatrix = {precision}"
    );
}

/// The summarized LRW-A search stays well above chance against the ground
/// truth: with ~40+ candidate topics and k = 10, random selection scores
/// ≈ 0.25; we require clearly better.
#[test]
fn lrw_search_beats_chance_against_ground_truth() {
    let s = setup();
    let matrix = BaseMatrix::new(&s.ds.graph, &s.ds.space);
    let k = 10;
    let searcher =
        PersonalizedSearcher::new(&s.ds.space, &s.prop, &s.lrw_reps, SearchConfig::top(k));
    let mut precision = 0.0;
    let qs = queries(&s.ds);
    let mut candidates = 0usize;
    for q in &qs {
        let truth: Vec<TopicId> = rank_top_k(&matrix, &s.ds.space, q, k)
            .into_iter()
            .map(|r| r.topic)
            .collect();
        let out = searcher.search(q);
        candidates = candidates.max(out.candidate_topics);
        let got: Vec<TopicId> = out.top_k.iter().map(|t| t.topic).collect();
        precision += pit_eval::precision_at_k(&got, &truth, k);
    }
    precision /= qs.len() as f64;
    let chance = k as f64 / candidates.max(k) as f64;
    assert!(
        precision > (2.0 * chance).min(0.5),
        "LRW-A precision {precision} too close to chance {chance} ({candidates} candidates)"
    );
}

/// Truncating the representative sets degrades (or preserves) precision —
/// never improves it dramatically; and the search still functions at 1 rep
/// per topic.
#[test]
fn truncation_degrades_gracefully() {
    let s = setup();
    let bp = BasePropagation::new(&s.ds.space, &s.prop);
    let k = 10;
    let qs = queries(&s.ds);
    let mut prec = Vec::new();
    for reps in [24usize, 4, 1] {
        let cut = s.lrw_reps.truncated(reps);
        let searcher = PersonalizedSearcher::new(&s.ds.space, &s.prop, &cut, SearchConfig::top(k));
        let mut p = 0.0;
        for q in &qs {
            let truth: Vec<TopicId> = rank_top_k(&bp, &s.ds.space, q, k)
                .into_iter()
                .map(|r| r.topic)
                .collect();
            let got: Vec<TopicId> = searcher.search(q).top_k.iter().map(|t| t.topic).collect();
            p += pit_eval::precision_at_k(&got, &truth, k);
        }
        prec.push(p / qs.len() as f64);
    }
    // Full sets at least as good as single-representative sets, with slack
    // for tie noise.
    assert!(
        prec[0] + 0.10 >= prec[2],
        "full sets ({}) should not lose badly to 1-rep sets ({})",
        prec[0],
        prec[2]
    );
}
