//! Bit-identity of the zero-copy loaders: for arbitrary generated graphs
//! and topic assignments, the engine served from a mapped flat snapshot
//! must answer every query exactly like the engine it was saved from and
//! like the deep-copying owned loader — same topics, same order, same
//! score *bits*, same work counters. This is the proof that borrowing the
//! index arrays straight out of the file mapping changes nothing about
//! query semantics, only about load cost.

use pit::engine::PitEngine;
use pit::store;
use pit_graph::{GraphBuilder, NodeId, TermId};
use pit_topics::TopicSpaceBuilder;
use pit_walk::WalkConfig;
use proptest::prelude::*;
use rustc_hash::FxHashSet;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A random small directed graph plus a random topic assignment.
#[derive(Debug, Clone)]
struct Instance {
    n: usize,
    edges: Vec<(u32, u32, f64)>,
    /// topic -> member node ids.
    topics: Vec<Vec<u32>>,
    seed: u64,
}

fn instance() -> impl Strategy<Value = Instance> {
    (4usize..=12).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32, 0.1f64..0.9f64)
            .prop_filter("no self-loops", |(a, b, _)| a != b);
        let edges = proptest::collection::vec(edge, n..3 * n).prop_map(move |mut es| {
            let mut seen = FxHashSet::default();
            es.retain(|&(a, b, _)| seen.insert((a, b)));
            es
        });
        let topic = proptest::collection::vec(0..n as u32, 1..=4).prop_map(|mut t| {
            t.sort_unstable();
            t.dedup();
            t
        });
        let topics = proptest::collection::vec(topic, 2..=4);
        (edges, topics, 0u64..1024).prop_map(move |(edges, topics, seed)| Instance {
            n,
            edges,
            topics,
            seed,
        })
    })
}

fn build_engine(inst: &Instance) -> PitEngine {
    let mut b = GraphBuilder::new(inst.n);
    for &(u, v, p) in &inst.edges {
        b.add_edge(NodeId(u), NodeId(v), p).unwrap();
    }
    let graph = b.build().unwrap();
    let mut tb = TopicSpaceBuilder::new(inst.n, 1);
    for members in &inst.topics {
        let t = tb.add_topic(vec![TermId(0)]);
        for &m in members {
            tb.assign(NodeId(m), t);
        }
    }
    PitEngine::builder()
        .walk(WalkConfig::new(3, 8).with_seed(inst.seed))
        .build(graph, tb.build())
}

/// Everything a query answer consists of, exact to the bit: ranked topic
/// ids, score bit patterns, and the work counters the paper reports.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Answer {
    ranked: Vec<(u32, u64)>,
    candidate_topics: usize,
    pruned_topics: usize,
    expand_rounds: usize,
    probed_tables: usize,
    loaded_reps: usize,
}

fn answer(engine: &PitEngine, u: u32, k: usize) -> Answer {
    let out = engine.search_user_term(NodeId(u), TermId(0), k);
    Answer {
        ranked: out
            .top_k
            .iter()
            .map(|s| (s.topic.0, s.score.to_bits()))
            .collect(),
        candidate_topics: out.candidate_topics,
        pruned_topics: out.pruned_topics,
        expand_rounds: out.expand_rounds,
        probed_tables: out.probed_tables,
        loaded_reps: out.loaded_reps,
    }
}

fn scratch_dir() -> std::path::PathBuf {
    static CASE: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "pit-flat-identity-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Mapped, fast-mapped, and owned loads of the same snapshot answer
    /// every (user, k) bit-identically to the engine that was saved.
    #[test]
    fn flat_loaders_are_bit_identical(inst in instance(), k in 1usize..=5) {
        let built = build_engine(&inst);
        let dir = scratch_dir();
        store::save_engine(&dir, &built).unwrap();
        let mapped = store::load_engine(&dir).unwrap();
        let fast = store::load_engine_fast(&dir).unwrap();
        let owned = store::load_engine_owned(&dir).unwrap();
        let _ = std::fs::remove_dir_all(&dir);

        prop_assert_eq!(mapped.snapshot_format(), "flat-mapped");
        prop_assert_eq!(owned.snapshot_format(), "owned");
        prop_assert!(mapped.mapped_bytes() > 0, "no arrays were mapped");

        for u in 0..inst.n as u32 {
            let want = answer(&built, u, k);
            prop_assert_eq!(
                answer(&mapped, u, k), want.clone(),
                "mapped load diverged at user {} (k={})", u, k
            );
            prop_assert_eq!(
                answer(&fast, u, k), want.clone(),
                "fast load diverged at user {} (k={})", u, k
            );
            prop_assert_eq!(
                answer(&owned, u, k), want,
                "owned load diverged at user {} (k={})", u, k
            );
        }
    }
}
